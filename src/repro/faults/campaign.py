"""Campaign runner: sweep fault plans, retry, certify every violation.

A *campaign* runs a family of :class:`~repro.faults.plans.FaultPlan`s
against one system and aggregates the outcomes:

* ``safe`` — the trial ran to quiescence of the live processes with no
  safety violation;
* ``violation`` — Validity or k-Agreement broke, and the witness schedule
  was **certified by replay**: a fresh faulty system is rebuilt from the
  plan, the recorded schedule is folded through the pure step function,
  and the independent checker (:mod:`repro.spec.properties`) re-establishes
  the violation — the same discipline as
  :mod:`repro.lowerbounds.covering`.  An uncertifiable violation (never
  observed; it would indicate an engine bug) is downgraded to
  ``inconclusive`` rather than reported as evidence;
* ``inconclusive`` — the step budget ran out before the live processes
  finished (corrupted registers can livelock the paper's algorithms —
  that is a *progress* casualty, not a safety verdict).  Inconclusive
  trials are retried under exponentially growing budgets before the label
  sticks.

The two controls the subsystem exists for (paper §2.1):

* **positive** — crash-only plans stay inside the model m-obstruction-
  freedom quantifies over, so a campaign over them must report zero
  violations (:meth:`FaultReport.crash_safety_holds`);
* **negative** — register corruption leaves the model, and
  :func:`~repro.faults.plans.corruption_plan_family` includes plans
  guaranteed to make each algorithm decide a never-proposed value, so a
  corruption campaign must produce at least one certified violation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.inject import faulty_system, plan_scheduler
from repro.faults.plans import FaultPlan
from repro.runtime.runner import replay, run
from repro.runtime.system import System
from repro.spec.properties import Violation, check_safety

SAFE, VIOLATION, INCONCLUSIVE = "safe", "violation", "inconclusive"


@dataclass(frozen=True)
class FaultTrial:
    """Outcome of one plan: verdict, witness, and certification status."""

    plan: FaultPlan
    outcome: str
    steps: int
    attempts: int
    violations: Tuple[Violation, ...] = ()
    schedule: Tuple[int, ...] = ()
    certified: bool = False

    def describe(self) -> str:
        """One row of the campaign report."""
        tail = ""
        if self.outcome == VIOLATION:
            tail = f" — certified: {self.violations[0]}"
        return (
            f"{self.plan.describe()} -> {self.outcome} "
            f"({self.steps} steps, {self.attempts} attempt"
            f"{'s' if self.attempts != 1 else ''}){tail}"
        )


@dataclass
class FaultReport:
    """Aggregate of one campaign, with wall-clock for throughput numbers."""

    family: str
    trials: List[FaultTrial] = field(default_factory=list)
    retries: int = 0
    elapsed_seconds: float = 0.0

    def outcomes(self, outcome: str) -> List[FaultTrial]:
        """Trials whose verdict is *outcome* (safe/violation/inconclusive)."""
        return [t for t in self.trials if t.outcome == outcome]

    @property
    def certified_violations(self) -> List[FaultTrial]:
        return [t for t in self.trials if t.certified]

    def crash_safety_holds(self) -> bool:
        """Positive control: no crash-only plan produced a violation."""
        return not any(
            t.outcome == VIOLATION for t in self.trials if t.plan.crash_only
        )

    def summary(self) -> str:
        """One-line account of the campaign."""
        return (
            f"fault campaign [{self.family}]: {len(self.trials)} trials — "
            f"{len(self.outcomes(SAFE))} safe, "
            f"{len(self.certified_violations)} certified violations, "
            f"{len(self.outcomes(INCONCLUSIVE))} inconclusive "
            f"({self.retries} retries, {self.elapsed_seconds:.2f}s)"
        )


def _certify(system: System, plan: FaultPlan, schedule: Sequence[int],
             k: int) -> Tuple[Violation, ...]:
    """Re-establish a violation by replay through a *fresh* faulty system."""
    fresh = faulty_system(system, plan)
    execution = replay(fresh, schedule)
    return tuple(check_safety(execution, k))


def run_trial(
    system: System,
    plan: FaultPlan,
    *,
    k: Optional[int] = None,
    budget: int = 20_000,
    max_retries: int = 3,
    backoff: float = 2.0,
) -> FaultTrial:
    """Run one plan; retry inconclusive runs under exponential budgets.

    ``k`` defaults to the automaton's own parameter.  The returned trial's
    ``violations`` are always the *replay-certified* ones.
    """
    if k is None:
        k = getattr(system.automaton, "k", None)
        if k is None:
            raise ConfigurationError(
                "run_trial needs k (the automaton carries none)"
            )
    attempts = 0
    execution = None
    for attempt in range(max_retries + 1):
        attempts = attempt + 1
        attempt_budget = int(budget * backoff**attempt)
        faulty = faulty_system(system, plan)
        execution = run(
            faulty,
            plan_scheduler(plan),
            max_steps=attempt_budget,
            on_limit="return",
        )
        observed = check_safety(execution, k)
        if observed:
            certified = _certify(system, plan, execution.schedule, k)
            if certified:
                return FaultTrial(
                    plan=plan,
                    outcome=VIOLATION,
                    steps=execution.steps,
                    attempts=attempts,
                    violations=certified,
                    schedule=tuple(execution.schedule),
                    certified=True,
                )
            break  # uncertifiable: engine bug territory; label inconclusive
        if not execution.hit_step_limit:
            return FaultTrial(
                plan=plan, outcome=SAFE, steps=execution.steps,
                attempts=attempts,
            )
    return FaultTrial(
        plan=plan,
        outcome=INCONCLUSIVE,
        steps=execution.steps if execution is not None else 0,
        attempts=attempts,
    )


def run_campaign(
    system: System,
    plans: Sequence[FaultPlan],
    *,
    family: str = "custom",
    k: Optional[int] = None,
    budget: int = 20_000,
    max_retries: int = 3,
    backoff: float = 2.0,
) -> FaultReport:
    """Sweep *plans* against *system*, aggregating certified outcomes."""
    report = FaultReport(family=family)
    started = time.perf_counter()
    for plan in plans:
        trial = run_trial(
            system, plan, k=k, budget=budget, max_retries=max_retries,
            backoff=backoff,
        )
        report.trials.append(trial)
        report.retries += trial.attempts - 1
    report.elapsed_seconds = time.perf_counter() - started
    return report
