"""Campaign runner: sweep fault plans, retry, certify every violation.

A *campaign* runs a family of :class:`~repro.faults.plans.FaultPlan`s
against one system and aggregates the outcomes:

* ``safe`` — the trial ran to quiescence of the live processes with no
  safety violation;
* ``violation`` — Validity or k-Agreement broke, and the witness schedule
  was **certified by replay**: a fresh faulty system is rebuilt from the
  plan, the recorded schedule is folded through the pure step function,
  and the independent checker (:mod:`repro.spec.properties`) re-establishes
  the violation — the same discipline as
  :mod:`repro.lowerbounds.covering`.  An uncertifiable violation (never
  observed; it would indicate an engine bug) is downgraded to
  ``inconclusive`` rather than reported as evidence;
* ``inconclusive`` — the step budget ran out before the live processes
  finished (corrupted registers can livelock the paper's algorithms —
  that is a *progress* casualty, not a safety verdict).  Inconclusive
  trials are retried under exponentially growing budgets before the label
  sticks.

The two controls the subsystem exists for (paper §2.1):

* **positive** — crash-only plans stay inside the model m-obstruction-
  freedom quantifies over, so a campaign over them must report zero
  violations (:meth:`FaultReport.crash_safety_holds`);
* **negative** — register corruption leaves the model, and
  :func:`~repro.faults.plans.corruption_plan_family` includes plans
  guaranteed to make each algorithm decide a never-proposed value, so a
  corruption campaign must produce at least one certified violation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro import telemetry
from repro.durable.journal import RunJournal
from repro.durable.recovery import QUARANTINE_DIR, RecoveryReport
from repro.durable.retry import BackoffPolicy
from repro.durable.watchdog import Watchdog
from repro.errors import ConfigurationError
from repro.faults.inject import faulty_system, plan_scheduler
from repro.faults.plans import FaultPlan
from repro.runtime.runner import replay, run
from repro.runtime.system import System, stable_fingerprint
from repro.spec.properties import Violation, check_safety

SAFE, VIOLATION, INCONCLUSIVE = "safe", "violation", "inconclusive"


@dataclass(frozen=True)
class FaultTrial:
    """Outcome of one plan: verdict, witness, and certification status."""

    plan: FaultPlan
    outcome: str
    steps: int
    attempts: int
    violations: Tuple[Violation, ...] = ()
    schedule: Tuple[int, ...] = ()
    certified: bool = False

    def describe(self) -> str:
        """One row of the campaign report."""
        tail = ""
        if self.outcome == VIOLATION:
            tail = f" — certified: {self.violations[0]}"
        return (
            f"{self.plan.describe()} -> {self.outcome} "
            f"({self.steps} steps, {self.attempts} attempt"
            f"{'s' if self.attempts != 1 else ''}){tail}"
        )


@dataclass
class FaultReport:
    """Aggregate of one campaign, with wall-clock for throughput numbers.

    ``interrupted`` and ``recovery`` mirror the exploration engine's
    durability history (see :mod:`repro.durable`): the watchdog reason
    when the campaign checkpointed and stopped early, and the
    :class:`~repro.durable.recovery.RecoveryReport` when it resumed from
    a journal.  Trials are deterministic functions of their plans, so a
    resumed campaign's trial list is bit-identical to an uninterrupted
    one's; ``elapsed_seconds`` covers only the current process's share of
    the work and is excluded from identity comparisons, like the rest of
    the history fields.
    """

    family: str
    trials: List[FaultTrial] = field(default_factory=list)
    retries: int = 0
    elapsed_seconds: float = 0.0
    interrupted: Optional[str] = None
    recovery: Optional[RecoveryReport] = None

    def outcomes(self, outcome: str) -> List[FaultTrial]:
        """Trials whose verdict is *outcome* (safe/violation/inconclusive)."""
        return [t for t in self.trials if t.outcome == outcome]

    @property
    def certified_violations(self) -> List[FaultTrial]:
        return [t for t in self.trials if t.certified]

    def crash_safety_holds(self) -> bool:
        """Positive control: no crash-only plan produced a violation."""
        return not any(
            t.outcome == VIOLATION for t in self.trials if t.plan.crash_only
        )

    def summary(self) -> str:
        """One-line account of the campaign."""
        return (
            f"fault campaign [{self.family}]: {len(self.trials)} trials — "
            f"{len(self.outcomes(SAFE))} safe, "
            f"{len(self.certified_violations)} certified violations, "
            f"{len(self.outcomes(INCONCLUSIVE))} inconclusive "
            f"({self.retries} retries, {self.elapsed_seconds:.2f}s)"
        )


def _certify(system: System, plan: FaultPlan, schedule: Sequence[int],
             k: int) -> Tuple[Violation, ...]:
    """Re-establish a violation by replay through a *fresh* faulty system."""
    fresh = faulty_system(system, plan)
    execution = replay(fresh, schedule)
    return tuple(check_safety(execution, k))


def run_trial(
    system: System,
    plan: FaultPlan,
    *,
    k: Optional[int] = None,
    budget: int = 20_000,
    max_retries: int = 3,
    backoff: float = 2.0,
) -> FaultTrial:
    """Run one plan; retry inconclusive runs under exponential budgets.

    ``k`` defaults to the automaton's own parameter.  The returned trial's
    ``violations`` are always the *replay-certified* ones.
    """
    if k is None:
        k = getattr(system.automaton, "k", None)
        if k is None:
            raise ConfigurationError(
                "run_trial needs k (the automaton carries none)"
            )
    policy = BackoffPolicy(max_retries=max_retries, factor=backoff)
    attempts = 0
    execution = None
    for attempt in policy.attempts():
        attempts = attempt + 1
        attempt_budget = policy.scaled_budget(budget, attempt)
        faulty = faulty_system(system, plan)
        execution = run(
            faulty,
            plan_scheduler(plan),
            max_steps=attempt_budget,
            on_limit="return",
            telemetry_span="faults.attempt",
            # The retry attempt index is deterministic (the backoff ladder
            # is seeded), so it may live in span attrs: the stitched trace
            # can tell attempt 1's re-execution apart from attempt 0.
            telemetry_attrs={"attempt": attempt},
        )
        observed = check_safety(execution, k)
        if observed:
            certified = _certify(system, plan, execution.schedule, k)
            if certified:
                return FaultTrial(
                    plan=plan,
                    outcome=VIOLATION,
                    steps=execution.steps,
                    attempts=attempts,
                    violations=certified,
                    schedule=tuple(execution.schedule),
                    certified=True,
                )
            break  # uncertifiable: engine bug territory; label inconclusive
        if not execution.hit_step_limit:
            return FaultTrial(
                plan=plan, outcome=SAFE, steps=execution.steps,
                attempts=attempts,
            )
    return FaultTrial(
        plan=plan,
        outcome=INCONCLUSIVE,
        steps=execution.steps if execution is not None else 0,
        attempts=attempts,
    )


def campaign_key(
    system: System,
    plans: Sequence[FaultPlan],
    *,
    family: str,
    k: Optional[int],
    budget: int,
    max_retries: int,
    backoff: float,
) -> str:
    """Stable fingerprint of a campaign's full semantics — its journal key.

    Everything that determines trial outcomes participates: the system
    (automaton class, parameters, workloads, memory-layout shape), the
    exact plan sequence, and the retry/budget knobs.  Two campaigns with
    the same key are the same deterministic computation, which is what
    makes resuming one from the other's journal sound.
    """
    from repro.explore.cache import _layout_signature

    automaton = system.automaton
    descriptor = (
        "repro-campaign", 1, family,
        type(automaton).__qualname__, automaton.name,
        stable_fingerprint(dict(automaton.params)),
        system.n, system.workloads,
        _layout_signature(system.layout),
        tuple(plans), k, budget, max_retries, backoff,
    )
    return stable_fingerprint(descriptor)


def run_campaign(
    system: System,
    plans: Sequence[FaultPlan],
    *,
    family: str = "custom",
    k: Optional[int] = None,
    budget: int = 20_000,
    max_retries: int = 3,
    backoff: float = 2.0,
    journal_dir: Optional[str] = None,
    checkpoint_every: int = 8,
    watchdog: Optional[Watchdog] = None,
) -> FaultReport:
    """Sweep *plans* against *system*, aggregating certified outcomes.

    ``journal_dir`` arms the durable run journal (see
    :mod:`repro.durable`): each completed trial is appended as a
    checksummed record and every ``checkpoint_every`` trials the trial
    list is compacted into a sealed checkpoint, so a killed campaign
    resumes after its last recorded trial instead of restarting.
    ``watchdog`` is polled between trials; when it fires the campaign
    checkpoints and returns early with ``report.interrupted`` set.
    """
    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    plans = list(plans)
    runlog = None
    recovery = None
    recovered_trials: List[FaultTrial] = []
    if journal_dir is not None:
        key = campaign_key(
            system, plans, family=family, k=k, budget=budget,
            max_retries=max_retries, backoff=backoff,
        )
        runlog = RunJournal(
            Path(journal_dir) / f"{key}.journal",
            quarantine_dir=Path(journal_dir) / QUARANTINE_DIR,
        )
        ck, records, recovery = runlog.recover()
        if isinstance(ck, dict):
            if ck.get("finished"):
                prior: FaultReport = ck["report"]
                prior.recovery = recovery
                runlog.close()
                return prior
            recovered_trials = list(ck["trials"])
        for _, trial in records:
            recovered_trials.append(trial)
        if not recovery.salvaged_anything:
            recovery = None  # fresh journal: nothing recovered, no report

    report = FaultReport(family=family)
    report.trials.extend(recovered_trials)
    report.recovery = recovery

    wd = watchdog
    if wd is None and runlog is not None:
        wd = Watchdog()  # SIGTERM mailbox for journaled campaigns

    started = time.perf_counter()
    try:
        if wd is not None:
            wd.__enter__()
        try:
            telemetry.gauge("progress.total", len(plans))
            telemetry.gauge("progress.done", len(report.trials))
            for index in range(len(report.trials), len(plans)):
                if wd is not None:
                    reason = wd.poll()
                    if reason is not None:
                        report.interrupted = reason
                        telemetry.mark("faults.interrupted", reason=reason)
                        break
                with telemetry.span(
                    "faults.trial", trial=index,
                    plan=plans[index].describe(),
                ) as sp:
                    trial = run_trial(
                        system, plans[index], k=k, budget=budget,
                        max_retries=max_retries, backoff=backoff,
                    )
                    sp.set(outcome=trial.outcome, attempts=trial.attempts)
                report.trials.append(trial)
                telemetry.counter("faults.trials")
                telemetry.counter(f"faults.outcome.{trial.outcome}")
                telemetry.counter("faults.retries", trial.attempts - 1)
                telemetry.observe(
                    "faults.trial_steps", trial.steps,
                    bounds=telemetry.COUNT_BUCKETS,
                )
                telemetry.gauge("progress.done", len(report.trials))
                if runlog is not None:
                    runlog.record(index, trial)
                    if ((index + 1) % checkpoint_every == 0
                            and runlog.should_compact()):
                        runlog.checkpoint(
                            {"finished": False, "trials": report.trials},
                            index + 1,
                        )
        finally:
            if wd is not None:
                wd.__exit__(None, None, None)
        report.retries = sum(t.attempts - 1 for t in report.trials)
        report.elapsed_seconds = time.perf_counter() - started
        if runlog is not None:
            if report.interrupted is None:
                runlog.checkpoint(
                    {"finished": True, "report": report}, len(report.trials)
                )
            else:
                runlog.checkpoint(
                    {"finished": False, "trials": report.trials},
                    len(report.trials),
                )
        return report
    finally:
        if runlog is not None:
            runlog.close()
