"""Fault-aware memory layouts: register faults as pure state transitions.

:class:`FaultyMemoryLayout` wraps a healthy
:class:`~repro.memory.layout.MemoryLayout` and applies a plan's register
faults inside :meth:`apply_primitive`, using the fault-aware register
semantics of :mod:`repro.memory.register`.  The wrapper preserves the two
properties the whole library leans on:

* **purity** — occurrence-counted faults (the *n*-th write is lost, the
  register resets before its *n*-th read) need a clock, and that clock
  lives *inside* the memory state: the faulty layout's
  :meth:`initial_memory` appends one trailing tuple of per-faulted-register
  access counters to the healthy bank tuple.  Configurations stay
  immutable, hashable, and fingerprintable, and replaying a schedule
  through a freshly built faulty system reproduces a corrupted execution
  *exactly* — which is how the campaign runner certifies violations;
* **space accounting** — :meth:`register_count` is inherited unchanged;
  the fault clock is bookkeeping, not registers the algorithms can use.

Faults target single registers by ``(bank, index)``; a snapshot scan
observes the faults of every component it covers (a scan counts as one
read of each faulted component for occurrence counting).  At most one
fault per register: stacking fault semantics on one cell has no clear
meaning and is rejected at construction time.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro._types import Value
from repro.errors import ConfigurationError
from repro.faults.plans import LostWrite, RegisterFault, SpuriousReset, StuckAt
from repro.memory import register as register_sem
from repro.memory.layout import (
    MemoryLayout,
    MemoryState,
    _primitive_bank,
    _replace_bank,
    _require_kind,
)
from repro.memory.ops import Op, ReadOp, ScanOp, UpdateOp, WriteOp

#: A register address inside a memory state: (bank position, index in bank).
Coord = Tuple[int, int]


class FaultyMemoryLayout(MemoryLayout):
    """A layout that injects a fixed set of register faults.  Pure."""

    def __init__(
        self, base: MemoryLayout, faults: Sequence[RegisterFault]
    ) -> None:
        super().__init__(
            base.banks,
            {name: base.binding(name) for name in base.object_names},
        )
        self._fault_at: Dict[Coord, RegisterFault] = {}
        for fault in faults:
            coord = (self.bank_index(fault.bank), fault.index)
            if fault.index < 0 or fault.index >= self.banks[coord[0]].size:
                raise ConfigurationError(
                    f"fault targets register {fault.bank}[{fault.index}] "
                    f"outside the bank (size "
                    f"{self.banks[coord[0]].size})"
                )
            if coord in self._fault_at:
                raise ConfigurationError(
                    f"two faults target register {fault.bank}[{fault.index}]; "
                    "at most one fault per register"
                )
            self._fault_at[coord] = fault
        # Occurrence-counted faults get a clock slot; stuck-at is stateless.
        self._clock_coords: Tuple[Coord, ...] = tuple(
            sorted(
                coord
                for coord, fault in self._fault_at.items()
                if isinstance(fault, (LostWrite, SpuriousReset))
            )
        )
        self._clock_slot: Dict[Coord, int] = {
            coord: slot for slot, coord in enumerate(self._clock_coords)
        }

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def initial_memory(self) -> MemoryState:
        """Healthy banks plus the trailing fault-clock tuple."""
        return super().initial_memory() + (
            (0,) * len(self._clock_coords),
        )

    def _tick(self, memory: MemoryState, coord: Coord) -> Tuple[MemoryState, int]:
        """Advance *coord*'s access counter; returns the 1-based occurrence."""
        clock = memory[-1]
        slot = self._clock_slot[coord]
        occurrence = clock[slot] + 1
        new_clock = clock[:slot] + (occurrence,) + clock[slot + 1 :]
        return memory[:-1] + (new_clock,), occurrence

    # ------------------------------------------------------------------ #
    # Faulted operations
    # ------------------------------------------------------------------ #

    def apply_primitive(
        self, memory: MemoryState, op: Op
    ) -> Tuple[MemoryState, Value]:
        binding = self.binding(op.obj)
        bank_name = _primitive_bank(binding, op)
        bank_pos = self.bank_index(bank_name)
        if isinstance(op, ReadOp):
            _require_kind(binding, "registers", op)
            return self._faulty_read(memory, bank_pos, op.index)
        if isinstance(op, WriteOp):
            _require_kind(binding, "registers", op)
            return self._faulty_write(memory, bank_pos, op.index, op.value)
        if isinstance(op, ScanOp):
            _require_kind(binding, "snapshot", op)
            return self._faulty_scan(memory, bank_pos)
        if isinstance(op, UpdateOp):
            _require_kind(binding, "snapshot", op)
            return self._faulty_write(memory, bank_pos, op.component, op.value)
        return super().apply_primitive(memory, op)

    def _faulty_read(
        self, memory: MemoryState, bank_pos: int, index: int
    ) -> Tuple[MemoryState, Value]:
        bank = memory[bank_pos]
        fault = self._fault_at.get((bank_pos, index))
        if isinstance(fault, StuckAt):
            return memory, register_sem.stuck_read(bank, index, fault.value)
        if isinstance(fault, SpuriousReset):
            memory, occurrence = self._tick(memory, (bank_pos, index))
            if occurrence == fault.occurrence:
                initial = self.banks[bank_pos].initial
                new_bank = register_sem.spurious_reset(bank, index, initial)
                return _replace_bank(memory, bank_pos, new_bank), initial
            return memory, register_sem.read(memory[bank_pos], index)
        return memory, register_sem.read(bank, index)

    def _faulty_write(
        self, memory: MemoryState, bank_pos: int, index: int, value: Value
    ) -> Tuple[MemoryState, Value]:
        bank = memory[bank_pos]
        fault = self._fault_at.get((bank_pos, index))
        if isinstance(fault, StuckAt):
            # A stuck register drops every write (the stuck value is what
            # reads observe; keep the stored cell untouched).
            return memory, None
        if isinstance(fault, LostWrite):
            memory, occurrence = self._tick(memory, (bank_pos, index))
            if occurrence == fault.occurrence:
                new_bank = register_sem.lost_write(bank, index, value)
            else:
                new_bank = register_sem.write(bank, index, value)
            return _replace_bank(memory, bank_pos, new_bank), None
        new_bank = register_sem.write(bank, index, value)
        return _replace_bank(memory, bank_pos, new_bank), None

    def _faulty_scan(
        self, memory: MemoryState, bank_pos: int
    ) -> Tuple[MemoryState, Value]:
        observed: List[Value] = list(memory[bank_pos])
        for index in range(len(observed)):
            fault = self._fault_at.get((bank_pos, index))
            if fault is None:
                continue
            if isinstance(fault, StuckAt):
                observed[index] = fault.value
            elif isinstance(fault, SpuriousReset):
                memory, occurrence = self._tick(memory, (bank_pos, index))
                if occurrence == fault.occurrence:
                    initial = self.banks[bank_pos].initial
                    new_bank = register_sem.spurious_reset(
                        memory[bank_pos], index, initial
                    )
                    memory = _replace_bank(memory, bank_pos, new_bank)
                observed[index] = memory[bank_pos][index]
        return memory, tuple(observed)
