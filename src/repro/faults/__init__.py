"""Fault injection: chaos campaigns for registers, processes, and the engine.

The paper proves its algorithms correct under *m-obstruction-freedom*
(§2.1): arbitrary process crashes are inside the model, register
corruption is not.  This package makes that boundary executable:

* :mod:`repro.faults.plans` — pure, hashable fault plans and seeded plan
  families (crash-only and register-corruption);
* :mod:`repro.faults.layout` — a fault-aware memory layout that applies
  register faults as pure state transitions;
* :mod:`repro.faults.inject` — rebuild a faulty system and its adversary
  from a plan;
* :mod:`repro.faults.campaign` — sweep plan families, retry inconclusive
  trials under backed-off budgets, certify every violation by replay;
* :mod:`repro.faults.chaos` — deterministic worker-death injection for
  the explore engine's self-healing path.

Run campaigns from the CLI: ``repro faults --protocol oneshot -n 4 -m 2
-k 2 --plan-family crashes``.
"""

from repro.faults.campaign import (
    FaultReport,
    FaultTrial,
    run_campaign,
    run_trial,
)
from repro.faults.chaos import WorkerKill, arm_worker_kills
from repro.faults.inject import faulty_system, plan_scheduler
from repro.faults.layout import FaultyMemoryLayout
from repro.faults.plans import (
    CORRUPT_VALUE,
    PLAN_FAMILIES,
    FaultPlan,
    LostWrite,
    ProcessCrash,
    ProcessRestart,
    SpuriousReset,
    StuckAt,
    build_family,
    corruption_plan_family,
    crash_plan_family,
)

__all__ = [
    "CORRUPT_VALUE",
    "PLAN_FAMILIES",
    "FaultPlan",
    "FaultReport",
    "FaultTrial",
    "FaultyMemoryLayout",
    "LostWrite",
    "ProcessCrash",
    "ProcessRestart",
    "SpuriousReset",
    "StuckAt",
    "WorkerKill",
    "arm_worker_kills",
    "build_family",
    "corruption_plan_family",
    "crash_plan_family",
    "faulty_system",
    "plan_scheduler",
    "run_campaign",
    "run_trial",
]
