"""Build a faulty system and its adversary from a fault plan.

The whole subsystem hinges on one property: ``(system parameters, plan)``
fully determines a trial.  :func:`faulty_system` rebuilds the system with
the plan's register faults woven into the layout;
:func:`plan_scheduler` rebuilds the adversary (crashes and restarts over a
seeded random base).  Both are pure constructions, so a schedule recorded
during a trial replays bit-identically through a *fresh* faulty system —
which is how :mod:`repro.faults.campaign` certifies violations.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.faults.layout import FaultyMemoryLayout
from repro.faults.plans import FaultPlan
from repro.runtime.system import System
from repro.sched.base import Scheduler
from repro.sched.crash import CrashScheduler
from repro.sched.random_walk import RandomScheduler


def faulty_system(system: System, plan: FaultPlan) -> System:
    """A copy of *system* whose registers misbehave per *plan*.

    The automaton and workloads are shared (both are immutable); only the
    layout is replaced.  Crash faults live in the scheduler, not here — a
    crash is a scheduling pattern, not a memory defect.
    """
    layout = FaultyMemoryLayout(system.layout, plan.register_faults)
    if system.workloads is not None:
        return System(system.automaton, workloads=system.workloads,
                      layout=layout)
    return System(system.automaton, layout=layout, n=system.n,
                  workload_fn=system.workload_fn)


def plan_scheduler(plan: FaultPlan) -> Scheduler:
    """The plan's adversary: crashes/restarts over a seeded random base."""
    crashes = {}
    for crash in plan.crashes:
        if crash.pid in crashes:
            raise ConfigurationError(
                f"plan {plan.name!r} crashes pid {crash.pid} twice"
            )
        crashes[crash.pid] = crash.at_step
    restarts = {}
    for restart in plan.restarts:
        if restart.pid in restarts:
            raise ConfigurationError(
                f"plan {plan.name!r} restarts pid {restart.pid} twice"
            )
        restarts[restart.pid] = restart.at_step
    return CrashScheduler(
        crashes,
        base=RandomScheduler(seed=plan.scheduler_seed),
        restarts=restarts,
    )
