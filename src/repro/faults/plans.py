"""Fault plans: pure, hashable descriptions of injected faults.

A :class:`FaultPlan` is a *value* — frozen dataclasses all the way down —
describing exactly which faults a trial injects: process crashes (with
optional crash-recovery restarts) and register faults.  Because plans are
values, a trial is reproducible from nothing but ``(system parameters,
plan)``: the campaign runner rebuilds the faulty system from the plan and
replays recorded schedules through it to certify violations, exactly like
:mod:`repro.lowerbounds.covering` certifies its constructions.

The paper's fault model (§2) draws a sharp line that the plan vocabulary
mirrors:

* **process crashes** are *inside* the model — m-obstruction-freedom is a
  promise about executions with arbitrary crash patterns, so crash-only
  plans must preserve Validity and k-Agreement (the campaign's positive
  control);
* **register faults** are *outside* the model — registers are assumed
  reliable, and the algorithms provably cannot survive their corruption,
  so corruption plans are expected to produce certified violations (the
  negative control).

Plan *families* are seeded generators: the same ``(system, seed, trials)``
always yields the same tuple of plans, so campaign results are replayable
end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro._types import Value
from repro.errors import ConfigurationError
from repro.memory.layout import PrimitiveBinding
from repro.runtime.system import System

#: Value injected by corruption families; never a legal input, so deciding
#: it is a Validity violation by construction.
CORRUPT_VALUE = "<corrupt>"

#: Identifier carried by corrupt snapshot entries of eponymous algorithms;
#: no real process ever writes it.
GHOST_ID = "<ghost>"


# --------------------------------------------------------------------- #
# Fault vocabulary
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class ProcessCrash:
    """Process *pid* takes no step at or after global step *at_step*."""

    pid: int
    at_step: int


@dataclass(frozen=True, slots=True)
class ProcessRestart:
    """A crashed *pid* resumes taking steps at global step *at_step*.

    Crash-recovery in the paper's model: local state and registers both
    survive, so the process continues exactly where it stopped — including
    mid-operation, between a collect and its pending write.
    """

    pid: int
    at_step: int


@dataclass(frozen=True, slots=True)
class LostWrite:
    """The *occurrence*-th write to register (*bank*, *index*) is dropped.

    Occurrences are 1-based and count writes to that register only.  The
    writer observes a normal completion.
    """

    bank: str
    index: int
    occurrence: int = 1


@dataclass(frozen=True, slots=True)
class StuckAt:
    """Register (*bank*, *index*) is stuck at *value* from the start.

    Reads (including through snapshot scans) observe *value*; writes are
    silently dropped.
    """

    bank: str
    index: int
    value: Value


@dataclass(frozen=True, slots=True)
class SpuriousReset:
    """Before its *occurrence*-th read, (*bank*, *index*) reverts to ⊥.

    Occurrences are 1-based and count reads of that register (a snapshot
    scan counts as one read of each component).  The reverted value is the
    bank's declared initial value.
    """

    bank: str
    index: int
    occurrence: int = 1


RegisterFault = Union[LostWrite, StuckAt, SpuriousReset]


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """One trial's complete fault description.  Pure, hashable, replayable.

    ``scheduler_seed`` fixes the base interleaving the trial runs under
    (crashes and restarts are applied on top of it), so the entire trial —
    including any violation it surfaces — is a deterministic function of
    the plan.
    """

    name: str
    crashes: Tuple[ProcessCrash, ...] = ()
    restarts: Tuple[ProcessRestart, ...] = ()
    register_faults: Tuple[RegisterFault, ...] = ()
    scheduler_seed: int = 1

    @property
    def crash_only(self) -> bool:
        """True iff the plan stays inside the paper's fault model."""
        return not self.register_faults

    def describe(self) -> str:
        """Human-readable one-liner for reports and narratives."""
        parts = []
        if self.crashes:
            parts.append(
                "crash " + ", ".join(
                    f"p{c.pid}@{c.at_step}" for c in self.crashes
                )
            )
        if self.restarts:
            parts.append(
                "restart " + ", ".join(
                    f"p{r.pid}@{r.at_step}" for r in self.restarts
                )
            )
        for fault in self.register_faults:
            parts.append(f"{type(fault).__name__}({fault.bank}[{fault.index}])")
        detail = "; ".join(parts) if parts else "no faults"
        return f"{self.name}: {detail}"


# --------------------------------------------------------------------- #
# System introspection helpers
# --------------------------------------------------------------------- #

def primitive_banks(system: System) -> Tuple[Tuple[str, int], ...]:
    """The (bank name, size) pairs reachable through primitive bindings.

    These are the registers the paper's space bounds count — the ones worth
    corrupting.  Banks backing implemented objects are included too (they
    are addressable as register objects under their own names).
    """
    return tuple((bank.name, bank.size) for bank in system.layout.banks)


def snapshot_bank(system: System) -> Tuple[str, int]:
    """The bank behind the algorithm's primitive snapshot object ``A``.

    Raises :class:`~repro.errors.ConfigurationError` when the system has no
    primitive snapshot binding (e.g. implemented substrates).
    """
    for name in system.layout.object_names:
        binding = system.layout.binding(name)
        if isinstance(binding, PrimitiveBinding) and binding.kind == "snapshot":
            return binding.bank, system.layout.bank_size(binding.bank)
    raise ConfigurationError(
        "system has no primitive snapshot bank to target; corruption "
        "families currently require the default (primitive) layouts"
    )


def corrupt_entry(system: System) -> Value:
    """A well-formed but never-proposed snapshot entry for *system*.

    Shaped to parse under the algorithm's decision rule — Figure 3 stores
    ``(pref, id)`` pairs, Figure 4 ``(pref, id, t, history)`` 4-tuples,
    Figure 5 ``(pref, t, history)`` triples, and the anonymous one-shot
    bare values — while carrying :data:`CORRUPT_VALUE`, which no workload
    proposes, so a decision on it is a Validity violation.
    """
    name = system.automaton.name
    if name.startswith("repeated"):
        return (CORRUPT_VALUE, GHOST_ID, 1, ())
    if name.startswith("anonymous-oneshot"):
        return CORRUPT_VALUE
    if name.startswith("anonymous"):
        return (CORRUPT_VALUE, 1, ())
    return (CORRUPT_VALUE, GHOST_ID)


# --------------------------------------------------------------------- #
# Seeded plan families
# --------------------------------------------------------------------- #

def crash_plan_family(
    system: System,
    *,
    trials: int,
    seed: int,
    max_crashed: Optional[int] = None,
    crash_window: Tuple[int, int] = (1, 80),
    restart_probability: float = 0.4,
) -> Tuple[FaultPlan, ...]:
    """Seeded crash-only plans: arbitrary crash patterns, some recovering.

    Each plan crashes a random non-empty subset of at most ``max_crashed``
    processes (default ``n − 1``, so someone always survives to make
    progress observable) at steps drawn from ``crash_window`` — early
    enough to land mid-operation — and, with ``restart_probability``,
    restarts a crashed process later.  These plans stay inside the paper's
    fault model: every one of them must preserve Validity and k-Agreement.
    """
    rng = random.Random(seed)
    cap = max_crashed if max_crashed is not None else system.n - 1
    cap = max(1, min(cap, system.n - 1))
    plans = []
    for trial in range(trials):
        count = rng.randint(1, cap)
        pids = sorted(rng.sample(range(system.n), count))
        crashes = tuple(
            ProcessCrash(pid, rng.randint(*crash_window)) for pid in pids
        )
        restarts = tuple(
            ProcessRestart(crash.pid, crash.at_step + rng.randint(5, 60))
            for crash in crashes
            if rng.random() < restart_probability
        )
        plans.append(
            FaultPlan(
                name=f"crash-{seed}-{trial}",
                crashes=crashes,
                restarts=restarts,
                scheduler_seed=rng.randrange(1, 1_000_000),
            )
        )
    return tuple(plans)


def corruption_plan_family(
    system: System,
    *,
    trials: int,
    seed: int,
    kinds: Sequence[str] = ("stuck-bank", "stuck-at", "lost-write",
                            "spurious-reset"),
) -> Tuple[FaultPlan, ...]:
    """Seeded register-corruption plans against the snapshot bank.

    Cycles through ``kinds``; the ``stuck-bank`` kind (every component of
    the snapshot bank stuck at one corrupt entry) is the deterministic
    negative control — the decision rules of Figures 3/4/5 all fire on a
    scan of at-most-m identical non-⊥ entries, so a decided
    :data:`CORRUPT_VALUE` is guaranteed, and it is never an input, so the
    trial certifies a Validity violation.  The single-register kinds probe
    subtler corruption whose outcome (masked / violation / livelock)
    depends on the interleaving — exactly what a chaos campaign is for.
    """
    rng = random.Random(seed)
    bank, size = snapshot_bank(system)
    entry = corrupt_entry(system)
    plans = []
    for trial in range(trials):
        kind = kinds[trial % len(kinds)]
        if kind == "stuck-bank":
            faults: Tuple[RegisterFault, ...] = tuple(
                StuckAt(bank, index, entry) for index in range(size)
            )
        elif kind == "stuck-at":
            faults = (StuckAt(bank, rng.randrange(size), entry),)
        elif kind == "lost-write":
            faults = (
                LostWrite(bank, rng.randrange(size), rng.randint(1, 4)),
            )
        elif kind == "spurious-reset":
            faults = (
                SpuriousReset(bank, rng.randrange(size), rng.randint(1, 6)),
            )
        else:
            raise ConfigurationError(f"unknown corruption kind {kind!r}")
        plans.append(
            FaultPlan(
                name=f"{kind}-{seed}-{trial}",
                register_faults=faults,
                scheduler_seed=rng.randrange(1, 1_000_000),
            )
        )
    return tuple(plans)


#: CLI-facing registry of plan families.
PLAN_FAMILIES = {
    "crashes": crash_plan_family,
    "corruption": corruption_plan_family,
}


def build_family(
    family: str, system: System, *, trials: int, seed: int
) -> Tuple[FaultPlan, ...]:
    """Instantiate a named plan family (see :data:`PLAN_FAMILIES`)."""
    try:
        generator = PLAN_FAMILIES[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown plan family {family!r}; known: "
            f"{sorted(PLAN_FAMILIES)}"
        ) from None
    return generator(system, trials=trials, seed=seed)
