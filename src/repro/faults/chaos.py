"""Chaos hooks for the explore engine: deterministic worker death.

The campaign subsystem injects faults into the *model* (registers,
crashes); this module injects faults into the *engine* itself, to exercise
the self-healing path of :func:`repro.explore.checker.explore_safety`:
per-batch timeouts, bounded retry, and degradation to serial expansion.

Worker death is armed through a **token directory**: each token file is a
license for exactly one pool worker to die.  A worker entering
``_expand_chunk`` calls :meth:`WorkerKill.maybe_kill`; if it atomically
claims a token (``os.unlink`` — the filesystem arbitrates races between
workers), it exits hard with ``os._exit``, mimicking an OOM-kill or
segfault: no exception propagates, the in-flight task is simply lost, and
the coordinator only notices via its batch timeout.

Arming *k* tokens therefore produces exactly *k* deaths:

* ``k == 1`` — one retry recovers and the run completes with
  ``worker_retries > 0`` and ``degraded=False``;
* ``k > max_retries`` (armed faster than the pool can be rebuilt) — the
  coordinator gives up on the pool and degrades to serial expansion,
  ``degraded=True``.

Only *daemon* processes die: under the ``fork`` start method the
coordinator inherits the worker context too, and killing it would defeat
the very resilience being tested.  Pool workers are daemonic; the
coordinator (and the serial fallback running inside it) never is.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True, slots=True)
class WorkerKill:
    """Kill a pool worker per available token in *token_dir*.  Picklable."""

    token_dir: str

    def maybe_kill(self) -> None:
        """Die hard if running in a pool worker and a token can be claimed."""
        if not multiprocessing.current_process().daemon:
            return
        try:
            tokens = sorted(os.listdir(self.token_dir))
        except OSError:
            return
        for token in tokens:
            try:
                os.unlink(os.path.join(self.token_dir, token))
            except OSError:
                continue  # another worker claimed it first
            os._exit(1)


def arm_worker_kills(token_dir: str, count: int) -> WorkerKill:
    """Create *count* death tokens in *token_dir* and return the hook."""
    directory = Path(token_dir)
    directory.mkdir(parents=True, exist_ok=True)
    for existing in directory.iterdir():
        existing.unlink()
    for index in range(count):
        (directory / f"kill-{index:04d}").touch()
    return WorkerKill(token_dir=str(directory))
