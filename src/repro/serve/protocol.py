"""The serve wire vocabulary: jobs, keys, verdicts, and their encodings.

Everything the daemon stores or transmits is canonical JSON — UTF-8,
sorted keys, no whitespace — so byte identity and semantic identity
coincide.  A job's *key* is the packed fingerprint
(:func:`~repro.explore.packed.packed_fingerprint`, hex blake2b-128) of
its canonical bytes; a verdict's *fingerprint* is the same digest over
the verdict's deterministic payload.  Two runs of the same job — on
different workers, backends, or across a daemon kill and restart —
yield byte-identical verdict payloads, hence identical fingerprints
(asserted by the kill-and-resume integration test).

The wire protocol is one JSON object per line, both directions.
Requests carry an ``op``:

* ``{"op": "verify", "job": {...}}`` — submit a job; blocks until the
  verdict is ready (or ``"wait": false`` to get the queue ticket back
  immediately and poll with ``result``);
* ``{"op": "result", "key": "..."}`` — fetch a memoized verdict;
* ``{"op": "status"}`` — daemon health: queue depth, counters, uptime;
* ``{"op": "shutdown"}`` — graceful stop (drains in-flight work).

Responses always carry ``ok`` (bool); rejections carry ``error`` and —
for backpressure specifically — ``retry_after`` (seconds), the explicit
alternative to unbounded buffering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.explore.packed import BACKENDS, packed_fingerprint

#: Version stamped into every canonical job encoding: bumping it is how
#: a semantic change to job execution invalidates every memoized verdict.
PROTOCOL_VERSION = 1

#: Job modes and the subsystems they dispatch to (see
#: :func:`repro.serve.supervisor.execute_job`).
MODES = ("explore", "run", "faults")

#: Protocol families a job may name (mirrors the CLI's registry).
FAMILIES = ("oneshot", "repeated", "anonymous", "anonymous-oneshot")

SCHEDULERS = ("round-robin", "random", "writer-priority", "bounded")

FAULT_FAMILIES = ("crashes", "corruption")


def canonical_json(obj: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, tight separators, UTF-8."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def verdict_fingerprint(payload: Dict[str, Any]) -> str:
    """Hex blake2b-128 of a verdict's deterministic payload."""
    return packed_fingerprint(canonical_json(payload))


@dataclass(frozen=True)
class VerifyJob:
    """One verification request, with a canonical identity.

    ``mode`` selects the subsystem: ``"explore"`` exhaustively
    model-checks safety (the default), ``"run"`` executes one schedule
    under a named adversary and checks the resulting execution,
    ``"faults"`` runs a seeded chaos campaign.  Every field participates
    in the job key — two jobs with equal keys are the same deterministic
    computation, which is what makes memoizing verdicts sound.
    """

    protocol: str = "oneshot"
    n: int = 3
    m: int = 1
    k: int = 1
    mode: str = "explore"
    # explore-mode knobs
    backend: str = "reference"
    max_configs: int = 50_000
    reduction: str = "none"
    canonicalize: bool = False
    # run-mode knobs
    scheduler: str = "bounded"
    seed: int = 1
    max_steps: int = 20_000
    # faults-mode knobs
    fault_family: str = "crashes"
    trials: int = 6
    budget: int = 20_000

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on a bad job."""
        if self.protocol not in FAMILIES:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; expected one of "
                f"{FAMILIES}"
            )
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown mode {self.mode!r}; expected one of {MODES}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{SCHEDULERS}"
            )
        if self.fault_family not in FAULT_FAMILIES:
            raise ConfigurationError(
                f"unknown fault family {self.fault_family!r}; expected one "
                f"of {FAULT_FAMILIES}"
            )
        if self.reduction not in ("none", "local-first"):
            raise ConfigurationError(
                f"unknown reduction {self.reduction!r}"
            )
        for name in ("n", "m", "k", "max_configs", "max_steps", "trials",
                     "budget"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"job field {name} must be a positive integer, "
                    f"got {value!r}"
                )
        if not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an integer, got "
                                     f"{self.seed!r}")
        if self.m > self.n:
            raise ConfigurationError(f"m={self.m} exceeds n={self.n}")

    def descriptor(self) -> Dict[str, Any]:
        """The job as a primitive dict, version-stamped — the wire form."""
        body: Dict[str, Any] = {"version": PROTOCOL_VERSION}
        for f in fields(self):
            body[f.name] = getattr(self, f.name)
        return body

    def canonical_bytes(self) -> bytes:
        """Canonical-JSON encoding of the descriptor (the keying bytes)."""
        return canonical_json(self.descriptor())

    @property
    def key(self) -> str:
        """Content address of this job: hex blake2b-128 of its canonical
        bytes.  Keys name journal tickets, store entries, and cache hits."""
        return packed_fingerprint(self.canonical_bytes())

    def describe(self) -> str:
        """One human line, for logs and the status endpoint."""
        return (
            f"{self.mode}[{self.protocol} n={self.n} m={self.m} "
            f"k={self.k}] {self.key[:12]}"
        )

    @classmethod
    def from_wire(cls, obj: Any) -> "VerifyJob":
        """Decode and validate a wire-form job dict.

        Unknown fields are rejected rather than ignored: a typo'd knob
        silently dropped would memoize a verdict under the wrong key.
        """
        if not isinstance(obj, dict):
            raise ConfigurationError(
                f"job must be a JSON object, got {type(obj).__name__}"
            )
        body = dict(obj)
        version = body.pop("version", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise ConfigurationError(
                f"unsupported job version {version!r} "
                f"(this daemon speaks {PROTOCOL_VERSION})"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(body) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown job field(s): {', '.join(unknown)}"
            )
        job = cls(**body)
        job.validate()
        return job
