"""Content-addressed verdict store: sealed blobs under the job key.

Each memoized verdict lives at ``<dir>/<key>.verdict`` as a sealed
(digest-framed, fsync'd, atomically replaced) canonical-JSON blob — the
same write discipline as the durable checkpoint layer, so a crash
mid-write leaves either the old entry or the new one, never a torn file.

Content addressing makes concurrent writers safe *without locking*:
verdicts are deterministic functions of their jobs, so two processes
racing to store the same key write byte-identical payloads and the
``os.replace`` loser changes nothing.  Corruption (bit rot, manual
edits) is detected on read by three independent fences — the seal
digest, the embedded key, and the verdict fingerprint — and handled by
the quarantine protocol: the bad file is moved aside, never trusted,
never deleted, and the read reports a miss.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro import telemetry
from repro.durable.checkpoint import read_sealed, write_sealed
from repro.durable.recovery import QUARANTINE_DIR, quarantine_file
from repro.serve.protocol import canonical_json, verdict_fingerprint


class VerdictStore:
    """Memoized verdicts, one sealed file per job key."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.quarantine_dir = self.directory / QUARANTINE_DIR

    def path(self, key: str) -> Path:
        """On-disk location of *key*'s sealed verdict."""
        return self.directory / f"{key}.verdict"

    def put(self, key: str, verdict: Dict[str, Any]) -> Path:
        """Seal *verdict* under *key*.  Last writer wins byte-identically."""
        payload = canonical_json(verdict)
        path = write_sealed(self.path(key), payload)
        telemetry.counter("serve.store_puts")
        telemetry.counter("serve.store_bytes", len(payload))
        return path

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Load the verdict for *key*; ``None`` (a miss) on any problem.

        A file that fails the seal, decodes to the wrong shape, carries
        a different key, or whose payload no longer matches its own
        fingerprint is quarantined with a warning — a corrupt store
        degrades to recomputation, never to a wrong answer.
        """
        path = self.path(key)
        payload = read_sealed(path)
        if payload is None:
            if path.exists():
                self._quarantine(path, "failed seal verification")
            return None
        try:
            verdict = json.loads(payload)
        except ValueError:
            self._quarantine(path, "sealed payload is not JSON")
            return None
        if not isinstance(verdict, dict) or verdict.get("key") != key:
            self._quarantine(path, "verdict key mismatch")
            return None
        recorded = verdict.get("fingerprint")
        body = verdict.get("result")
        if not isinstance(body, dict) or recorded != verdict_fingerprint(body):
            self._quarantine(path, "verdict fingerprint mismatch")
            return None
        return verdict

    def _quarantine(self, path: Path, reason: str) -> None:
        moved = quarantine_file(path, self.quarantine_dir)
        warnings.warn(
            f"verdict store entry {path.name} {reason}; "
            f"{'quarantined to ' + str(moved) if moved else 'left in place'}",
            RuntimeWarning,
            stacklevel=3,
        )
        telemetry.counter("serve.store_quarantined", volatile=True)

    def keys(self) -> Iterator[str]:
        """Stored job keys in sorted order."""
        if not self.directory.is_dir():
            return iter(())
        return (p.name[:-len(".verdict")]
                for p in sorted(self.directory.glob("*.verdict")))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
