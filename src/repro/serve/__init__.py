"""`repro serve`: a supervised verification daemon with memoized verdicts.

The batch commands (``explore``, ``run``, ``faults``) answer one question
per process.  This package turns them into a long-running service: a
daemon accepts *verify jobs* — (protocol, n, m, k, scheduler or fault
plan, backend) descriptors — over a line-delimited JSON socket, runs
them on a supervised worker pool, and memoizes every verdict in a
content-addressed store keyed by the packed job fingerprint, so repeat
queries are cache hits that never re-run the computation.

Robustness is the design center, assembled from the durable layer:

* :mod:`repro.serve.protocol` — the job/verdict vocabulary: canonical
  JSON encoding, the blake2b job key, the verdict fingerprint;
* :mod:`repro.serve.store` — the content-addressed verdict store
  (sealed blobs, quarantine on corruption, atomic replace);
* :mod:`repro.serve.queue` — the bounded admission queue: explicit
  backpressure (reject-with-retry-after, never unbounded buffering) and
  a write-ahead job journal — every accepted job is journaled *before*
  execution, so ``kill -9`` + restart replays the queue and produces
  bit-identical verdicts;
* :mod:`repro.serve.supervisor` — the worker pool: per-job
  deadline/RSS watchdogs, pool rebuild under the shared
  :class:`~repro.durable.retry.BackoffPolicy`, graceful degradation to
  serial in-process execution;
* :mod:`repro.serve.server` — the daemon: socket front end, dispatch
  loop, ``status`` endpoint, SIGTERM-graceful shutdown (exit 143);
* :mod:`repro.serve.client` — the minimal line-protocol client used by
  the CLI smoke tests, CI, and benchmarks.

See ``docs/serving.md`` for the wire protocol, backpressure semantics,
and the kill-and-resume runbook.
"""

from repro.serve.protocol import VerifyJob, verdict_fingerprint
from repro.serve.queue import Backpressure, JobQueue
from repro.serve.server import ReproServer
from repro.serve.store import VerdictStore
from repro.serve.supervisor import WorkerSupervisor, execute_job

__all__ = [
    "Backpressure",
    "JobQueue",
    "ReproServer",
    "VerdictStore",
    "VerifyJob",
    "WorkerSupervisor",
    "execute_job",
    "verdict_fingerprint",
]
