"""Supervised execution of verify jobs: worker pool, watchdogs, healing.

:func:`execute_job` is the worker entry point — a pure function from a
job descriptor (plus resource limits) to a verdict payload, runnable in
a pool worker or inline.  It dispatches on the job's ``mode``:

* ``explore`` — exhaustive safety check via
  :func:`~repro.explore.checker.explore_safety` (always ``workers=1``:
  pool workers are daemonic and cannot fork grandchildren; verdicts are
  worker-count-independent anyway);
* ``run`` — one execution under a named adversary, checked with
  :func:`~repro.spec.properties.check_safety`;
* ``faults`` — a seeded chaos campaign via
  :func:`~repro.faults.campaign.run_campaign`.

Every payload is built from deterministic identity fields only (the
explore result's :meth:`~repro.explore.checker.ExplorationResult.identity_record`,
trial outcome rows, sorted output sets) — never wall-clock or host
facts — which is what makes verdict fingerprints bit-stable across
workers, restarts, and replays.

:class:`WorkerSupervisor` owns the pool.  Per-job limits reuse
:class:`~repro.durable.watchdog.Watchdog` *inside* the worker (deadline
and RSS fire at clean unit boundaries, yielding an ``incomplete``
result), with a coordinator-side timeout as the backstop for a wedged
worker.  Pool incidents (worker death, unpicklable results, backstop
timeouts) take the shared healing path: tear down, sleep per the
jittered :class:`~repro.durable.retry.BackoffPolicy`, rebuild — and
after the retry budget, degrade to serial in-process execution rather
than going dark.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.pool
import os
import signal
import time
from typing import Any, Dict, Optional

from repro import telemetry
from repro.durable.retry import DEFAULT_REBUILD_POLICY, BackoffPolicy
from repro.durable.watchdog import Watchdog, reset_active_watchdogs
from repro.errors import ReproError
from repro.serve.protocol import VerifyJob
from repro.telemetry.tracing import SpanRecord

#: Extra seconds the coordinator waits past a job's deadline before
#: declaring the worker wedged; the in-worker watchdog should have fired
#: long before this backstop does.
DEADLINE_GRACE = 5.0

#: Default healing policy: the shared rebuild schedule plus jitter, so a
#: fleet of daemons recovering from the same incident fans out in time.
DEFAULT_SUPERVISOR_POLICY = dataclasses.replace(
    DEFAULT_REBUILD_POLICY, max_retries=2, jitter=0.25, seed=0
)


def _protocol_registry():
    from repro import (
        AnonymousRepeatedSetAgreement,
        OneShotSetAgreement,
        RepeatedSetAgreement,
    )
    from repro.agreement.anonymous import AnonymousOneShotSetAgreement

    return {
        "oneshot": OneShotSetAgreement,
        "repeated": RepeatedSetAgreement,
        "anonymous": AnonymousRepeatedSetAgreement,
        "anonymous-oneshot": AnonymousOneShotSetAgreement,
    }


def _build_system(job: VerifyJob):
    from repro import System
    from repro.bench.workloads import distinct_inputs

    protocol = _protocol_registry()[job.protocol](n=job.n, m=job.m, k=job.k)
    return System(protocol, workloads=distinct_inputs(job.n))


def _execute_explore(job: VerifyJob, watchdog: Optional[Watchdog]) -> Dict[str, Any]:
    from repro.explore import explore_safety

    system = _build_system(job)
    result = explore_safety(
        system,
        k=job.k,
        max_configs=job.max_configs,
        reduction=job.reduction,
        canonicalize=job.canonicalize,
        workers=1,
        watchdog=watchdog,
        backend=job.backend,
    )
    if result.interrupted is not None:
        return {"outcome": "incomplete", "reason": result.interrupted}
    outcome = "refuted" if result.safety_violations else "ok"
    return {
        "outcome": outcome,
        "detail": result.summary(),
        "data": result.identity_record(),
    }


def _execute_run(job: VerifyJob, watchdog: Optional[Watchdog]) -> Dict[str, Any]:
    from repro import run
    from repro.sched import build_scheduler
    from repro.spec import check_safety

    if watchdog is not None:
        reason = watchdog.poll()
        if reason is not None:
            return {"outcome": "incomplete", "reason": reason}
    system = _build_system(job)
    scheduler = build_scheduler(job.scheduler, seed=job.seed, m=job.m)
    execution = run(
        system, scheduler, max_steps=job.max_steps, on_limit="return",
        telemetry_span="serve.run",
    )
    violations = check_safety(execution, job.k)
    outputs = {
        "1": sorted(set(map(repr, execution.instance_outputs(1))))
    }
    data = {
        "hit_step_limit": execution.hit_step_limit,
        "outputs": outputs,
        "steps": execution.steps,
        "violations": sorted(str(v) for v in violations),
    }
    outcome = "refuted" if violations else "ok"
    detail = (
        f"{execution.steps} steps, outputs {outputs['1']}"
        + (f", {len(violations)} violations" if violations else "")
    )
    return {"outcome": outcome, "detail": detail, "data": data}


def _execute_faults(job: VerifyJob, watchdog: Optional[Watchdog]) -> Dict[str, Any]:
    from repro.faults import build_family, run_campaign

    system = _build_system(job)
    plans = build_family(
        job.fault_family, system, trials=job.trials, seed=job.seed
    )
    report = run_campaign(
        system, plans, family=job.fault_family, k=job.k, budget=job.budget,
        watchdog=watchdog,
    )
    if report.interrupted is not None:
        return {"outcome": "incomplete", "reason": report.interrupted}
    data = {
        "family": report.family,
        "retries": report.retries,
        "trials": [
            {
                "attempts": t.attempts,
                "certified": t.certified,
                "outcome": t.outcome,
                "plan": t.plan.describe(),
                "schedule": list(t.schedule),
                "steps": t.steps,
            }
            for t in report.trials
        ],
    }
    outcome = "refuted" if report.certified_violations else "ok"
    report.elapsed_seconds = 0.0  # wall-clock is volatile; keep detail stable
    return {"outcome": outcome, "detail": report.summary(), "data": data}


_EXECUTORS = {
    "explore": _execute_explore,
    "run": _execute_run,
    "faults": _execute_faults,
}


def execute_job(
    descriptor: Dict[str, Any],
    deadline: Optional[float] = None,
    max_rss_mb: Optional[float] = None,
    trace: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run one verify job to a verdict payload.  Never raises.

    The payload's ``outcome`` is ``"ok"`` / ``"refuted"`` (deterministic,
    memoizable), ``"incomplete"`` (a watchdog fired — a host accident,
    never cached), or ``"error"`` (the job could not run).  ``job`` is
    echoed back so a payload is self-describing.

    *trace*, when given in a pool worker (where no telemetry session is
    active), is the coordinator's wire-form trace context; the measured
    ``serve.execute`` span rides back under the payload's ``"span"`` key.
    :meth:`WorkerSupervisor.run_job` strips that key and re-emits the
    span *before* anyone fingerprints the payload, so verdict
    fingerprints are bit-identical with tracing on or off.  In-process
    execution (the degraded path, the CLI) has an active session, so the
    span below emits natively and nothing is attached.
    """
    job = None
    wall0 = time.time()
    t0 = time.perf_counter()
    try:
        job = VerifyJob.from_wire(descriptor)
        watchdog = None
        if deadline is not None or max_rss_mb is not None:
            watchdog = Watchdog(deadline=deadline, max_rss_mb=max_rss_mb)
        with telemetry.span("serve.execute", mode=job.mode, key=job.key):
            if watchdog is not None:
                with watchdog:
                    payload = _EXECUTORS[job.mode](job, watchdog)
            else:
                payload = _EXECUTORS[job.mode](job, None)
    except ReproError as exc:
        payload = {"outcome": "error", "detail": str(exc)}
    except Exception as exc:  # noqa: BLE001 — a worker must answer, not die
        payload = {"outcome": "error",
                   "detail": f"{type(exc).__name__}: {exc}"}
    payload["job"] = descriptor if job is None else job.descriptor()
    if trace is not None and telemetry.active() is None:
        payload["span"] = {
            "name": "serve.execute",
            "span": trace.get("span"),
            "parent": trace.get("parent"),
            "lane": trace.get("lane"),
            "mode": None if job is None else job.mode,
            "key": None if job is None else job.key,
            "outcome": payload.get("outcome"),
            "t0": wall0,
            "dur": time.perf_counter() - t0,
            "pid": os.getpid(),
        }
    return payload


def _strip_span(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pop the piggybacked worker span off a payload and re-emit it.

    Must run before the payload reaches
    :func:`~repro.serve.protocol.verdict_fingerprint`: the span is
    observability freight, not verdict identity, so it never participates
    in fingerprints or the verdict store.  No-op when the payload carries
    no span (tracing off, degraded in-process execution) or no session is
    active.
    """
    data = payload.pop("span", None)
    if not isinstance(data, dict) or not data.get("span"):
        return payload
    attrs = tuple(
        (key, data[key])
        for key in ("key", "mode", "outcome")
        if data.get(key) is not None
    )
    telemetry.emit_span(SpanRecord(
        name=str(data.get("name", "serve.execute")),
        span_id=str(data["span"]),
        parent=data.get("parent"),
        lane=str(data.get("lane", "")) or "serve",
        attrs=attrs,
        t0=float(data.get("t0", 0.0)),
        dur=float(data.get("dur", 0.0)),
        pid=int(data.get("pid", 0)),
    ))
    return payload


def _init_worker() -> None:
    """Pool-worker initializer: quiet signals, fresh per-process state.

    SIGINT is the coordinator's to handle (workers ignoring it is what
    makes Ctrl-C tear down cleanly); SIGTERM reverts to default so a
    stray worker dies instead of checkpointing; inherited watchdog and
    telemetry state is reset — worker metrics travel back in payloads,
    not through inherited sessions.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    reset_active_watchdogs()
    telemetry.reset()
    from repro.telemetry import heartbeat

    heartbeat.reset()


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-fork platform
        return multiprocessing.get_context()


class WorkerSupervisor:
    """Owns the worker pool; heals it; degrades to serial, never dark."""

    def __init__(
        self,
        *,
        workers: int = 1,
        job_deadline: Optional[float] = None,
        job_max_rss: Optional[float] = None,
        policy: Optional[BackoffPolicy] = None,
        serial: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.job_deadline = job_deadline
        self.job_max_rss = job_max_rss
        self.policy = policy if policy is not None else DEFAULT_SUPERVISOR_POLICY
        self.degraded = serial
        self.rebuilds = 0
        self.jobs_run = 0
        self._pool: Optional[multiprocessing.pool.Pool] = None

    def start(self) -> None:
        """Build the worker pool (no-op when serial or already built)."""
        if not self.degraded and self._pool is None:
            self._pool = self._build_pool()

    def _build_pool(self) -> Optional[multiprocessing.pool.Pool]:
        try:
            return _mp_context().Pool(
                processes=self.workers, initializer=_init_worker
            )
        except OSError:  # pragma: no cover — fork failure (rlimit, memory)
            return None

    def _teardown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:  # noqa: BLE001 — teardown is best-effort
                pass

    def run_job(
        self, job: VerifyJob, trace: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Execute *job*, healing the pool across failures.  Never raises.

        *trace* (the daemon's wire-form trace context) travels to the
        worker with the job; the worker-measured span comes back inside
        the payload and is stripped + re-emitted here — before the
        caller fingerprints the payload, which is what keeps verdict
        fingerprints identical to untraced runs.
        """
        descriptor = job.descriptor()
        args = (descriptor, self.job_deadline, self.job_max_rss, trace)
        timeout = (
            None if self.job_deadline is None
            else self.job_deadline + DEADLINE_GRACE
        )
        self.jobs_run += 1
        for attempt in self.policy.attempts():
            if self.degraded:
                break
            if self._pool is None:
                self._pool = self._build_pool()
                if self._pool is None:
                    break
            try:
                handle = self._pool.apply_async(execute_job, args)
                return _strip_span(handle.get(timeout))
            except multiprocessing.TimeoutError:
                # The in-worker watchdog missed its deadline by the whole
                # grace window: the worker is wedged, not slow.  Kill the
                # pool and report the job incomplete — retrying a job that
                # deterministically exceeds its budget would burn the
                # whole retry ladder for nothing.
                self._incident("wedged")
                return {
                    "outcome": "incomplete", "reason": "deadline",
                    "job": descriptor,
                }
            except Exception:  # noqa: BLE001 — any pool failure heals
                self._incident("pool-failure")
                if attempt < self.policy.max_retries:
                    self.policy.sleep(attempt)
        if not self.degraded:
            self.degraded = True
            telemetry.mark("serve.degraded")
        return _strip_span(execute_job(*args))

    def _incident(self, kind: str) -> None:
        self.rebuilds += 1
        telemetry.counter("serve.pool_rebuilds", volatile=True)
        telemetry.mark("serve.pool_incident", kind=kind)
        self._teardown()

    def stop(self) -> None:
        """Tear the pool down; safe to call repeatedly."""
        self._teardown()

    def status(self) -> Dict[str, Any]:
        """Healing counters for the daemon's status op."""
        return {
            "degraded": self.degraded,
            "jobs_run": self.jobs_run,
            "pool_rebuilds": self.rebuilds,
            "workers": 0 if self.degraded else self.workers,
        }
