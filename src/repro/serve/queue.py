"""Bounded admission queue with a write-ahead job journal.

Admission control is the progress-space tradeoff of a daemon under
load: an unbounded queue trades memory for the *illusion* of liveness
(every request "accepted", none guaranteed to run), so this queue is
bounded and refuses loudly instead — :meth:`JobQueue.admit` returns an
explicit :class:`Backpressure` ticket (``retry_after`` seconds) the
moment capacity is reached.  What *is* accepted is never lost: the job
is appended to a durable :class:`~repro.durable.journal.RunJournal`
**before** the caller learns it was accepted, so a ``kill -9`` at any
point leaves a journal from which :meth:`JobQueue.recover` rebuilds the
exact pending set, in admission order.  Replayed jobs are deterministic,
so the resumed daemon's verdicts are bit-identical to the ones the dead
daemon would have produced.

Journal records are ``("admit", descriptor)`` and ``("done", key)``
events under one monotonically increasing sequence; compaction folds
them into a checkpoint holding only the still-pending descriptors.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from collections import deque

from repro import telemetry
from repro.durable.journal import RunJournal
from repro.durable.recovery import QUARANTINE_DIR, RecoveryReport
from repro.serve.protocol import VerifyJob


@dataclass(frozen=True)
class Backpressure:
    """An explicit admission refusal: try again in ``retry_after`` seconds."""

    retry_after: float
    depth: int
    capacity: int

    def describe(self) -> str:
        """Human-readable refusal line for logs and error payloads."""
        return (
            f"queue full ({self.depth}/{self.capacity}); "
            f"retry after {self.retry_after:g}s"
        )


@dataclass(frozen=True)
class Ticket:
    """Proof of admission: the journal sequence number and the job key."""

    seq: int
    key: str


class JobQueue:
    """Bounded FIFO of accepted jobs, journaled write-ahead.

    Thread-safe: socket handler threads :meth:`admit`, the dispatcher
    thread :meth:`take`/:meth:`mark_done`.  The journal itself has a
    single writer (the queue), enforced by the journal's flock.
    """

    def __init__(
        self,
        capacity: int,
        *,
        journal_dir: Optional[Path] = None,
        retry_after: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._pending: Deque[Tuple[int, VerifyJob]] = deque()
        self._in_flight: Dict[int, VerifyJob] = {}
        self._seq = 0
        self._closed = False
        self.accepted_total = 0
        self.completed_total = 0
        self.rejected_total = 0
        self.recovery: Optional[RecoveryReport] = None
        self._journal: Optional[RunJournal] = None
        if journal_dir is not None:
            self._journal = RunJournal(
                Path(journal_dir),
                quarantine_dir=Path(journal_dir) / QUARANTINE_DIR,
            )
            self._recover()

    def _recover(self) -> None:
        """Rebuild the pending set from the journal (crash resume)."""
        assert self._journal is not None
        ck, records, report = self._journal.recover()
        self.recovery = report
        pending: Dict[int, VerifyJob] = {}
        if isinstance(ck, dict):
            for seq, descriptor in ck.get("pending", []):
                pending[seq] = VerifyJob.from_wire(descriptor)
        for index, event in records:
            kind, payload = event
            if kind == "admit":
                pending[index] = VerifyJob.from_wire(payload)
            elif kind == "done":
                # payload is the admission seq the completion retires
                pending.pop(payload, None)
        self._seq = self._journal.next_index
        for seq in sorted(pending):
            self._pending.append((seq, pending[seq]))
        if self._pending:
            telemetry.counter(
                "serve.jobs_replayed", len(self._pending), volatile=True
            )

    # -- producer side ----------------------------------------------------

    def admit(self, job: VerifyJob):
        """Accept *job* (journaled first), or return :class:`Backpressure`.

        Returns a :class:`Ticket` on acceptance.  The journal append
        happens before the ticket is handed out: once a caller holds a
        ticket, the job survives any crash of the daemon.
        """
        with self._lock:
            if self._closed:
                return Backpressure(
                    retry_after=self.retry_after,
                    depth=len(self._pending), capacity=self.capacity,
                )
            depth = len(self._pending) + len(self._in_flight)
            if depth >= self.capacity:
                self.rejected_total += 1
                telemetry.counter("serve.rejected_busy", volatile=True)
                return Backpressure(
                    retry_after=self.retry_after,
                    depth=depth, capacity=self.capacity,
                )
            seq = self._seq
            self._seq += 1
            if self._journal is not None:
                self._journal.record(seq, ("admit", job.descriptor()),
                                     sync=True)
            self._pending.append((seq, job))
            self.accepted_total += 1
            telemetry.counter("serve.jobs_accepted")
            telemetry.gauge("serve.queue_depth", len(self._pending))
            self._available.notify()
            return Ticket(seq=seq, key=job.key)

    # -- consumer side ----------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[Tuple[int, VerifyJob]]:
        """Pop the oldest pending job, waiting up to *timeout* seconds."""
        with self._available:
            if not self._pending:
                self._available.wait(timeout)
            if not self._pending:
                return None
            seq, job = self._pending.popleft()
            self._in_flight[seq] = job
            telemetry.gauge("serve.queue_depth", len(self._pending))
            return seq, job

    def requeue(self, seq: int) -> None:
        """Put an in-flight job back at the front (dispatcher retry)."""
        with self._lock:
            job = self._in_flight.pop(seq, None)
            if job is not None:
                self._pending.appendleft((seq, job))
                self._available.notify()

    def mark_done(self, seq: int) -> None:
        """Retire an in-flight job (its verdict is in the store)."""
        with self._lock:
            self._in_flight.pop(seq, None)
            self.completed_total += 1
            if self._journal is not None:
                done_seq = self._seq
                self._seq += 1
                self._journal.record(done_seq, ("done", seq), sync=True)
                if self._journal.should_compact():
                    self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        assert self._journal is not None
        pending = [
            (seq, job.descriptor())
            for seq, job in list(self._pending) + sorted(
                self._in_flight.items()
            )
        ]
        self._journal.checkpoint({"pending": sorted(pending)}, self._seq)

    # -- lifecycle ---------------------------------------------------------

    def depth(self) -> int:
        """Jobs admitted but not yet taken by a dispatcher."""
        with self._lock:
            return len(self._pending)

    def in_flight(self) -> int:
        """Jobs taken by a dispatcher but not yet marked done."""
        with self._lock:
            return len(self._in_flight)

    def close(self) -> None:
        """Stop admitting, checkpoint the pending set, release the journal.

        Pending jobs stay journaled: a daemon restarted on the same
        ``--data-dir`` resumes them (the graceful-shutdown analogue of
        crash recovery).
        """
        with self._lock:
            self._closed = True
            if self._journal is not None:
                self._checkpoint_locked()
                self._journal.close()
                self._journal = None
            self._available.notify_all()
