"""The `repro serve` daemon: socket front end + dispatch loop.

Connections are handled by a threading TCP server (one thread per
connection, line-delimited JSON both ways); verification itself runs in
a single dispatcher loop that drains the admission queue through the
:class:`~repro.serve.supervisor.WorkerSupervisor`.  The split matters
for the robustness story: handler threads only ever do O(1) work —
cache lookup, journal append, queue refusal — so the daemon stays
responsive (and able to say *busy* explicitly) no matter what the
workers are chewing on.

The ``status`` op is the LiveSink idea turned outward: where the live
progress line reads the telemetry registry to paint stderr, ``status``
reads the same registry (plus queue/supervisor/store internals) and
returns it as JSON, so an operator polls the daemon the way the sink
polls a run.

Shutdown discipline: SIGTERM lands in the dispatcher's watchdog mailbox
(the same graceful path every CLI command uses), the queue closes (new
submissions get backpressure), the in-flight job finishes, the pending
set is checkpointed, and the process exits 143.  ``kill -9`` skips all
of that by definition — which is fine, because every accepted job is
journaled before execution and the next start replays it
(:meth:`~repro.serve.queue.JobQueue.recover`) to bit-identical verdicts.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro import telemetry
from repro.durable.watchdog import Watchdog
from repro.errors import ConfigurationError, ReproError
from repro.serve.protocol import VerifyJob, verdict_fingerprint
from repro.serve.queue import Backpressure, JobQueue, Ticket
from repro.serve.store import VerdictStore
from repro.serve.supervisor import WorkerSupervisor
from repro.telemetry.metrics import render_exposition
from repro.telemetry.tracing import job_lane, job_span_id

#: Name of the endpoint file written under the data dir: ``host:port`` of
#: the live daemon, for clients started without an explicit port.
ENDPOINT_FILE = "endpoint"

#: Verdict outcomes that are deterministic functions of the job and are
#: therefore memoized.  ``incomplete`` (watchdog) and ``error`` are host
#: accidents and never cached.
CACHEABLE_OUTCOMES = ("ok", "refuted")


class _Handler(socketserver.StreamRequestHandler):
    """One connection: JSON lines in, JSON lines out."""

    def handle(self) -> None:  # pragma: no cover — exercised via sockets
        server: ReproServer = self.server.repro_server  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline()
            except OSError:
                return
            if not line:
                return
            if not line.strip():
                continue
            try:
                request = json.loads(line)
            except ValueError:
                response = {"ok": False, "error": "request is not JSON"}
            else:
                response = server.handle_request(request)
            try:
                self.wfile.write(
                    json.dumps(response, sort_keys=True).encode("ascii")
                    + b"\n"
                )
                self.wfile.flush()
            except (OSError, ValueError):
                return


class _SocketServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ReproServer:
    """The daemon: admission, dispatch, memoization, status, shutdown."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        data_dir: Path,
        queue_capacity: int = 64,
        workers: int = 1,
        job_deadline: Optional[float] = None,
        job_max_rss: Optional[float] = None,
        retry_after: float = 1.0,
        max_jobs: Optional[int] = None,
        serial: bool = False,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.store = VerdictStore(self.data_dir / "store")
        self.queue = JobQueue(
            queue_capacity,
            journal_dir=self.data_dir / "jobs",
            retry_after=retry_after,
        )
        self.supervisor = WorkerSupervisor(
            workers=workers, job_deadline=job_deadline,
            job_max_rss=job_max_rss, serial=serial,
        )
        self.max_jobs = max_jobs
        self.cache_hits = 0
        self.cache_misses = 0
        self.jobs_completed = 0
        self.jobs_by_outcome: Dict[str, int] = {}
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._events: Dict[int, threading.Event] = {}
        self._outcomes: Dict[int, Dict[str, Any]] = {}
        self._shutdown = threading.Event()
        self._closed = False
        self._socket_server = _SocketServer((host, port), _Handler)
        self._socket_server.repro_server = self  # type: ignore[attr-defined]
        self._acceptor: Optional[threading.Thread] = None
        self.host, self.port = self._socket_server.server_address[:2]

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the pool and the acceptor thread; write the endpoint file."""
        self.supervisor.start()
        # Sealed write->fsync->rename: clients race to read the endpoint
        # file while the daemon (re)starts, and must see the old address
        # or the new one — never a torn line.
        endpoint = self.data_dir / ENDPOINT_FILE
        tmp = endpoint.with_name(endpoint.name + ".tmp")
        with open(tmp, "w") as handle:
            handle.write(f"{self.host}:{self.port}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, endpoint)
        self._acceptor = threading.Thread(
            target=self._socket_server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-acceptor",
            daemon=True,
        )
        self._acceptor.start()
        replayed = self.queue.depth()
        if replayed:
            telemetry.mark("serve.resumed", replayed=replayed)

    def serve_forever(self) -> int:
        """The dispatcher loop; returns the process exit code.

        Runs until ``max_jobs`` is reached, a ``shutdown`` op arrives
        (exit 0), or SIGTERM lands in the watchdog mailbox (exit 143).
        """
        exit_code = 0
        with Watchdog() as watchdog:
            while True:
                reason = watchdog.poll()
                if reason is not None:
                    telemetry.mark("serve.terminated", reason=reason)
                    exit_code = 143
                    break
                if self._shutdown.is_set():
                    break
                if (self.max_jobs is not None
                        and self.jobs_completed >= self.max_jobs):
                    break
                item = self.queue.take(timeout=0.2)
                if item is None:
                    continue
                seq, job = item
                self._dispatch_one(seq, job)
        self.close()
        return exit_code

    def _dispatch_one(self, seq: int, job: VerifyJob) -> None:
        key = job.key
        entry = self.store.get(key)
        outcome: Optional[str] = None
        if entry is not None:
            self.cache_hits += 1
            telemetry.counter("serve.cache_hits")
            outcome = entry["result"].get("outcome")
            response = self._verdict_response(entry, cached=True)
        else:
            self.cache_misses += 1
            telemetry.counter("serve.cache_misses")
            session = telemetry.active()
            with telemetry.span("serve.job", key=key, mode=job.mode) as span:
                trace = None
                if session is not None:
                    # The wire-form trace context: the worker's
                    # serve.execute span will hang under this dispatch
                    # span, on the job's own deterministic lane.
                    trace = {
                        "trace": session.trace_id,
                        "parent": span.span_id,
                        "span": job_span_id(seq),
                        "lane": job_lane(seq),
                    }
                payload = self.supervisor.run_job(job, trace=trace)
                span.set(outcome=payload.get("outcome"))
            outcome = payload.get("outcome")
            if payload.get("outcome") in CACHEABLE_OUTCOMES:
                entry = {
                    "fingerprint": verdict_fingerprint(payload),
                    "key": key,
                    "result": payload,
                }
                self.store.put(key, entry)
                response = self._verdict_response(entry, cached=False)
            else:
                response = {
                    "ok": False,
                    "error": payload.get("reason") or payload.get("detail")
                    or "job failed",
                    "outcome": payload.get("outcome"),
                    "key": key,
                }
        self.queue.mark_done(seq)
        self.jobs_completed += 1
        self.jobs_by_outcome[outcome or "unknown"] = (
            self.jobs_by_outcome.get(outcome or "unknown", 0) + 1
        )
        telemetry.counter("serve.jobs_completed")
        with self._lock:
            event = self._events.pop(seq, None)
            if event is not None:
                self._outcomes[seq] = response
                event.set()

    @staticmethod
    def _verdict_response(entry: Dict[str, Any], *, cached: bool) -> Dict[str, Any]:
        return {
            "ok": True,
            "cached": cached,
            "key": entry["key"],
            "fingerprint": entry["fingerprint"],
            "verdict": entry["result"],
        }

    def close(self) -> None:
        """Stop accepting, checkpoint the queue, tear down the pool.

        Idempotent: the CLI calls it from a ``finally`` even though the
        dispatch loop already closed on its way out.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._shutdown.set()
        if self._acceptor is not None:
            # shutdown() blocks on serve_forever's exit handshake; with no
            # acceptor thread that loop never ran and the wait never ends.
            self._socket_server.shutdown()
        self._socket_server.server_close()
        self.queue.close()
        self.supervisor.stop()
        with self._lock:
            for event in self._events.values():
                event.set()  # wake waiters; they answer "shutting down"
            self._events.clear()

    # -- request handling (socket handler threads) -------------------------

    def handle_request(self, request: Any) -> Dict[str, Any]:
        """Answer one decoded protocol request; never raises."""
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "request must carry an 'op'"}
        op = request["op"]
        try:
            if op == "verify":
                return self._op_verify(request)
            if op == "result":
                return self._op_result(request)
            if op == "status":
                return {"ok": True, "status": self.status()}
            if op == "metrics":
                return {"ok": True, "exposition": self.metrics_text()}
            if op == "shutdown":
                self._shutdown.set()
                return {"ok": True, "shutting_down": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}

    def _op_verify(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = VerifyJob.from_wire(request.get("job"))
        key = job.key
        entry = self.store.get(key)
        if entry is not None:
            # Memoized: answered inline by the handler thread, no queueing.
            self.cache_hits += 1
            telemetry.counter("serve.cache_hits")
            return self._verdict_response(entry, cached=True)
        wait = bool(request.get("wait", True))
        event = threading.Event()
        with self._lock:
            if self._shutdown.is_set():
                return {"ok": False, "error": "daemon is shutting down",
                        "retry_after": self.queue.retry_after}
            ticket = self.queue.admit(job)
            if isinstance(ticket, Backpressure):
                return {
                    "ok": False,
                    "error": ticket.describe(),
                    "busy": True,
                    "retry_after": ticket.retry_after,
                    "depth": ticket.depth,
                    "capacity": ticket.capacity,
                }
            assert isinstance(ticket, Ticket)
            if wait:
                self._events[ticket.seq] = event
        if not wait:
            return {"ok": True, "accepted": True, "key": ticket.key,
                    "seq": ticket.seq}
        event.wait()
        with self._lock:
            response = self._outcomes.pop(ticket.seq, None)
        if response is None:  # woken by shutdown, not completion
            return {"ok": False, "error": "daemon is shutting down",
                    "key": ticket.key,
                    "retry_after": self.queue.retry_after}
        return response

    def _op_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        key = request.get("key")
        if not isinstance(key, str):
            raise ConfigurationError("'result' needs a string 'key'")
        entry = self.store.get(key)
        if entry is None:
            return {"ok": False, "error": "no verdict for key",
                    "pending": True, "key": key}
        return self._verdict_response(entry, cached=True)

    # -- status ------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Health snapshot: queue, cache, supervisor, and metrics."""
        status: Dict[str, Any] = {
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "endpoint": f"{self.host}:{self.port}",
            "queue": {
                "depth": self.queue.depth(),
                "in_flight": self.queue.in_flight(),
                "capacity": self.queue.capacity,
                "accepted": self.queue.accepted_total,
                "completed": self.queue.completed_total,
                "rejected": self.queue.rejected_total,
                "retry_after": self.queue.retry_after,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "entries": len(self.store),
            },
            "supervisor": self.supervisor.status(),
            "jobs_completed": self.jobs_completed,
        }
        session = telemetry.active()
        if session is not None:
            # The LiveSink reads this registry to paint a progress line;
            # status returns the same counters as JSON.
            metrics = {}
            for name in (
                "serve.jobs_accepted", "serve.jobs_completed",
                "serve.cache_hits", "serve.cache_misses",
                "serve.store_puts",
            ):
                value = session.registry.value("counter", name)
                if value is not None:
                    metrics[name] = value
            depth = session.registry.value("gauge", "serve.queue_depth")
            if depth is not None:
                metrics["serve.queue_depth"] = depth
            status["metrics"] = metrics
        return status

    def metrics_text(self) -> str:
        """The daemon's instruments as Prometheus text exposition.

        The authoritative values come from the server's own state (queue,
        cache, supervisor, per-outcome job totals) — available even with
        ``--telemetry off``; when a session is active, its registry's
        deterministic and volatile instruments ride along too, with the
        server-side values winning name collisions.
        """
        answered = self.cache_hits + self.cache_misses
        counters: Dict[str, Any] = {
            "serve.jobs_completed": self.jobs_completed,
            "serve.cache_hits": self.cache_hits,
            "serve.cache_misses": self.cache_misses,
            "serve.queue_accepted": self.queue.accepted_total,
            "serve.queue_completed": self.queue.completed_total,
            "serve.queue_rejected": self.queue.rejected_total,
            "serve.pool_rebuilds": self.supervisor.rebuilds,
        }
        for outcome in sorted(self.jobs_by_outcome):
            counters[f"serve.jobs_outcome.{outcome}"] = (
                self.jobs_by_outcome[outcome]
            )
        gauges: Dict[str, Any] = {
            "serve.queue_depth": self.queue.depth(),
            "serve.queue_in_flight": self.queue.in_flight(),
            "serve.queue_capacity": self.queue.capacity,
            "serve.cache_entries": len(self.store),
            "serve.cache_hit_ratio": (
                round(self.cache_hits / answered, 6) if answered else 0.0
            ),
            "serve.supervisor_degraded": int(self.supervisor.degraded),
            "serve.uptime_seconds": round(
                time.monotonic() - self._started, 3
            ),
        }
        histograms: Dict[str, Any] = {}
        session = telemetry.active()
        if session is not None:
            for side in session.registry.export():
                for name, value in side["counters"].items():
                    counters.setdefault(name, value)
                for name, value in side["gauges"].items():
                    gauges.setdefault(name, value)
                for name, value in side["histograms"].items():
                    histograms.setdefault(name, value)
        return render_exposition(counters, gauges, histograms)


def resolve_endpoint(data_dir: Path) -> Tuple[str, int]:
    """Read ``host:port`` from a daemon's endpoint file."""
    path = Path(data_dir) / ENDPOINT_FILE
    try:
        text = path.read_text().strip()
        host, _, port = text.rpartition(":")
        return host, int(port)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"no live endpoint under {data_dir} ({exc})"
        ) from None


def probe(host: str, port: int, timeout: float = 1.0) -> bool:
    """True iff something accepts TCP connections at host:port."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
