"""Minimal line-protocol client for `repro serve`.

One function per op, each opening a fresh connection — the protocol is
stateless per request, so a trivial client is the honest one.  Used by
the integration tests, the CI smoke job, and ``benchmarks/bench_serve.py``;
it is also the reference implementation for anyone speaking the protocol
from another language (see ``docs/serving.md``).
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.serve.server import resolve_endpoint


def request(
    host: str,
    port: int,
    payload: Dict[str, Any],
    *,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Send one request line, read one response line."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as conn:
            conn.sendall(
                json.dumps(payload, sort_keys=True).encode("ascii") + b"\n"
            )
            with conn.makefile("rb") as reader:
                line = reader.readline()
    except OSError as exc:
        raise ReproError(
            f"serve request to {host}:{port} failed: {exc}"
        ) from exc
    if not line:
        raise ReproError(
            f"serve daemon at {host}:{port} closed the connection"
        )
    try:
        response = json.loads(line)
    except ValueError as exc:
        raise ReproError(f"malformed serve response: {line!r}") from exc
    if not isinstance(response, dict):
        raise ReproError(f"malformed serve response: {response!r}")
    return response


def verify(
    host: str,
    port: int,
    job: Dict[str, Any],
    *,
    wait: bool = True,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Submit a verify job (blocking for the verdict unless ``wait=False``)."""
    return request(
        host, port, {"op": "verify", "job": job, "wait": wait},
        timeout=timeout,
    )


def result(host: str, port: int, key: str,
           *, timeout: Optional[float] = None) -> Dict[str, Any]:
    """Fetch the memoized verdict for *key* (``pending`` if absent)."""
    return request(host, port, {"op": "result", "key": key}, timeout=timeout)


def status(host: str, port: int,
           *, timeout: Optional[float] = None) -> Dict[str, Any]:
    """Poll daemon health."""
    return request(host, port, {"op": "status"}, timeout=timeout)


def metrics(host: str, port: int,
            *, timeout: Optional[float] = None) -> str:
    """Scrape the daemon's Prometheus text exposition."""
    response = request(host, port, {"op": "metrics"}, timeout=timeout)
    if not response.get("ok"):
        raise ReproError(
            f"metrics scrape failed: {response.get('error', 'unknown error')}"
        )
    exposition = response.get("exposition")
    if not isinstance(exposition, str):
        raise ReproError(f"malformed metrics response: {response!r}")
    return exposition


def shutdown(host: str, port: int,
             *, timeout: Optional[float] = None) -> Dict[str, Any]:
    """Ask the daemon to stop gracefully (drains in-flight work, exit 0)."""
    return request(host, port, {"op": "shutdown"}, timeout=timeout)


def connect(data_dir: Path):
    """``(host, port)`` of the daemon serving *data_dir*."""
    return resolve_endpoint(Path(data_dir))
