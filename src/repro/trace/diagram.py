"""ASCII renderings of executions.

``space_time_diagram`` draws the classic distributed-computing picture —
one horizontal lane per process, time flowing left to right, one glyph per
step:

* ``I`` — operation invocation;
* ``w`` — register/component write;
* ``r`` — read or scan;
* ``D`` — decision (operation response);
* ``.`` — the process did not move at this step.

``register_timeline`` complements it with the per-register write history,
which is what covering arguments reason about.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.memory.ops import is_write_access
from repro.runtime.events import DecideEvent, InvokeEvent, MemoryEvent
from repro.runtime.runner import Execution

_GLYPHS = {"invoke": "I", "write": "w", "read": "r", "decide": "D"}


def _glyph(event) -> str:
    if isinstance(event, InvokeEvent):
        return _GLYPHS["invoke"]
    if isinstance(event, DecideEvent):
        return _GLYPHS["decide"]
    if isinstance(event, MemoryEvent):
        return _GLYPHS["write"] if is_write_access(event.op) else _GLYPHS["read"]
    return "?"


def space_time_diagram(
    execution: Execution,
    *,
    start: int = 0,
    length: Optional[int] = None,
    pids: Optional[Sequence[int]] = None,
) -> str:
    """Render (a window of) the execution as one lane per process.

    ``start``/``length`` select a step window; ``pids`` restricts lanes.
    Long executions are windowed rather than wrapped — a diagram that lies
    about adjacency is worse than a truncated one.
    """
    events = execution.events[start:]
    if length is not None:
        events = events[:length]
    lanes = pids if pids is not None else range(execution.system.n)

    rows: List[str] = []
    header = "step    " + "".join(
        str((start + i) % 10) for i in range(len(events))
    )
    rows.append(header)
    for pid in lanes:
        cells = [
            _glyph(event) if event.pid == pid else "."
            for event in events
        ]
        rows.append(f"p{pid:<4}   " + "".join(cells))
    legend = "        I=invoke w=write r=read/scan D=decide"
    rows.append(legend)
    return "\n".join(rows)


def register_timeline(execution: Execution) -> str:
    """Per-register write history: ``r[b.i]: step@pid=value ...``."""
    layout = execution.system.layout
    history: Dict[str, List[str]] = {}
    for index, event in enumerate(execution.events):
        if not isinstance(event, MemoryEvent) or not is_write_access(event.op):
            continue
        coord = layout.op_coord(event.op)
        if coord is None:
            continue
        value = getattr(event.op, "value", None)
        history.setdefault(str(coord), []).append(
            f"{index}@p{event.pid}={value!r}"
        )
    lines = [
        f"{coord}: " + "  ".join(entries)
        for coord, entries in sorted(history.items())
    ]
    return "\n".join(lines) if lines else "(no writes)"
