"""Execution-trace tooling: diagrams, filtering and export.

Debugging an interleaving argument by reading raw event lists is painful;
this package renders executions the way the papers draw them:

* :func:`~repro.trace.diagram.space_time_diagram` — an ASCII space-time
  diagram, one lane per process, one column per step;
* :func:`~repro.trace.diagram.register_timeline` — per-register write
  history (who wrote what, when);
* :mod:`~repro.trace.export` — JSONL export/import of executions, so a
  violating schedule found by a search can be archived and replayed later.
"""

from repro.trace.diagram import register_timeline, space_time_diagram
from repro.trace.export import execution_to_jsonl, load_schedule, save_schedule

__all__ = [
    "space_time_diagram",
    "register_timeline",
    "execution_to_jsonl",
    "save_schedule",
    "load_schedule",
]
