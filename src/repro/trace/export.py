"""Persist and reload executions.

A violating schedule found by an expensive search (exploration, covering,
clone glue) is a proof artifact; these helpers archive it as JSON so it can
be replayed — against the same deterministic system — in a later session,
a regression test, or a bug report.

Only the *schedule* (plus system identification metadata) is persisted:
because the runtime is deterministic, the schedule is the execution.  Event
streams can additionally be exported as human-greppable JSONL.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Union

from repro.errors import ConfigurationError
from repro.runtime.events import DecideEvent, InvokeEvent, MemoryEvent
from repro.runtime.runner import Execution

PathLike = Union[str, pathlib.Path]

FORMAT_VERSION = 1


def save_schedule(execution: Execution, path: PathLike, *, note: str = "") -> None:
    """Archive the execution's schedule with identifying metadata."""
    if execution.system.workloads is None:
        raise ConfigurationError(
            "schedules of dynamic-workload systems cannot be archived "
            "(the workload function is not serializable)"
        )
    payload = {
        "format_version": FORMAT_VERSION,
        "protocol": execution.system.automaton.name,
        "params": dict(execution.system.automaton.params),
        "n": execution.system.n,
        "workloads": [list(w) for w in execution.system.workloads],
        "schedule": list(execution.schedule),
        "note": note,
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, default=repr))


def load_schedule(path: PathLike) -> List[int]:
    """Load an archived schedule (metadata validation is the caller's job
    for anything beyond the format version)."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported schedule format {payload.get('format_version')!r}"
        )
    return [int(pid) for pid in payload["schedule"]]


def execution_to_jsonl(execution: Execution) -> str:
    """One JSON object per event — greppable, diffable, jq-able."""
    lines = []
    for index, event in enumerate(execution.events):
        record = {"step": index, "pid": event.pid, "kind": event.kind}
        if isinstance(event, InvokeEvent):
            record.update(invocation=event.invocation, value=repr(event.value))
        elif isinstance(event, DecideEvent):
            record.update(invocation=event.invocation, output=repr(event.output),
                          thread=event.thread)
        elif isinstance(event, MemoryEvent):
            record.update(op=repr(event.op), response=repr(event.response),
                          in_frame=event.in_frame, thread=event.thread)
        lines.append(json.dumps(record))
    return "\n".join(lines)
