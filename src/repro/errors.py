"""Exception hierarchy for the ``repro`` library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so callers can catch the whole family with one clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """Invalid construction-time configuration (bad ``n``/``m``/``k``, layout…)."""


class MemoryError_(ReproError):
    """Illegal shared-memory access (unknown object, index out of range…).

    Named with a trailing underscore to avoid shadowing the builtin
    ``MemoryError``.
    """


class NotEnabledError(ReproError):
    """A scheduler selected a process that has no enabled step."""


class ScheduleExhaustedError(ReproError):
    """A replay schedule ran out of steps before the run's goal was met."""


class StepLimitExceeded(ReproError):
    """A bounded run or search hit its step budget before completing."""


class ProtocolViolation(ReproError):
    """An algorithm produced an ill-formed action (e.g. op on unknown object)."""


class SpecificationViolation(ReproError):
    """A checked execution violated a correctness property.

    Raised by :mod:`repro.spec` checkers when used in *raise* mode; carries a
    human-readable account of the violated property and the offending
    evidence.
    """

    def __init__(self, property_name: str, detail: str) -> None:
        super().__init__(f"{property_name}: {detail}")
        self.property_name = property_name
        self.detail = detail


class SearchInconclusive(ReproError):
    """A bounded exploration was cut by its budget without reaching closure."""


class ExplorationEngineError(ReproError):
    """An exploration worker failed while expanding a configuration.

    Raised by the parallel exploration engine when a worker-side oracle or
    step raises: the failure crosses the process boundary as a structured
    record (kind, detail, traceback, config fingerprint) rather than
    hanging the pool.  The record is available as :attr:`failure`.
    """

    def __init__(self, failure) -> None:
        super().__init__(
            f"exploration worker failed on configuration "
            f"{failure.config_fingerprint[:12]}: {failure.kind}: {failure.detail}"
        )
        self.failure = failure


class AnonymityViolation(ReproError):
    """An automaton declared anonymous consulted its process identifier."""
