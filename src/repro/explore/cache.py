"""Persistent exploration cache: resume runs instead of restarting them.

Exploration over the same ``(protocol, n, m, k, workload, layout, oracle)``
is deterministic, so its outcome — or, for budget-truncated runs, its
visited set and pending frontier — can be persisted and reused.  The cache
lives under ``.repro-cache/`` (one pickle per run key) and is keyed by a
:func:`~repro.runtime.system.stable_fingerprint` over everything that
determines the run's semantics: the automaton class and parameters, the
workloads, the memory-layout shape, the oracle and its knobs, the
reduction, and whether canonicalization was in effect.  The exploration
*budget* (``max_configs``) is deliberately **not** part of the key: a rerun
with a larger budget picks up the saved frontier and keeps going, which is
the whole point of ``--resume``.

Entries are written with the full durability protocol of
:mod:`repro.durable.checkpoint` — digest-sealed, fsync'd temp file,
atomic ``os.replace``, directory fsync — so a saved entry survives power
loss, not merely process death, and a flipped bit on disk reads as a
verifiable miss rather than plausible garbage.  Any unreadable or
version-skewed entry is *quarantined* (moved under
``<cache-dir>/quarantine/``, surfaced as a one-line warning) instead of
being silently re-hit every run.  The cache can only ever save work,
never change a verdict, because resumed state is the exact coordinator
state the interrupted run would have carried forward.
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.durable.checkpoint import read_sealed, write_sealed
from repro.durable.recovery import QUARANTINE_DIR, quarantine_file
from repro.memory.layout import ImplementedBinding, MemoryLayout, PrimitiveBinding
from repro.runtime.system import System, stable_fingerprint

#: Bumped whenever the pickled entry layout changes; skew reads as a miss.
# v2: ExplorationResult grew worker_retries/degraded (self-healing history).
# v3: entries are digest-sealed on disk (durable.checkpoint framing) and
# ExplorationResult grew interrupted/recovery (watchdog + journal);
# pre-seal files fail verification and are quarantined, not misread.
# v4: entries and ExplorationResult carry the register footprint
# (memory_steps / write_steps / registers_written), so resumed runs
# report the same footprint as uninterrupted ones.
# v5: fingerprints are blake2b digests of the packed canonical encoding
# (see repro.explore.packed) and unfinished frontiers are stored as
# (fingerprint, packed bytes) pairs instead of pickled Configuration
# graphs — entries are smaller and resumable under either --backend.
CACHE_VERSION = 5

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass
class CacheEntry:
    """One persisted exploration: either a finished result or a frontier.

    ``finished`` entries carry the final
    :class:`~repro.explore.checker.ExplorationResult`; unfinished
    (budget-truncated) entries instead carry the coordinator state needed
    to continue — the parent map and the pending frontier.
    """

    version: int
    key: str
    finished: bool
    result: Optional[object]
    parents: Optional[Dict[str, Tuple[Optional[str], Optional[int]]]]
    #: Pending ``(fingerprint, packed bytes)`` pairs (see
    #: :mod:`repro.explore.packed`) — backend-independent since v5.
    frontier: Optional[List[Tuple[str, bytes]]]
    explored: int
    #: Register footprint carried across resumes (sorted for stable bytes).
    memory_steps: int = 0
    write_steps: int = 0
    registers_written: Tuple = ()


def _layout_signature(layout: MemoryLayout) -> Tuple:
    """A structural digest of a layout: banks, bindings, implementations."""
    banks = tuple(
        (bank.name, bank.size, stable_fingerprint(bank.initial))
        for bank in layout.banks
    )
    objects = []
    for name in sorted(layout.object_names):
        binding = layout.binding(name)
        if isinstance(binding, PrimitiveBinding):
            objects.append((name, "primitive", binding.kind, binding.bank))
        elif isinstance(binding, ImplementedBinding):
            objects.append(
                (name, "implemented", binding.impl.name,
                 stable_fingerprint(binding.impl.params), binding.banks)
            )
        else:  # pragma: no cover — layouts validate bindings at build time
            objects.append((name, "unknown", repr(binding)))
    return (banks, tuple(objects))


def exploration_key(
    system: System,
    *,
    oracle: str,
    k: Optional[int],
    survivor_sets: Tuple[Tuple[int, ...], ...],
    solo_budget: int,
    reduction: str,
    canonicalized: bool,
    stop_at_first: bool,
) -> str:
    """The cache key: a stable fingerprint of the run's full semantics."""
    automaton = system.automaton
    descriptor = (
        "repro-explore", CACHE_VERSION, oracle,
        type(automaton).__qualname__, automaton.name,
        stable_fingerprint(dict(automaton.params)),
        system.n, system.workloads,
        _layout_signature(system.layout),
        k, survivor_sets, solo_budget, reduction, canonicalized, stop_at_first,
    )
    return stable_fingerprint(descriptor)


def entry_path(cache_dir: str, key: str) -> Path:
    """Filesystem location of the entry for *key* under *cache_dir*."""
    return Path(cache_dir) / f"{key}.pkl"


def _quarantine_entry(cache_dir: str, path: Path, reason: str) -> None:
    """Move a bad entry aside and say so once, with a count.  Never raises."""
    moved = quarantine_file(path, Path(cache_dir) / QUARANTINE_DIR)
    where = moved if moved is not None else path
    warnings.warn(
        f"repro-cache: quarantined 1 unreadable entry ({reason}): {where}",
        RuntimeWarning,
        stacklevel=3,
    )


def load_entry(cache_dir: str, key: str) -> Optional[CacheEntry]:
    """Load the entry for *key*, or ``None`` on miss/corruption/skew.

    Corrupt, truncated, or version-skewed entries are moved to
    ``<cache_dir>/quarantine/`` (with a one-line warning) rather than
    left in place to be re-hit — and the digest seal guarantees that a
    damaged entry can only ever read as a miss, never as a wrong verdict.
    """
    path = entry_path(cache_dir, key)
    if not path.exists():
        return None
    payload = read_sealed(path)
    if payload is None:
        _quarantine_entry(cache_dir, path, "failed digest verification")
        return None
    try:
        entry = pickle.loads(payload)
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError,
            IndexError, TypeError, ValueError):
        _quarantine_entry(cache_dir, path, "unpicklable payload")
        return None
    if not isinstance(entry, CacheEntry) or entry.version != CACHE_VERSION:
        _quarantine_entry(cache_dir, path, "version skew")
        return None
    if entry.key != key:
        _quarantine_entry(cache_dir, path, "key mismatch")
        return None
    return entry


def save_entry(cache_dir: str, key: str, entry: CacheEntry) -> Path:
    """Durably persist *entry*; returns the final path.

    Sealed and written through :func:`repro.durable.checkpoint.write_sealed`:
    the temp file is fsync'd before the atomic replace and the directory
    fsync'd after it, so the entry survives power loss — the pre-v3
    behavior only survived process crashes.
    """
    path = entry_path(cache_dir, key)
    return write_sealed(
        path, pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
    )
