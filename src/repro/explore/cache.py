"""Persistent exploration cache: resume runs instead of restarting them.

Exploration over the same ``(protocol, n, m, k, workload, layout, oracle)``
is deterministic, so its outcome — or, for budget-truncated runs, its
visited set and pending frontier — can be persisted and reused.  The cache
lives under ``.repro-cache/`` (one pickle per run key) and is keyed by a
:func:`~repro.runtime.system.stable_fingerprint` over everything that
determines the run's semantics: the automaton class and parameters, the
workloads, the memory-layout shape, the oracle and its knobs, the
reduction, and whether canonicalization was in effect.  The exploration
*budget* (``max_configs``) is deliberately **not** part of the key: a rerun
with a larger budget picks up the saved frontier and keeps going, which is
the whole point of ``--resume``.

Entries are written atomically (temp file + ``os.replace``) and any
unreadable or version-skewed entry is treated as a miss — the cache can
only ever save work, never change a verdict, because resumed state is the
exact coordinator state the interrupted run would have carried forward.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.memory.layout import ImplementedBinding, MemoryLayout, PrimitiveBinding
from repro.runtime.system import Configuration, System, stable_fingerprint

#: Bumped whenever the pickled entry layout changes; skew reads as a miss.
# v2: ExplorationResult grew worker_retries/degraded (self-healing history);
# entries pickled under v1 would deserialize without the new fields.
CACHE_VERSION = 2

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass
class CacheEntry:
    """One persisted exploration: either a finished result or a frontier.

    ``finished`` entries carry the final
    :class:`~repro.explore.checker.ExplorationResult`; unfinished
    (budget-truncated) entries instead carry the coordinator state needed
    to continue — the parent map and the pending frontier.
    """

    version: int
    key: str
    finished: bool
    result: Optional[object]
    parents: Optional[Dict[str, Tuple[Optional[str], Optional[int]]]]
    frontier: Optional[List[Tuple[str, Configuration]]]
    explored: int


def _layout_signature(layout: MemoryLayout) -> Tuple:
    """A structural digest of a layout: banks, bindings, implementations."""
    banks = tuple(
        (bank.name, bank.size, stable_fingerprint(bank.initial))
        for bank in layout.banks
    )
    objects = []
    for name in sorted(layout.object_names):
        binding = layout.binding(name)
        if isinstance(binding, PrimitiveBinding):
            objects.append((name, "primitive", binding.kind, binding.bank))
        elif isinstance(binding, ImplementedBinding):
            objects.append(
                (name, "implemented", binding.impl.name,
                 stable_fingerprint(binding.impl.params), binding.banks)
            )
        else:  # pragma: no cover — layouts validate bindings at build time
            objects.append((name, "unknown", repr(binding)))
    return (banks, tuple(objects))


def exploration_key(
    system: System,
    *,
    oracle: str,
    k: Optional[int],
    survivor_sets: Tuple[Tuple[int, ...], ...],
    solo_budget: int,
    reduction: str,
    canonicalized: bool,
    stop_at_first: bool,
) -> str:
    """The cache key: a stable fingerprint of the run's full semantics."""
    automaton = system.automaton
    descriptor = (
        "repro-explore", CACHE_VERSION, oracle,
        type(automaton).__qualname__, automaton.name,
        stable_fingerprint(dict(automaton.params)),
        system.n, system.workloads,
        _layout_signature(system.layout),
        k, survivor_sets, solo_budget, reduction, canonicalized, stop_at_first,
    )
    return stable_fingerprint(descriptor)


def entry_path(cache_dir: str, key: str) -> Path:
    """Filesystem location of the entry for *key* under *cache_dir*."""
    return Path(cache_dir) / f"{key}.pkl"


def load_entry(cache_dir: str, key: str) -> Optional[CacheEntry]:
    """Load the entry for *key*, or ``None`` on miss/corruption/skew."""
    path = entry_path(cache_dir, key)
    try:
        with path.open("rb") as handle:
            entry = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None
    if not isinstance(entry, CacheEntry) or entry.version != CACHE_VERSION:
        return None
    if entry.key != key:
        return None
    return entry


def save_entry(cache_dir: str, key: str, entry: CacheEntry) -> Path:
    """Atomically persist *entry*; returns the final path."""
    path = entry_path(cache_dir, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{key}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
