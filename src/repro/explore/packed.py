"""Packed configuration codec and the exploration backend registry.

The engine's hot path used to pay for configurations twice: every
successor was fingerprinted by walking the frozen-dataclass graph
(:func:`~repro.runtime.system.stable_fingerprint` feeds a few hundred
tiny ``blake2b.update`` calls per configuration), and every pool
boundary pickled the same graph again.  The source paper says a
configuration *is* small — the space bounds of Delporte-Gallet et al.
count O(n) registers — so this module gives it a representation to
match: an invertible, canonical byte encoding a few dozen to a few
hundred bytes long.

Format (version ``RP1``, documented byte-by-byte in
``docs/performance.md``):

* every value is one tag byte plus a payload; composite payloads carry
  LEB128 counts, so distinct structures cannot collide by concatenation;
* the five runtime skeleton classes (``Configuration``, ``ProcState``,
  ``ActiveOp``, ``Slot``, ``Frame``) get fixed one-byte class indices —
  their field layout is part of the format, and
  :data:`~repro.explore.cache.CACHE_VERSION` is bumped whenever either
  changes;
* every other frozen dataclass (protocol states, frame states,
  :class:`~repro.memory.layout.RegisterCoord`, ...) is encoded
  generically as ``(module, qualname, fields...)`` and reconstructed by
  import at decode time;
* sets and dicts are serialized in the order of their elements'
  encodings, so the bytes are canonical: equal values encode equally,
  regardless of insertion order or hash seed.

Two properties are load-bearing:

* **Invertibility** — ``decode(encode(c)) == c`` exactly (asserted by
  the round-trip property tests over every algorithm family).  Unlike
  ``stable_fingerprint``, there is no lossy ``repr`` fallback: a value
  outside the vocabulary raises :class:`PackedCodecError` instead of
  encoding ambiguously.
* **Context-free fragments** — the encoding of a value never depends on
  what was encoded before it (no cross-blob intern table), so per-process
  and per-bank fragments can be memoized.  Successors share all but one
  ``ProcState`` with their parent, which turns the per-successor
  fingerprint into a handful of dict hits, one join, and one ``blake2b``
  over a compact buffer — the ≥3x serial engine win recorded as E16.

Backends (selected with ``repro explore --backend=...``) decide what
travels through the frontier, the worker pool, and the persistence
layer:

* ``reference`` — the oracle.  Carriers are plain
  :class:`~repro.runtime.system.Configuration` objects; only
  fingerprints and checkpoints use the codec.
* ``packed`` — carriers are :class:`PackedState` (bytes plus a lazily
  decoded configuration); ``__reduce__`` drops the decoded object, so
  the multiprocessing pool ships compact bytes in both directions.
* ``legacy`` — the pre-packed keying (``stable_fingerprint`` walks),
  kept so benchmarks can measure the before/after honestly.  It is not
  offered on the CLI and refuses cache/journal persistence: its
  fingerprint namespace must never mix with the packed one on disk.

Both public backends key their visited sets, parent maps, journals and
cache entries with :func:`packed_fingerprint` over the same canonical
bytes, which is what makes checkpoints bit-identical and *cross-backend*
resumable: a run interrupted under ``--backend=packed`` continues under
``reference`` (and vice versa) without re-exploring anything.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import struct
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro._types import BOT, Params
from repro.errors import ReproError
from repro.explore.canonical import SymmetryClasses, canonicalize
from repro.runtime.frames import Frame
from repro.runtime.system import (
    ActiveOp,
    Configuration,
    ProcState,
    Slot,
    stable_fingerprint,
)

#: Format magic + version; bumped together with any tag/layout change.
MAGIC = b"RP1"

#: Backends selectable from the public API and the CLI.
BACKENDS = ("reference", "packed")


class PackedCodecError(ReproError):
    """A value outside the codec vocabulary, or corrupt packed bytes."""


# --------------------------------------------------------------------- #
# Tags.  One byte each; composites carry LEB128 counts after the tag.
# --------------------------------------------------------------------- #

_T_NONE = ord("N")
_T_BOT = ord("B")
_T_TRUE = ord("T")
_T_FALSE = ord("F")
_T_INT = ord("i")
_T_FLOAT = ord("f")
_T_STR = ord("s")
_T_BYTES = ord("y")
_T_TUPLE = ord("t")
_T_LIST = ord("l")
_T_FROZENSET = ord("e")
_T_SET = ord("E")
_T_DICT = ord("d")
_T_PARAMS = ord("P")
_T_CLASS = ord("C")
_T_DATACLASS = ord("D")

#: Fixed class indices for the runtime skeleton (format-stable order).
_SKELETON: Tuple[type, ...] = (Configuration, ProcState, ActiveOp, Slot, Frame)
_SKELETON_INDEX: Dict[type, int] = {cls: i for i, cls in enumerate(_SKELETON)}
_SKELETON_FIELDS: Tuple[Tuple[str, ...], ...] = tuple(
    tuple(f.name for f in dataclasses.fields(cls)) for cls in _SKELETON
)

_FLOAT = struct.Struct(">d")


def _w_uint(out: bytearray, value: int) -> None:
    """Append *value* >= 0 as LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _r_uint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        try:
            byte = data[pos]
        except IndexError:
            raise PackedCodecError("truncated packed value (LEB128)") from None
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


class PackedCodec:
    """Encode/decode configurations (and their value vocabulary) as bytes.

    The codec is deterministic and context-free: equal values always
    produce identical bytes, and a fragment's bytes never depend on what
    was encoded before it.  Instances keep semantically inert memo
    tables (per-process fragments — which double as orbit sort keys —
    per-bank fragments, and a generic interior-node memo for immutable
    containers such as tuples, slots, and frozen state records);
    ``memo_limit``
    bounds each, clearing on overflow, so long campaigns cannot grow
    them without bound.  Memos never change outputs — only how fast they
    are produced — and are dropped when a codec is pickled to a spawned
    worker.  Like the engine's fingerprint discipline, memoization
    assumes values reachable from a configuration are never mutated in
    place after being encoded (the runtime only evolves state through
    ``dataclasses.replace`` and tuple splicing, which preserves this).
    """

    def __init__(self, *, memo_limit: int = 1 << 18) -> None:
        self._memo_limit = memo_limit
        # Fragment memos are keyed by *object identity*, not equality:
        # successors share all but one ProcState object with their parent
        # (tuple splicing in System.step), so identity hits are the common
        # case and skip the recursive dataclass hashing an equality key
        # would pay on every lookup.  Entries retain the keyed object, so
        # an id can never be reused while its entry is alive, and hits are
        # verified with ``is``.  Identity only decides cache *hits*; the
        # bytes produced are a pure function of the value either way.
        self._proc_memo: Dict[int, Tuple[ProcState, bytes]] = {}
        self._bank_memo: Dict[int, Tuple[Tuple, bytes]] = {}
        # Generic interior-node memo for immutable containers (tuples,
        # non-root skeleton records, Params, frozensets, frozen
        # dataclasses).  ``dataclasses.replace`` keeps the identity of
        # unchanged field values, so even the one freshly built ProcState
        # per successor re-encodes only the path that actually changed.
        self._node_memo: Dict[int, Tuple[Any, bytes]] = {}
        # Per-class encoding plans for the generic dataclass path: the
        # constant header bytes (tag, module, qualname, field count) and
        # the field-name tuple, so neither is recomputed per instance.
        self._dc_plan: Dict[type, Tuple[bytes, Tuple[str, ...]]] = {}

    def __getstate__(self) -> Dict[str, Any]:
        return {"_memo_limit": self._memo_limit}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(memo_limit=state.get("_memo_limit", 1 << 18))

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def encode(self, config: Configuration) -> bytes:
        """Canonical packed bytes of *config* (``MAGIC`` + tagged payload)."""
        out = bytearray(MAGIC)
        self._enc(out, config)
        return bytes(out)

    def decode(self, data: bytes) -> Configuration:
        """Inverse of :meth:`encode`; validates framing and type."""
        value = self.decode_value(data)
        if not isinstance(value, Configuration):
            raise PackedCodecError(
                f"packed blob holds {type(value).__name__}, not Configuration"
            )
        return value

    def encode_value(self, value: Any) -> bytes:
        """Packed bytes of any vocabulary value (not just configurations)."""
        out = bytearray(MAGIC)
        self._enc(out, value)
        return bytes(out)

    def decode_value(self, data: bytes) -> Any:
        """Inverse of :meth:`encode_value`."""
        if data[: len(MAGIC)] != MAGIC:
            raise PackedCodecError(
                f"bad packed magic {bytes(data[:len(MAGIC)])!r}; expected {MAGIC!r}"
            )
        value, pos = self._dec(data, len(MAGIC))
        if pos != len(data):
            raise PackedCodecError(
                f"{len(data) - pos} trailing bytes after packed value"
            )
        return value

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    def _frag(self, value: Any) -> bytes:
        buf = bytearray()
        self._enc(buf, value)
        return bytes(buf)

    def proc_frag(self, proc: ProcState) -> bytes:
        """Memoized RP1 fragment of one process record.

        Doubles as the orbit sort key: canonicalization orders class
        members by these bytes, so the chosen representative is a pure
        function of the configuration's value — identical across runs,
        worker processes, and both codec backends — and the fragment
        computed for sorting is immediately reused when the
        representative is encoded.  (The ordering deliberately differs
        from the legacy ``stable_fingerprint`` order; orbit membership,
        and hence every exploration result, is unaffected by which
        member represents the orbit.)
        """
        entry = self._proc_memo.get(id(proc))  # repro: allow(DET003)
        if entry is not None and entry[0] is proc:
            return entry[1]
        if len(self._proc_memo) >= self._memo_limit:
            self._proc_memo.clear()
        buf = bytearray((_T_CLASS, _SKELETON_INDEX[ProcState]))
        for name in _SKELETON_FIELDS[1]:
            self._enc(buf, getattr(proc, name))
        frag = bytes(buf)
        self._proc_memo[id(proc)] = (proc, frag)  # repro: allow(DET003)
        return frag

    def _bank_frag(self, bank: Tuple) -> bytes:
        entry = self._bank_memo.get(id(bank))  # repro: allow(DET003)
        if entry is not None and entry[0] is bank:
            return entry[1]
        if len(self._bank_memo) >= self._memo_limit:
            self._bank_memo.clear()
        frag = self._frag(bank)
        self._bank_memo[id(bank)] = (bank, frag)  # repro: allow(DET003)
        return frag

    def _enc(self, out: bytearray, value: Any) -> None:
        if value is None:
            out.append(_T_NONE)
        elif value is BOT:
            out.append(_T_BOT)
        elif isinstance(value, bool):
            out.append(_T_TRUE if value else _T_FALSE)
        elif isinstance(value, int):
            out.append(_T_INT)
            if 0 <= value < 64:  # one-byte fast path for small counters
                out.append(value << 1)
            else:
                _w_uint(out, value << 1 if value >= 0 else ((-value) << 1) | 1)
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out += _FLOAT.pack(value)
        elif isinstance(value, str):
            data = value.encode()
            out.append(_T_STR)
            _w_uint(out, len(data))
            out += data
        elif isinstance(value, bytes):
            out.append(_T_BYTES)
            _w_uint(out, len(value))
            out += value
        elif type(value) is Configuration:
            out.append(_T_CLASS)
            out.append(_SKELETON_INDEX[Configuration])
            _w_uint(out, len(value.procs))
            for proc in value.procs:
                out += self.proc_frag(proc)
            _w_uint(out, len(value.memory))
            for bank in value.memory:
                out += self._bank_frag(bank)
        elif type(value) in _SKELETON_INDEX:
            memo = self._node_memo
            entry = memo.get(id(value))  # repro: allow(DET003)
            if entry is not None and entry[0] is value:
                out += entry[1]
                return
            index = _SKELETON_INDEX[type(value)]
            buf = bytearray((_T_CLASS, index))
            for name in _SKELETON_FIELDS[index]:
                self._enc(buf, getattr(value, name))
            frag = bytes(buf)
            if len(memo) >= self._memo_limit:
                memo.clear()
            memo[id(value)] = (value, frag)  # repro: allow(DET003)
            out += frag
        elif isinstance(value, tuple):
            memo = self._node_memo
            entry = memo.get(id(value))  # repro: allow(DET003)
            if entry is not None and entry[0] is value:
                out += entry[1]
                return
            buf = bytearray((_T_TUPLE,))
            _w_uint(buf, len(value))
            for item in value:
                self._enc(buf, item)
            frag = bytes(buf)
            if len(memo) >= self._memo_limit:
                memo.clear()
            memo[id(value)] = (value, frag)  # repro: allow(DET003)
            out += frag
        elif isinstance(value, list):
            out.append(_T_LIST)
            _w_uint(out, len(value))
            for item in value:
                self._enc(out, item)
        elif isinstance(value, (set, frozenset)):
            out.append(_T_FROZENSET if isinstance(value, frozenset) else _T_SET)
            _w_uint(out, len(value))
            for frag in sorted(self._frag(item) for item in value):
                out += frag
        elif isinstance(value, Params):
            out.append(_T_PARAMS)
            items = sorted(value.items())
            _w_uint(out, len(items))
            for key, val in items:
                self._enc(out, key)
                self._enc(out, val)
        elif isinstance(value, dict):
            out.append(_T_DICT)
            pairs = sorted(
                (self._frag(key), self._frag(val)) for key, val in value.items()
            )
            _w_uint(out, len(pairs))
            for key_frag, val_frag in pairs:
                out += key_frag
                out += val_frag
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            memo = self._node_memo
            entry = memo.get(id(value))  # repro: allow(DET003)
            if entry is not None and entry[0] is value:
                out += entry[1]
                return
            cls = type(value)
            plan = self._dc_plan.get(cls)
            if plan is None:
                names = tuple(f.name for f in dataclasses.fields(value))
                header = bytearray((_T_DATACLASS,))
                self._enc(header, cls.__module__)
                self._enc(header, cls.__qualname__)
                _w_uint(header, len(names))
                plan = (bytes(header), names)
                self._dc_plan[cls] = plan
            buf = bytearray(plan[0])
            for name in plan[1]:
                self._enc(buf, getattr(value, name))
            frag = bytes(buf)
            if len(memo) >= self._memo_limit:
                memo.clear()
            memo[id(value)] = (value, frag)  # repro: allow(DET003)
            out += frag
        else:
            raise PackedCodecError(
                f"cannot pack {type(value).__name__!r} value {value!r}: not in "
                "the runtime value vocabulary (primitives, ⊥, tuples, sets, "
                "dicts, Params, frozen dataclasses)"
            )

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #

    def _dec(self, data: bytes, pos: int) -> Tuple[Any, int]:
        try:
            tag = data[pos]
        except IndexError:
            raise PackedCodecError("truncated packed value (missing tag)") from None
        pos += 1
        if tag == _T_NONE:
            return None, pos
        if tag == _T_BOT:
            return BOT, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_INT:
            raw, pos = _r_uint(data, pos)
            return (-(raw >> 1) if raw & 1 else raw >> 1), pos
        if tag == _T_FLOAT:
            end = pos + _FLOAT.size
            if end > len(data):
                raise PackedCodecError("truncated packed float")
            return _FLOAT.unpack_from(data, pos)[0], end
        if tag in (_T_STR, _T_BYTES):
            size, pos = _r_uint(data, pos)
            end = pos + size
            if end > len(data):
                raise PackedCodecError("truncated packed string")
            raw = data[pos:end]
            return (raw.decode() if tag == _T_STR else bytes(raw)), end
        if tag in (_T_TUPLE, _T_LIST):
            count, pos = _r_uint(data, pos)
            items = []
            for _ in range(count):
                item, pos = self._dec(data, pos)
                items.append(item)
            return (tuple(items) if tag == _T_TUPLE else items), pos
        if tag in (_T_FROZENSET, _T_SET):
            count, pos = _r_uint(data, pos)
            items = []
            for _ in range(count):
                item, pos = self._dec(data, pos)
                items.append(item)
            return (frozenset(items) if tag == _T_FROZENSET else set(items)), pos
        if tag == _T_PARAMS:
            count, pos = _r_uint(data, pos)
            pairs = {}
            for _ in range(count):
                key, pos = self._dec(data, pos)
                val, pos = self._dec(data, pos)
                pairs[key] = val
            return Params(pairs), pos
        if tag == _T_DICT:
            count, pos = _r_uint(data, pos)
            mapping = {}
            for _ in range(count):
                key, pos = self._dec(data, pos)
                val, pos = self._dec(data, pos)
                mapping[key] = val
            return mapping, pos
        if tag == _T_CLASS:
            try:
                index = data[pos]
            except IndexError:
                raise PackedCodecError("truncated packed class tag") from None
            pos += 1
            if index >= len(_SKELETON):
                raise PackedCodecError(f"unknown packed class index {index}")
            if index == _SKELETON_INDEX[Configuration]:
                count, pos = _r_uint(data, pos)
                procs = []
                for _ in range(count):
                    proc, pos = self._dec(data, pos)
                    procs.append(proc)
                count, pos = _r_uint(data, pos)
                banks = []
                for _ in range(count):
                    bank, pos = self._dec(data, pos)
                    banks.append(bank)
                return Configuration(procs=tuple(procs), memory=tuple(banks)), pos
            cls = _SKELETON[index]
            values = []
            for _ in _SKELETON_FIELDS[index]:
                value, pos = self._dec(data, pos)
                values.append(value)
            return cls(*values), pos
        if tag == _T_DATACLASS:
            module, pos = self._dec(data, pos)
            qualname, pos = self._dec(data, pos)
            count, pos = _r_uint(data, pos)
            cls = _resolve_dataclass(module, qualname)
            if len(dataclasses.fields(cls)) != count:
                raise PackedCodecError(
                    f"{module}.{qualname} has "
                    f"{len(dataclasses.fields(cls))} fields; packed value "
                    f"has {count} (stale class definition?)"
                )
            values = []
            for _ in range(count):
                value, pos = self._dec(data, pos)
                values.append(value)
            return cls(*values), pos
        raise PackedCodecError(f"unknown packed tag {tag:#x}")


#: Per-process cache of ``(module, qualname) -> dataclass`` resolutions.
_CLASS_CACHE: Dict[Tuple[str, str], type] = {}


def _resolve_dataclass(module: str, qualname: str) -> type:
    cls = _CLASS_CACHE.get((module, qualname))
    if cls is not None:
        return cls
    try:
        obj: Any = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise PackedCodecError(
            f"cannot resolve packed dataclass {module}.{qualname}: {exc}"
        ) from exc
    if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
        raise PackedCodecError(
            f"{module}.{qualname} resolved to {obj!r}, not a dataclass"
        )
    # Per-process memo, write-once per key with a value that is a pure
    # function of the key; fork inheritance cannot make workers diverge.
    _CLASS_CACHE[(module, qualname)] = obj  # repro: allow(CONC001)
    return obj


def packed_fingerprint(data: bytes) -> str:
    """Hex blake2b-128 of packed bytes — the engine's visited-set key.

    Same digest family and width as
    :func:`~repro.runtime.system.stable_fingerprint`, but fed one compact
    buffer instead of a few hundred per-node updates.  Equal
    configurations have equal packed bytes (the codec is canonical), so
    this keys visited sets, parent maps, journals, and cache entries
    interchangeably across processes and backends.
    """
    return hashlib.blake2b(data, digest_size=16).hexdigest()


class PackedState:
    """Lazy carrier of one configuration in the packed backend.

    Lazy in both directions.  In-process it behaves like the
    configuration it wraps (the decoded object is created at most once
    and retained, so the serial hot path never decodes at all — the
    encoder hands the original object in); symmetrically, a carrier
    built from a configuration does not encode until its bytes are
    actually demanded (persistence or a pickle boundary), which spares
    the canonicalizing hot path a second encode per successor.  Across
    a pickle boundary only the bytes travel: ``__reduce__`` drops the
    decoded configuration and the codec reference, which is exactly the
    property that makes multiprocessing batches cheap.
    """

    __slots__ = ("_data", "_config", "_codec")

    def __init__(
        self,
        data: Optional[bytes] = None,
        config: Optional[Configuration] = None,
        codec: Optional[PackedCodec] = None,
    ):
        if data is None and (config is None or codec is None):
            raise ValueError("PackedState needs data, or a config and codec")
        self._data = data
        self._config = config
        self._codec = codec

    @property
    def data(self) -> bytes:
        """The packed bytes, encoding (once) if necessary."""
        if self._data is None:
            self._data = self._codec.encode(self._config)
        return self._data

    def configuration(self, codec: PackedCodec) -> Configuration:
        """The wrapped configuration, decoding (once) if necessary."""
        if self._config is None:
            self._config = codec.decode(self._data)
        return self._config

    def __reduce__(self):
        return (PackedState, (self.data,))

    def __repr__(self) -> str:
        decoded = "decoded" if self._config is not None else "lazy"
        packed = "packed" if self._data is not None else "unencoded"
        return f"PackedState({packed}, {decoded})"


class _CodecBackend:
    """Shared fingerprinting of the two codec-keyed backends."""

    name = "codec"
    #: Whether cache entries / journals may be written under this backend.
    supports_persistence = True

    def __init__(self, codec: Optional[PackedCodec] = None) -> None:
        self.codec = codec if codec is not None else PackedCodec()

    def __reduce__(self):
        """Pickle as a fresh instance: codec memos are per-process state
        (exactly what :meth:`PackedCodec.__setstate__` would drop anyway),
        and every backend is stateless apart from them."""
        return (type(self), ())

    def fingerprint(
        self, config: Configuration, classes: Optional[SymmetryClasses]
    ) -> Tuple[str, Optional[bytes]]:
        """Visited-set key of *config* plus the canonical bytes hashed.

        With symmetry classes the bytes are the *orbit representative's*
        encoding, so they key the visited set but do not represent
        ``config`` itself; the caller must not reuse them as a carrier.
        """
        if classes is None:
            data = self.codec.encode(config)
        else:
            data = self.codec.encode(
                canonicalize(config, classes, key=self.codec.proc_frag)
            )
        return packed_fingerprint(data), data


class ReferenceBackend(_CodecBackend):
    """The oracle backend: dataclass carriers, codec-keyed fingerprints."""

    name = "reference"

    def carrier(
        self, config: Configuration, data: Optional[bytes] = None
    ) -> Configuration:
        """Frontier carrier for *config* — the configuration itself."""
        return config

    def configuration(self, carrier: Configuration) -> Configuration:
        """The configuration a carrier stands for (identity here)."""
        return carrier

    def pack(self, carrier: Configuration) -> bytes:
        """Persistence bytes of a carrier (encoded on demand)."""
        return self.codec.encode(carrier)

    def unpack(self, data: bytes) -> Configuration:
        """Rebuild a carrier from persisted bytes."""
        return self.codec.decode(data)


class PackedBackend(_CodecBackend):
    """Bytes-first backend: :class:`PackedState` carriers everywhere."""

    name = "packed"

    def carrier(
        self, config: Configuration, data: Optional[bytes] = None
    ) -> PackedState:
        """Frontier carrier for *config*, reusing *data* when given."""
        return PackedState(data, config, self.codec)

    def configuration(self, carrier: PackedState) -> Configuration:
        """The configuration a carrier stands for (decoded at most once)."""
        return carrier.configuration(self.codec)

    def pack(self, carrier: PackedState) -> bytes:
        """Persistence bytes of a carrier — the packed bytes themselves."""
        return carrier.data

    def unpack(self, data: bytes) -> PackedState:
        """Rebuild a carrier from persisted bytes (decoded lazily)."""
        return PackedState(data)


class LegacyBackend:
    """Pre-packed keying (recursive ``stable_fingerprint`` walks).

    Exists so E16 can measure the engine it replaced end-to-end rather
    than estimate it.  Not offered on the CLI, and persistence is
    refused: legacy fingerprints share the cache key namespace but not
    the fingerprint space, and mixing them on disk would silently break
    visited-set dedup on resume.
    """

    name = "legacy"
    supports_persistence = False

    def __init__(self) -> None:
        self.codec = None

    def __reduce__(self):
        """Pickle as a fresh instance (stateless; mirrors _CodecBackend)."""
        return (type(self), ())

    def fingerprint(
        self, config: Configuration, classes: Optional[SymmetryClasses]
    ) -> Tuple[str, Optional[bytes]]:
        """Visited-set key via the pre-packed recursive graph walk."""
        if classes is None:
            return stable_fingerprint(config), None
        return stable_fingerprint(canonicalize(config, classes)), None

    def carrier(
        self, config: Configuration, data: Optional[bytes] = None
    ) -> Configuration:
        """Frontier carrier for *config* — the configuration itself."""
        return config

    def configuration(self, carrier: Configuration) -> Configuration:
        """The configuration a carrier stands for (identity here)."""
        return carrier

    def pack(self, carrier: Configuration) -> bytes:
        """Refused: legacy runs must never write cache or journal state."""
        raise PackedCodecError("the legacy backend does not persist state")

    def unpack(self, data: bytes) -> Configuration:
        """Refused: legacy runs must never read cache or journal state."""
        raise PackedCodecError("the legacy backend does not persist state")


#: A frontier/pool carrier: the :class:`Configuration` itself
#: (reference/legacy backends) or its packed form.  This is the element
#: type that transits the worker-pool pickle boundary.
Carrier = Union[Configuration, PackedState]

#: Any exploration backend (see :func:`make_backend`).  Backends ride
#: inside the worker context across the pool boundary, hence the
#: ``__reduce__`` on each.
Backend = Union[ReferenceBackend, PackedBackend, LegacyBackend]


_BACKEND_TYPES: Dict[str, Callable[[], object]] = {
    "reference": ReferenceBackend,
    "packed": PackedBackend,
    "legacy": LegacyBackend,
}


def make_backend(name: str):
    """Instantiate the named exploration backend.

    Public names are :data:`BACKENDS`; ``"legacy"`` additionally resolves
    for benchmarking (see :class:`LegacyBackend`).
    """
    try:
        return _BACKEND_TYPES[name]()
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        ) from None
