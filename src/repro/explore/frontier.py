"""The exploration engine: batched BFS, worker pool, symmetry, resume.

This module owns *how* the reachable configuration graph is walked; the
oracles that decide what counts as a violation live in
:mod:`repro.explore.checker`.  The design is shared-nothing:

* the **coordinator** (the calling process) owns the fingerprint-keyed
  visited set, the parent map used for witness reconstruction, and the
  frontier deque;
* **workers** (a ``multiprocessing`` pool, sidestepping the GIL) receive
  batches of configurations, run the oracle on each, compute successors,
  and ship back ``(successor, fingerprint, parent, pid)`` records plus any
  violation or failure — they never see the visited set.

Determinism is load-bearing: batches are contiguous slices of the frontier
in BFS order and worker results are merged in submission order, so the
visited set, ``configs_explored``, verdicts and witness schedules are
bit-identical for every ``workers`` value.  That is what lets the test
suite assert ``--workers 4`` certifies exactly what ``--workers 1`` does.

Fingerprints are blake2b digests of the packed canonical encoding (see
:mod:`repro.explore.packed`; ``hash()`` is salted per process and cannot
cross the pool boundary).  Both public backends key their visited sets
with the same digests, so parent maps, journal deltas, checkpoints, and
cache entries are bit-identical across ``--backend`` choices — an
interrupted run resumes under either backend.  What the backend chooses
is the *carrier*: ``reference`` moves dataclass configurations through
the frontier and pickles them across the pool, while ``packed`` moves
:class:`~repro.explore.packed.PackedState` bytes, decoding at most once
per expansion.  With ``canonicalize=True`` and a symmetric system (see
:mod:`repro.explore.canonical`) fingerprints are taken of the orbit
representative instead, deduplicating identity-permuted configurations;
the *actual* first-reached configuration of each orbit is the one
expanded, which keeps every parent chain a literal replayable schedule.

Worker-side exceptions never hang the pool: they are caught in the worker,
wrapped as :class:`EngineFailure` records, and re-raised by the
coordinator as :class:`~repro.errors.ExplorationEngineError`.
``KeyboardInterrupt`` tears the pool down (terminate + join) before
propagating.

What worker-side catching *cannot* cover is the worker dying outright
(OOM-kill, segfault, a chaos hook): ``multiprocessing.Pool`` repopulates
the process but the in-flight task is lost and a bare ``map`` would hang
forever.  With ``batch_timeout`` set, the coordinator instead waits a
bounded time per batch; on timeout (or any pool-infrastructure failure) it
discards the partial batch, rebuilds the pool, backs off exponentially and
resubmits — up to ``max_retries`` times, after which it *degrades*: the
pool is abandoned and the rest of the run expands serially in-process.
Batches are merged all-or-nothing, so retried and degraded runs produce
verdicts bit-identical to healthy ones; the history is recorded in
``ExplorationResult.worker_retries`` / ``.degraded``.

Self-healing covers worker death; ``journal_dir`` covers *coordinator*
death.  With a journal armed, every merged batch is appended to an
append-only checksummed log as a :class:`_BatchDelta` — the merge's
decisions in fingerprints, a few dozen bytes per discovery — and at
``checkpoint_every`` batch boundaries where the log has outgrown the last
checkpoint (:meth:`~repro.durable.journal.RunJournal.should_compact`) the
aggregate coordinator state is compacted into a sealed checkpoint (see
:mod:`repro.durable`).  Recovery is checkpoint + delta replay: because
batches merge deterministically and ``step`` is pure, a run killed at any
instant (``kill -9`` included) resumes from its last consistent prefix,
loses at most one un-journaled batch of work, and finishes bit-identical
to a run that was never interrupted.  A :class:`~repro.durable.watchdog.Watchdog`, polled
between batches, turns deadlines / RSS ceilings / SIGTERM into a final
checkpoint and an early return with ``result.interrupted`` set.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.durable.journal import RunJournal
from repro.durable.recovery import QUARANTINE_DIR
from repro.durable.retry import DEFAULT_REBUILD_POLICY
from repro.durable.watchdog import Watchdog, reset_active_watchdogs
from repro.errors import ExplorationEngineError
from repro.explore import checker
from repro.explore.canonical import SymmetryClasses, symmetry_classes
from repro.explore.packed import Backend, Carrier, make_backend
from repro.faults.chaos import WorkerKill
from repro.memory.layout import RegisterCoord
from repro.memory.ops import is_write_access
from repro.runtime.events import MemoryEvent
from repro.telemetry import heartbeat
from repro.telemetry.metrics import COUNT_BUCKETS, MetricsRegistry, MetricsSnapshot
from repro.telemetry.tracing import SpanRecord, chunk_lane, chunk_span_id
from repro.runtime.system import Configuration, System


@dataclass(frozen=True, slots=True)
class EngineFailure:
    """A worker-side exception, serialized across the pool boundary."""

    kind: str
    detail: str
    config_fingerprint: str
    traceback: str


@dataclass(frozen=True, slots=True)
class _Expansion:
    """Everything a worker learned about one frontier configuration.

    The footprint fields measure the expansion's own steps — one step per
    enabled pid — in the paper's space vocabulary: how many of them were
    shared-memory accesses, how many were writes, and which global register
    coordinates those writes landed on.  Each reachable edge is stepped
    exactly once, so the sums are a pure function of the explored graph and
    stay bit-identical across worker counts, batch sizes, and resumes.
    """

    fingerprint: str
    safety_problem: Optional[Tuple[str, int, Tuple, str]]
    progress_problem: Optional[Tuple[Tuple[int, ...], str]]
    #: ``(pid, carrier, fingerprint)`` per successor; the carrier is a
    #: :class:`Configuration` (reference/legacy) or a
    #: :class:`~repro.explore.packed.PackedState` (packed backend).
    successors: Tuple[Tuple[int, Carrier, str], ...]
    failure: Optional[EngineFailure]
    memory_inc: int = 0
    write_inc: int = 0
    writes: Tuple[RegisterCoord, ...] = ()
    #: Canonical packed bytes produced while fingerprinting successors —
    #: the deterministic input of the ``explore.packed.*`` counters.
    encoded_bytes: int = 0


@dataclass(frozen=True, slots=True)
class _WorkerContext:
    """Immutable per-run inputs every worker needs (sent once, pre-fork)."""

    system: System
    oracle: str
    k: Optional[int]
    inputs: Optional[Dict]
    reduction: str
    classes: Optional[SymmetryClasses]
    survivor_sets: Tuple[Tuple[int, ...], ...]
    solo_budget: int
    #: Chaos hook; workers call ``maybe_kill()`` once per chunk.
    chaos: Optional[WorkerKill] = None
    #: Whether the coordinator has a telemetry session; workers then meter
    #: their chunks and ship snapshots back for the deterministic merge.
    telemetry_enabled: bool = False
    #: The exploration backend (see :mod:`repro.explore.packed`): owns the
    #: fingerprint keying and the frontier/pool carrier representation.
    backend: Optional[Backend] = None


#: Worker-process slot for the run context (set pre-fork / by initializer).
_WORKER: Optional[_WorkerContext] = None


def _init_worker() -> None:
    """Pool initializer: shield the worker from the terminal's Ctrl-C.

    A SIGINT reaches every process in the foreground group.  A worker
    killed mid-``get()`` dies holding the pool's task-queue lock, and the
    coordinator's teardown then deadlocks acquiring it — so workers ignore
    SIGINT and only the coordinator turns Ctrl-C into a clean exit
    (teardown stops workers via SIGTERM, which stays deliverable).

    SIGTERM goes the *other* way: pool teardown stops workers with it, so
    a worker that inherited the coordinator's graceful handler (fork start
    method) would swallow the kill and deadlock the join.  Workers restore
    the default disposition and drop any watchdog registrations inherited
    across the fork — those belong to the coordinator.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    reset_active_watchdogs()
    # An inherited telemetry session would interleave worker events into
    # the coordinator's sinks; workers meter chunks via fresh registries
    # instead (see _expand_chunk_measured).
    telemetry.reset()
    heartbeat.reset()


def _set_worker(ctx: _WorkerContext) -> None:
    """Pool initializer: install the run context in this worker process."""
    global _WORKER
    # The one sanctioned worker-side global: the spawn-path handoff slot
    # for the run context, written exactly once before any chunk runs.
    _WORKER = ctx  # repro: allow(CONC001)
    _init_worker()


def _expand_one(ctx: _WorkerContext, fp: str, carrier: Carrier) -> _Expansion:
    """Oracle-check one frontier carrier and compute its successors."""
    try:
        backend = ctx.backend
        config = backend.configuration(carrier)
        if ctx.oracle == "safety":
            problem = checker._check_config_safety(
                ctx.system, config, ctx.k, ctx.inputs
            )
            if problem is not None:
                return _Expansion(fp, problem, None, (), None)
            pids = checker._expansion_pids(ctx.system, config, ctx.reduction)
        else:
            stall = checker._check_config_progress(
                ctx.system, config, ctx.survivor_sets, ctx.solo_budget
            )
            if stall is not None:
                return _Expansion(fp, None, stall, (), None)
            pids = ctx.system.enabled_pids(config)
        successors: List[Tuple[int, object, str]] = []
        memory_inc = write_inc = 0
        encoded_bytes = 0
        writes: List[RegisterCoord] = []
        for pid in pids:
            step = ctx.system.step(config, pid)
            succ_fp, data = backend.fingerprint(step.config, ctx.classes)
            if data is not None:
                encoded_bytes += len(data)
            # With symmetry classes the fingerprinted bytes describe the
            # orbit representative, not the successor itself — the carrier
            # must then re-encode the actual configuration (memo-cheap).
            successors.append((
                pid,
                backend.carrier(
                    step.config, data if ctx.classes is None else None
                ),
                succ_fp,
            ))
            if isinstance(step.event, MemoryEvent):
                memory_inc += 1
                if is_write_access(step.event.op):
                    write_inc += 1
                    coord = ctx.system.layout.op_coord(step.event.op)
                    if coord is not None and coord not in writes:
                        writes.append(coord)
        return _Expansion(
            fp, None, None, tuple(successors), None,
            memory_inc, write_inc, tuple(writes), encoded_bytes,
        )
    except Exception as exc:  # noqa: BLE001 — everything must cross the pool
        failure = EngineFailure(
            kind=type(exc).__name__,
            detail=str(exc),
            config_fingerprint=fp,
            traceback=traceback.format_exc(),
        )
        return _Expansion(fp, None, None, (), failure)


def _expand_chunk(
    payload: Tuple[int, int, Optional[str], List[Tuple[str, Carrier]]],
) -> Tuple[List[_Expansion], Optional[MetricsSnapshot]]:
    """Worker entry point: expand a contiguous frontier slice, in order.

    *payload* is ``(batch_index, chunk_index, parent_span, items)`` — the
    trace coordinates ride with the work so the worker can mint its
    deterministic span identity without any cross-process counter.
    Alongside the expansions, ships back a picklable metrics snapshot of
    the chunk (``None`` when the run is untelemetered) carrying the
    chunk's span record; the coordinator folds snapshots in at the
    deterministic merge point, in submission order.
    """
    batch_index, chunk_index, parent, items = payload
    assert _WORKER is not None, "worker context not initialized"
    if _WORKER.chaos is not None:
        _WORKER.chaos.maybe_kill()
    return _expand_chunk_measured(
        _WORKER, items, batch=batch_index, chunk=chunk_index, parent=parent
    )


def _expand_chunk_measured(
    ctx: _WorkerContext,
    items: List[Tuple[str, Carrier]],
    *,
    batch: int = 0,
    chunk: int = 0,
    parent: Optional[str] = None,
) -> Tuple[List[_Expansion], Optional[MetricsSnapshot]]:
    """Expand *items* in order, metering the chunk when telemetry is on.

    The chunk registry is process-local and fresh per chunk: counters are
    deterministic for a fixed ``workers`` value, durations are volatile by
    declaration, and nothing touches the per-step hot loop.  The returned
    snapshot piggybacks one ``explore.chunk`` span record whose id and
    lane are pure functions of ``(batch, chunk)`` — emitted only if and
    when the coordinator *accepts* the batch, so a retried or discarded
    submission leaves no span behind and durations never double-count.
    """
    if not ctx.telemetry_enabled:
        return [_expand_one(ctx, fp, carrier) for fp, carrier in items], None
    registry = MetricsRegistry()
    wall0 = time.time()
    t0 = time.perf_counter()
    expansions = [_expand_one(ctx, fp, carrier) for fp, carrier in items]
    elapsed = time.perf_counter() - t0
    registry.counter("explore.worker.chunks").inc()
    registry.counter("explore.worker.expansions").inc(len(expansions))
    if getattr(ctx.backend, "name", None) == "packed":
        # Deterministic: sums over the expanded configurations only, so
        # they are invariant under worker count and batch size like every
        # other non-volatile explore counter.
        registry.counter("explore.packed.configs_encoded").inc(
            sum(len(e.successors) for e in expansions)
        )
        registry.counter("explore.packed.bytes_encoded").inc(
            sum(e.encoded_bytes for e in expansions)
        )
    registry.histogram("explore.worker.chunk_seconds", volatile=True).observe(
        elapsed
    )
    record = SpanRecord(
        name="explore.chunk",
        span_id=chunk_span_id(batch, chunk),
        parent=parent,
        lane=chunk_lane(chunk),
        attrs=(("batch", batch), ("chunk", chunk),
               ("expansions", len(expansions))),
        t0=wall0,
        dur=elapsed,
        pid=os.getpid(),
    )
    return expansions, registry.snapshot(spans=(record,))


def _split(batch: List, parts: int) -> List[List]:
    """Split *batch* into ≤ *parts* contiguous, order-preserving chunks."""
    parts = min(parts, len(batch))
    size, rem = divmod(len(batch), parts)
    chunks, start = [], 0
    for i in range(parts):
        end = start + size + (1 if i < rem else 0)
        chunks.append(batch[start:end])
        start = end
    return chunks


def _make_pool(workers: int, ctx: _WorkerContext):
    """Create the worker pool, preferring ``fork`` (no System pickling)."""
    global _WORKER
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        mp_ctx = multiprocessing.get_context("fork")
        # Inherited by forked workers, cleared in _teardown; written only
        # by the coordinator between runs, never while a pool is live.
        _WORKER = ctx  # repro: allow(CONC001)
        return mp_ctx.Pool(processes=workers, initializer=_init_worker)
    mp_ctx = multiprocessing.get_context("spawn")
    return mp_ctx.Pool(processes=workers, initializer=_set_worker, initargs=(ctx,))


def _teardown(pool) -> None:
    global _WORKER
    # Coordinator-side cleanup of the fork handoff slot (see _make_pool);
    # runs after the pool is gone, so no worker can observe the write.
    _WORKER = None  # repro: allow(CONC001)
    if pool is not None:
        pool.terminate()
        pool.join()


def _witness_schedule(
    parents: Dict[str, Tuple[Optional[str], Optional[int]]], fp: str
) -> Tuple[int, ...]:
    schedule: List[int] = []
    cursor: Optional[str] = fp
    while cursor is not None:
        parent, pid = parents[cursor]
        if pid is not None:
            schedule.append(pid)
        cursor = parent
    schedule.reverse()
    return tuple(schedule)


@dataclass(frozen=True)
class _BatchDelta:
    """One merged batch, as the journal record that replays the merge.

    Deltas carry the merge's *decisions*, not its data: frontier pops,
    counter increments, newly discovered ``(fingerprint, parent_fp, pid)``
    triples, and violations with their witness schedules already
    reconstructed.  Configurations themselves are deliberately absent —
    ``step`` is pure and deterministic, so replay re-derives each new
    frontier configuration from its (just-popped) parent in one step call.
    That keeps the steady-state journal write proportional to fingerprints
    (~70 bytes/config) instead of pickled state, and recovery is still
    checkpoint + replay with no oracle re-checks: a resumed coordinator is
    bit-identical to one that never stopped.
    """

    index: int
    popped: int
    explored_inc: int
    new_entries: Tuple[Tuple[str, str, int], ...]
    safety: Tuple[checker.SafetyCounterexample, ...]
    progress: Tuple[checker.ProgressCounterexample, ...]
    done: bool
    memory_inc: int = 0
    write_inc: int = 0
    #: Register coordinates first written by this batch, in merge order —
    #: replayed into ``ExplorationResult.registers_written`` on recovery so
    #: a resumed run's footprint is bit-identical to an uninterrupted one.
    new_writes: Tuple[RegisterCoord, ...] = ()


def _merge_batch(
    index: int,
    popped: int,
    expansions: List[_Expansion],
    parents: Dict[str, Tuple[Optional[str], Optional[int]]],
    frontier: Deque[Tuple[str, object]],
    result: checker.ExplorationResult,
    stop_at_first: bool,
) -> Tuple[_BatchDelta, bool]:
    """Merge one fully-expanded batch into the coordinator state.

    Raises :class:`~repro.errors.ExplorationEngineError` *before* touching
    any state if the batch carries a worker failure, so a failed batch
    leaves the coordinator (and hence any journal checkpoint of it)
    exactly as consistent as an unattempted one.  Returns the delta that
    reproduces this merge plus the early-stop flag.
    """
    for expansion in expansions:
        if expansion.failure is not None:
            raise ExplorationEngineError(expansion.failure)
    explored_inc = 0
    memory_inc = write_inc = 0
    new_writes: List[RegisterCoord] = []
    new_entries: List[Tuple[str, str, int]] = []
    safety_added: List[checker.SafetyCounterexample] = []
    progress_added: List[checker.ProgressCounterexample] = []
    done = False
    for expansion in expansions:
        explored_inc += 1
        memory_inc += expansion.memory_inc
        write_inc += expansion.write_inc
        for coord in expansion.writes:
            if coord not in result.registers_written and coord not in new_writes:
                new_writes.append(coord)
        if expansion.safety_problem is not None:
            prop, instance, outs, detail = expansion.safety_problem
            safety_added.append(
                checker.SafetyCounterexample(
                    property_name=prop,
                    instance=instance,
                    outputs=outs,
                    schedule=_witness_schedule(parents, expansion.fingerprint),
                    detail=detail,
                )
            )
            if stop_at_first:
                done = True
                break
            continue  # never expand beyond a violating configuration
        if expansion.progress_problem is not None:
            survivors, detail = expansion.progress_problem
            progress_added.append(
                checker.ProgressCounterexample(
                    survivors=survivors,
                    schedule_to_config=_witness_schedule(
                        parents, expansion.fingerprint
                    ),
                    detail=detail,
                )
            )
            done = True
            break
        for pid, successor, succ_fp in expansion.successors:
            if succ_fp not in parents:
                parents[succ_fp] = (expansion.fingerprint, pid)
                new_entries.append((succ_fp, expansion.fingerprint, pid))
                frontier.append((succ_fp, successor))
    result.configs_explored += explored_inc
    result.memory_steps += memory_inc
    result.write_steps += write_inc
    result.registers_written.update(new_writes)
    result.safety_violations.extend(safety_added)
    result.progress_violations.extend(progress_added)
    if done:
        result.complete = False
    delta = _BatchDelta(
        index=index,
        popped=popped,
        explored_inc=explored_inc,
        new_entries=tuple(new_entries),
        safety=tuple(safety_added),
        progress=tuple(progress_added),
        done=done,
        memory_inc=memory_inc,
        write_inc=write_inc,
        new_writes=tuple(new_writes),
    )
    return delta, done


def _apply_delta(
    system: System,
    delta: _BatchDelta,
    parents: Dict[str, Tuple[Optional[str], Optional[int]]],
    frontier: Deque[Tuple[str, object]],
    result: checker.ExplorationResult,
    backend,
) -> bool:
    """Replay one journaled batch merge during recovery.

    New frontier configurations are re-derived by stepping their parents
    — the entries this very delta pops — through the pure transition
    function, so the journal never needs to store configurations (see
    :class:`_BatchDelta`).  One step per recovered discovery, no oracle
    re-checks.
    """
    popped: Dict[str, object] = {}
    for _ in range(delta.popped):
        fp, carrier = frontier.popleft()
        popped[fp] = carrier
    for succ_fp, parent_fp, pid in delta.new_entries:
        parents[succ_fp] = (parent_fp, pid)
        parent = backend.configuration(popped[parent_fp])
        frontier.append(
            (succ_fp, backend.carrier(system.step(parent, pid).config))
        )
    result.configs_explored += delta.explored_inc
    result.memory_steps += delta.memory_inc
    result.write_steps += delta.write_inc
    result.registers_written.update(delta.new_writes)
    result.safety_violations.extend(delta.safety)
    result.progress_violations.extend(delta.progress)
    if delta.done:
        result.complete = False
    return delta.done


def _state_payload(
    parents: Dict[str, Tuple[Optional[str], Optional[int]]],
    frontier: Deque[Tuple[str, object]],
    result: checker.ExplorationResult,
    backend,
) -> Dict:
    """Absolute coordinator state, as an *unfinished* checkpoint payload.

    The frontier is stored as ``(fingerprint, packed bytes)`` pairs —
    both backends produce identical payloads (and hence identical sealed
    checkpoints), which is what makes a checkpoint resumable under either
    ``--backend``.
    """
    return {
        "finished": False,
        "parents": parents,
        "frontier": [(fp, backend.pack(carrier)) for fp, carrier in frontier],
        "explored": result.configs_explored,
        "safety": list(result.safety_violations),
        "progress": list(result.progress_violations),
        "memory_steps": result.memory_steps,
        "write_steps": result.write_steps,
        "registers_written": set(result.registers_written),
    }


def explore(
    system: System,
    *,
    oracle: str,
    k: Optional[int] = None,
    m: Optional[int] = None,
    max_configs: int,
    stop_at_first: bool = True,
    reduction: str = "none",
    solo_budget: int = 20_000,
    survivor_sets: Optional[Sequence[Tuple[int, ...]]] = None,
    workers: int = 1,
    batch_size: int = 64,
    canonicalize: bool = False,
    cache_dir: Optional[str] = None,
    batch_timeout: Optional[float] = None,
    max_retries: int = 2,
    chaos: Optional[object] = None,
    journal_dir: Optional[str] = None,
    checkpoint_every: int = 64,
    watchdog: Optional[Watchdog] = None,
    backend: str = "reference",
) -> checker.ExplorationResult:
    """Run one exploration with the chosen oracle; the library's one engine.

    Public entry points are :func:`repro.explore.explore_safety` and
    :func:`repro.explore.explore_progress_closure`, which document the
    oracle-specific semantics; every keyword here mirrors theirs.
    """
    if oracle not in ("safety", "progress"):
        raise ValueError(f"unknown oracle {oracle!r}")
    bk = make_backend(backend)
    if not bk.supports_persistence and (
        cache_dir is not None or journal_dir is not None
    ):
        raise ValueError(
            f"backend {backend!r} does not support cache_dir/journal_dir"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if batch_timeout is not None and batch_timeout <= 0:
        raise ValueError(f"batch_timeout must be positive, got {batch_timeout}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if oracle == "safety":
        if k is None:
            raise ValueError("safety oracle requires k")
        inputs = checker._instance_input_sets(system)
        sets: Tuple[Tuple[int, ...], ...] = ()
    else:
        if m is None and survivor_sets is None:
            raise ValueError("progress oracle requires m or survivor_sets")
        inputs = None
        if survivor_sets is None:
            survivor_sets = checker.default_survivor_sets(system.n, m)
        sets = tuple(tuple(s) for s in survivor_sets)

    classes = symmetry_classes(system) if canonicalize else None
    ctx = _WorkerContext(
        system=system,
        oracle=oracle,
        k=k,
        inputs=inputs,
        reduction=reduction,
        classes=classes,
        survivor_sets=sets,
        solo_budget=solo_budget,
        chaos=chaos,
        telemetry_enabled=telemetry.active() is not None,
        backend=bk,
    )

    cache = None
    key = None
    entry = None
    if cache_dir is not None or journal_dir is not None:
        from repro.explore import cache as cache_mod

        key = cache_mod.exploration_key(
            system,
            oracle=oracle,
            k=k,
            survivor_sets=sets,
            solo_budget=solo_budget,
            reduction=reduction,
            canonicalized=classes is not None,
            stop_at_first=stop_at_first,
        )
        if cache_dir is not None:
            cache = cache_mod
            entry = cache_mod.load_entry(cache_dir, key)
            if entry is not None and entry.finished:
                return entry.result

    # Journal recovery: a finished checkpoint short-circuits the run; an
    # unfinished one overrides the cache entry as the resume base (the
    # journal is written during the run, the cache only at its end, so the
    # journal is never the staler of the two for the same key).
    runlog = None
    recovery = None
    recovered_state = None
    recovered_records: List[Tuple[int, _BatchDelta]] = []
    if journal_dir is not None:
        runlog = RunJournal(
            Path(journal_dir) / f"{key}.journal",
            quarantine_dir=Path(journal_dir) / QUARANTINE_DIR,
        )
        ck, recovered_records, recovery = runlog.recover()
        if isinstance(ck, dict):
            if ck.get("finished"):
                prior: checker.ExplorationResult = ck["result"]
                prior.recovery = recovery
                runlog.close()
                return prior
            recovered_state = ck
        if not recovery.salvaged_anything:
            recovery = None  # fresh journal: nothing recovered, no report

    if recovered_state is not None:
        parents = recovered_state["parents"]
        frontier: Deque[Tuple[str, object]] = deque(
            (fp, bk.unpack(blob)) for fp, blob in recovered_state["frontier"]
        )
        explored = recovered_state["explored"]
        base_safety = list(recovered_state["safety"])
        base_progress = list(recovered_state["progress"])
        base_footprint = (
            recovered_state.get("memory_steps", 0),
            recovered_state.get("write_steps", 0),
            set(recovered_state.get("registers_written", ())),
        )
    elif entry is not None:
        parents = entry.parents
        frontier = deque((fp, bk.unpack(blob)) for fp, blob in entry.frontier)
        explored = entry.explored
        base_safety, base_progress = [], []
        base_footprint = (
            entry.memory_steps, entry.write_steps,
            set(entry.registers_written),
        )
    else:
        initial = system.initial_configuration()
        initial_fp, initial_data = bk.fingerprint(initial, classes)
        parents = {initial_fp: (None, None)}
        frontier = deque([(
            initial_fp,
            bk.carrier(initial, initial_data if classes is None else None),
        )])
        explored = 0
        base_safety, base_progress = [], []
        base_footprint = (0, 0, set())

    result = checker.ExplorationResult(configs_explored=explored, complete=True)
    result.safety_violations.extend(base_safety)
    result.progress_violations.extend(base_progress)
    result.memory_steps, result.write_steps = base_footprint[0], base_footprint[1]
    result.registers_written = base_footprint[2]
    result.recovery = recovery

    done = False
    batch_index = 0
    if runlog is not None:
        # Replay the contiguous post-checkpoint deltas; the merge already
        # happened once, so this is deterministic re-stepping with no
        # oracle re-checks.
        for _, delta in recovered_records:
            done = (
                _apply_delta(system, delta, parents, frontier, result, bk)
                or done
            )
        batch_index = runlog.next_index

    # A journaled run always has a watchdog armed (even a limitless one):
    # it is the mailbox through which the CLI's SIGTERM handler requests
    # the checkpoint-then-exit path.
    wd = watchdog
    if wd is None and runlog is not None:
        wd = Watchdog()

    telemetry.gauge(
        "footprint.registers_provisioned", system.layout.register_count()
    )
    telemetry.gauge("progress.total", max_configs)

    pool = None
    interrupted: Optional[str] = None
    try:
        if wd is not None:
            wd.__enter__()
        try:
            if workers > 1:
                pool = _make_pool(workers, ctx)
            while frontier and not done:
                if wd is not None:
                    interrupted = wd.poll()
                    if interrupted is not None:
                        break
                budget = max_configs - result.configs_explored
                if budget <= 0:
                    result.complete = False
                    break
                count = min(len(frontier), budget, batch_size * workers)
                batch = [frontier.popleft() for _ in range(count)]
                with telemetry.span(
                    "explore.batch", batch=batch_index, size=count
                ) as sp:
                    if pool is None:
                        expansions = _expand_chunk_local(
                            ctx, batch, batch_index, sp.span_id
                        )
                    else:
                        expansions, pool = _expand_batch(
                            pool, ctx, batch, workers,
                            batch_timeout=batch_timeout,
                            max_retries=max_retries,
                            result=result,
                            batch_index=batch_index,
                            parent=sp.span_id,
                        )
                    delta, done = _merge_batch(
                        batch_index, count, expansions, parents, frontier,
                        result, stop_at_first,
                    )
                    sp.set(
                        explored=delta.explored_inc,
                        discovered=len(delta.new_entries),
                    )
                _batch_telemetry(count, delta, len(frontier), len(parents), result)
                if runlog is not None:
                    runlog.record(batch_index, delta)
                batch_index += 1
                if (
                    runlog is not None
                    and not done
                    and batch_index % checkpoint_every == 0
                    and runlog.should_compact()
                ):
                    runlog.checkpoint(
                        _state_payload(parents, frontier, result, bk),
                        batch_index,
                    )
        finally:
            _teardown(pool)
            if wd is not None:
                wd.__exit__(None, None, None)

        result.configs_discovered = len(parents)
        if interrupted is not None:
            result.complete = False
            result.interrupted = interrupted
            telemetry.mark("explore.interrupted", reason=interrupted)
        finished = result.complete or not result.ok
        if runlog is not None:
            if finished:
                runlog.checkpoint(
                    {"finished": True, "result": result}, batch_index
                )
            else:
                runlog.checkpoint(
                    _state_payload(parents, frontier, result, bk), batch_index
                )
        if cache is not None:
            cache.save_entry(
                cache_dir,
                key,
                cache.CacheEntry(
                    version=cache.CACHE_VERSION,
                    key=key,
                    finished=finished,
                    result=result if finished else None,
                    parents=None if finished else parents,
                    frontier=None if finished else [
                        (fp, bk.pack(carrier)) for fp, carrier in frontier
                    ],
                    explored=result.configs_explored,
                    memory_steps=result.memory_steps,
                    write_steps=result.write_steps,
                    registers_written=tuple(
                        sorted(result.registers_written,
                               key=lambda c: (c.bank, c.index))
                    ),
                ),
            )
        return result
    finally:
        # On every exit path — returns, engine errors, Ctrl-C — fsync and
        # close the journal so the appended deltas are the durable record
        # of everything this run merged.
        if runlog is not None:
            runlog.close()


def _expand_chunk_local(
    ctx: _WorkerContext,
    batch: List[Tuple[str, object]],
    batch_index: int = 0,
    parent: Optional[str] = None,
) -> List[_Expansion]:
    """In-process expansion path: ``workers == 1`` and the degraded mode."""
    expansions, snapshot = _expand_chunk_measured(
        ctx, batch, batch=batch_index, parent=parent
    )
    telemetry.merge(snapshot)
    return expansions


def _batch_telemetry(
    count: int,
    delta: _BatchDelta,
    frontier_len: int,
    discovered: int,
    result: checker.ExplorationResult,
) -> None:
    """Publish one merged batch's metrics (no-op when telemetry is off).

    Everything here is a pure function of the deterministic BFS — counts,
    set sizes, footprint — so these instruments stay on the deterministic
    side of the export and are pinned by the golden-stream tests.
    """
    if telemetry.active() is None:
        return
    telemetry.counter("explore.batches")
    telemetry.counter("explore.configs_explored", delta.explored_inc)
    telemetry.counter("footprint.memory_steps", delta.memory_inc)
    telemetry.counter("footprint.write_steps", delta.write_inc)
    telemetry.observe("explore.batch_size", count, bounds=COUNT_BUCKETS)
    telemetry.gauge("explore.frontier_size", frontier_len)
    telemetry.gauge("explore.configs_discovered", discovered)
    telemetry.gauge("footprint.registers_written", len(result.registers_written))
    telemetry.gauge("progress.done", result.configs_explored)


def _expand_batch(
    pool,
    ctx: _WorkerContext,
    batch: List[Tuple[str, object]],
    workers: int,
    *,
    batch_timeout: Optional[float],
    max_retries: int,
    result: checker.ExplorationResult,
    batch_index: int = 0,
    parent: Optional[str] = None,
) -> Tuple[List[_Expansion], Optional[object]]:
    """Expand one batch through the pool, healing it when it fails.

    Returns ``(expansions, pool)`` — the pool may be a *new* pool (rebuilt
    after a failure) or ``None`` (the engine degraded; the caller must
    expand serially from now on).  The batch is merged all-or-nothing:
    results of a failed submission are discarded entirely and the whole
    batch is recomputed, which is what keeps retried and degraded runs
    bit-identical to healthy ones.

    With ``batch_timeout=None`` the wait is unbounded — identical to the
    pre-self-healing engine — so a lost worker can only be detected when a
    timeout is configured.  Pool-infrastructure exceptions (broken pipes,
    unpicklable results) take the same heal path regardless.
    """
    chunks = _split(batch, workers)
    payloads = [
        (batch_index, index, parent, chunk)
        for index, chunk in enumerate(chunks)
    ]
    policy = dataclasses.replace(DEFAULT_REBUILD_POLICY, max_retries=max_retries)
    for attempt in policy.attempts():
        try:
            if batch_timeout is None:
                mapped = pool.map(_expand_chunk, payloads)
            else:
                mapped = pool.map_async(_expand_chunk, payloads).get(
                    timeout=batch_timeout
                )
            # Fold worker metrics in only once the batch is accepted, in
            # submission order — discarded attempts leave no trace (their
            # snapshots, span records included, die with the attempt),
            # which keeps retried runs' deterministic metrics identical
            # and span durations single-counted.
            for _, snapshot in mapped:
                telemetry.merge(snapshot)
            return [e for expansions, _ in mapped for e in expansions], pool
        except Exception:  # noqa: BLE001 — any pool failure takes the heal path
            result.worker_retries += 1
            # Volatile: pool failures are host events, not run semantics.
            telemetry.counter("explore.worker_retries", volatile=True)
            _teardown(pool)
            pool = None
            if attempt < max_retries:
                policy.sleep(attempt)
                pool = _make_pool(workers, ctx)
    result.degraded = True
    telemetry.mark("explore.degraded")
    return _expand_chunk_local(ctx, batch, batch_index, parent), None
