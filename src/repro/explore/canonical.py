"""Symmetry reduction: quotient exploration by process-identity orbits.

Anonymous algorithms (paper §5, §6) run identical code with no process
identifiers, so two configurations that differ only by a permutation of
process-local states are *behaviourally equivalent*: every execution from
one maps, step by step, onto an execution from the other.  Exploring both
is pure duplication.  This module computes a canonical representative of
each orbit so the engine's visited set can deduplicate them.

Soundness (the full argument lives in ``docs/explorer.md``):

* Let π be a permutation of process ids that preserves workloads
  (``workloads[π(p)] == workloads[p]`` for every p).  For an anonymous
  automaton over a purely primitive memory layout, the step function
  commutes with π: ``step(π·C, π(p)) = π·step(C, p)``, because no callback
  may consult the process id (:class:`~repro.runtime.automaton.Context`
  raises :class:`~repro.errors.AnonymityViolation` on identifier access)
  and shared memory is untouched by π.
* Both exploration oracles are orbit-invariant: Validity and k-Agreement
  look at the *multiset* of outputs per instance, and the progress-closure
  oracle quantifies over **all** survivor sets of size ≤ m, a family closed
  under π.  Hence checking one representative per orbit checks them all.

Canonicalization is therefore gated hard: it applies only when the
automaton declares ``anonymous = True``, workloads are static, and every
object binding is primitive (register-level implementations such as the
SWMR substrate key register indices by process id, which breaks the
commutation above).  :func:`symmetry_classes` returns ``None`` whenever
the gate fails, and callers must then explore the full graph.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.memory.layout import PrimitiveBinding
from repro.runtime.system import Configuration, System, stable_fingerprint

#: Orbit-defining partition: groups of pids free to permute among themselves.
SymmetryClasses = Tuple[Tuple[int, ...], ...]


def symmetry_classes(system: System) -> Optional[SymmetryClasses]:
    """The workload-preserving symmetry classes of *system*, or ``None``.

    Returns the partition of process ids into groups with identical full
    workloads — the permutations that fix this partition are exactly the
    symmetries the canonicalization may quotient by.  Returns ``None`` when
    the system has no usable symmetry: a non-anonymous automaton, dynamic
    workloads, a layout with implemented (non-primitive) objects, or a
    partition that is all singletons.
    """
    if not system.automaton.anonymous:
        return None
    if system.workloads is None:
        return None
    for name in system.layout.object_names:
        if not isinstance(system.layout.binding(name), PrimitiveBinding):
            return None
    groups: dict[Tuple, list] = {}
    for pid, workload in enumerate(system.workloads):
        groups.setdefault(workload, []).append(pid)
    classes = tuple(
        tuple(pids) for _, pids in sorted(groups.items(), key=lambda kv: kv[1][0])
        if len(pids) > 1
    )
    return classes or None


def canonicalize(
    config: Configuration,
    classes: SymmetryClasses,
    *,
    key: Callable[..., "str | bytes"] = stable_fingerprint,
) -> Configuration:
    """The canonical representative of *config*'s symmetry orbit.

    Within each class, process records are sorted by *key* (their stable
    fingerprint by default); positions outside every class are left
    untouched.  The result is reachable-equivalent to *config* (same
    orbit) and identical for every member of the orbit, so it can key a
    visited set.

    ``key`` may be any injective, deterministic total order on process
    records: which orbit member represents the orbit affects no
    exploration result (verdicts, counts, footprints, and schedules are
    all orbit-invariant), only the opaque key bytes.  What *does* matter
    is that every party sharing a fingerprint namespace uses the same
    key — the codec backends therefore all sort with
    :meth:`repro.explore.packed.PackedCodec.proc_frag` (memoized, and
    reused verbatim when the representative is encoded), while direct
    callers of this function and the legacy benchmark backend keep the
    definitional ``stable_fingerprint`` order.

    Idempotent: ``canonicalize(canonicalize(c, g), g) == canonicalize(c, g)``.
    """
    procs = list(config.procs)
    for pids in classes:
        records = sorted((procs[pid] for pid in pids), key=key)
        for pid, record in zip(pids, records):
            procs[pid] = record
    return Configuration(procs=tuple(procs), memory=config.memory)


def canonical_fingerprint(config: Configuration, classes: SymmetryClasses) -> str:
    """Stable fingerprint of *config*'s canonical orbit representative."""
    return stable_fingerprint(canonicalize(config, classes))
