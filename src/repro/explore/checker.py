"""Exhaustive exploration: oracles, result types, and the public API.

Configurations are immutable and hashable (see :mod:`repro.runtime.system`),
so the reachable configuration graph is explored with a frontier BFS and a
fingerprint-keyed visited set.  Parent pointers reconstruct a witness
schedule for any violation found.  The BFS itself — including its
multiprocessing fan-out, symmetry reduction, and persistent cache — lives
in :mod:`repro.explore.frontier`; this module defines *what* is checked:

* :func:`explore_safety` — checks Validity and k-Agreement in every reached
  configuration (both are state-predicates here because process outputs are
  accumulated in local states and workloads are static);
* :func:`explore_progress_closure` — from every reached configuration, run
  each candidate survivor set of size ≤ m in round-robin isolation and
  require the survivors to finish within a budget: the finite analogue of
  m-obstruction-freedom, quantified over *all* reachable adversarial pasts
  rather than sampled preludes.

Repeated algorithms have unbounded state (instance counters, histories), so
exploration is bounded by ``max_configs``; results carry an explicit
``complete`` flag and never claim closure they did not establish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._types import Value
from repro.durable.recovery import RecoveryReport
from repro.errors import StepLimitExceeded
from repro.memory.layout import RegisterCoord
from repro.runtime.system import Configuration, System


@dataclass(frozen=True)
class SafetyCounterexample:
    """A reachable configuration violating a safety property."""

    property_name: str
    instance: int
    outputs: Tuple[Value, ...]
    schedule: Tuple[int, ...]
    detail: str


@dataclass(frozen=True)
class ProgressCounterexample:
    """A reachable configuration from which survivors cannot finish."""

    survivors: Tuple[int, ...]
    schedule_to_config: Tuple[int, ...]
    detail: str


@dataclass
class ExplorationResult:
    """Outcome of one exploration run.

    ``complete`` is the engine's closure claim: ``True`` only when the whole
    reachable graph (up to the configured reduction) was expanded within
    budget with no early stop.  ``configs_explored`` counts expanded
    configurations; ``configs_discovered`` counts distinct visited-set
    entries (under canonicalization these are orbit representatives, so
    ``discovered < explored``-free dedup shows up here).

    ``worker_retries`` and ``degraded`` record the self-healing history of
    the run: how many batches had to be resubmitted after a pool timeout or
    worker death, and whether the engine gave up on the pool entirely and
    fell back to serial expansion.  Neither affects the verdict — batches
    are recomputed whole, so a degraded run's violations, counts and
    witness schedules are bit-identical to a healthy one's.

    ``interrupted`` and ``recovery`` are the durability history (see
    :mod:`repro.durable`): the watchdog reason (``"sigterm"``,
    ``"deadline"``, ``"rss"``) when the run checkpointed and stopped early,
    and the :class:`~repro.durable.recovery.RecoveryReport` when the run
    resumed from a journal.  Like the self-healing fields, neither affects
    the verdict — a resumed run replays the journaled deltas onto the last
    checkpoint and continues the identical deterministic BFS.

    ``memory_steps`` / ``write_steps`` / ``registers_written`` are the
    run's register footprint in the paper's space vocabulary: over every
    expanded edge, how many steps touched shared memory, how many were
    writes, and the set of global register coordinates written.  Each
    reachable edge is stepped exactly once, so all three are bit-identical
    across worker counts, batch sizes, and journal resumes (asserted by the
    identity tests alongside the verdict).
    """

    configs_explored: int
    complete: bool
    safety_violations: List[SafetyCounterexample] = field(default_factory=list)
    progress_violations: List[ProgressCounterexample] = field(default_factory=list)
    configs_discovered: int = 0
    worker_retries: int = 0
    degraded: bool = False
    interrupted: Optional[str] = None
    recovery: Optional[RecoveryReport] = None
    memory_steps: int = 0
    write_steps: int = 0
    registers_written: Set["RegisterCoord"] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        """True iff no safety or progress violation was found."""
        return not self.safety_violations and not self.progress_violations

    def identity_record(self) -> Dict[str, object]:
        """Deterministic, JSON-safe identity of this exploration's verdict.

        The history fields (``worker_retries``, ``degraded``,
        ``interrupted``, ``recovery``) are host accidents and excluded;
        the footprint set is rendered in sorted order.  Two runs of the
        same job therefore produce byte-identical canonical JSON no
        matter the worker count, backend, batch size, or resume history
        — this is the payload ``repro serve`` memoizes and fingerprints.
        """
        return {
            "complete": self.complete,
            "configs_discovered": self.configs_discovered,
            "configs_explored": self.configs_explored,
            "memory_steps": self.memory_steps,
            "progress_violations": [
                {
                    "detail": v.detail,
                    "schedule_to_config": list(v.schedule_to_config),
                    "survivors": list(v.survivors),
                }
                for v in self.progress_violations
            ],
            "registers_written": sorted(
                [coord.bank, coord.index] for coord in self.registers_written
            ),
            "safety_violations": [
                {
                    "detail": v.detail,
                    "instance": v.instance,
                    "outputs": list(v.outputs),
                    "property": v.property_name,
                    "schedule": list(v.schedule),
                }
                for v in self.safety_violations
            ],
            "write_steps": self.write_steps,
        }

    def footprint_summary(self) -> str:
        """One-line register-footprint account, as printed by the CLI."""
        return (
            f"footprint: {self.memory_steps} memory steps "
            f"({self.write_steps} writes) over "
            f"{len(self.registers_written)} registers"
        )

    def summary(self) -> str:
        """One-line account of coverage and verdict."""
        closure = "complete" if self.complete else "truncated"
        verdict = "no violations" if self.ok else (
            f"{len(self.safety_violations)} safety, "
            f"{len(self.progress_violations)} progress violations"
        )
        health = ""
        if self.worker_retries or self.degraded:
            health = (
                f" [self-healed: {self.worker_retries} retries"
                f"{', degraded to serial' if self.degraded else ''}]"
            )
        durable = ""
        if self.interrupted:
            durable = (
                f" [checkpointed on {self.interrupted}; rerun with "
                "--resume to continue]"
            )
        return (
            f"explored {self.configs_explored} configurations "
            f"({closure}): {verdict}{health}{durable}"
        )


def _instance_input_sets(system: System) -> Dict[int, Set[Value]]:
    inputs: Dict[int, Set[Value]] = {}
    if system.workloads is None:
        raise ValueError(
            "exhaustive exploration requires static workloads (the input "
            "universe must be known upfront)"
        )
    for workload in system.workloads:
        for index, value in enumerate(workload, start=1):
            inputs.setdefault(index, set()).add(value)
    return inputs


def _check_config_safety(
    system: System,
    config: Configuration,
    k: int,
    inputs: Dict[int, Set[Value]],
) -> Optional[Tuple[str, int, Tuple[Value, ...], str]]:
    max_instance = max((len(p.outputs) for p in config.procs), default=0)
    for instance in range(1, max_instance + 1):
        outs = set(system.instance_outputs(config, instance))
        if not outs:
            continue
        if len(outs) > k:
            return (
                "k-Agreement",
                instance,
                tuple(sorted(map(repr, outs))),
                f"{len(outs)} distinct outputs exceed k={k}",
            )
        strays = outs - inputs.get(instance, set())
        if strays:
            return (
                "Validity",
                instance,
                tuple(sorted(map(repr, outs))),
                f"outputs {sorted(map(repr, strays))} were never proposed",
            )
    return None


def _expansion_pids(system: System, config: Configuration, reduction: str):
    """Processes to expand from *config* under the chosen reduction.

    ``"none"`` expands every enabled process.  ``"local-first"`` is a sound
    ample-set reduction: when some process's next step is an *invocation*
    or a *decision* — steps that touch only that process's local state, so
    they commute with every other process's transitions, cannot be
    disabled, and disable nothing — only the first such process is
    expanded.  Any interleaving of the full graph reorders (by repeatedly
    commuting independent adjacent steps) into one where enabled local
    steps run eagerly; local-step reordering leaves every process's local
    evolution, hence every Decide event and output set, unchanged, so
    exactly the same Validity/k-Agreement violations are reachable.
    Decisions only *add* outputs, so taking them eagerly can surface a
    violation earlier, never hide one.
    """
    enabled = system.enabled_pids(config)
    if reduction == "local-first":
        from repro.runtime.events import DecideEvent, InvokeEvent

        for pid in enabled:
            event = system.peek(config, pid)
            if isinstance(event, (InvokeEvent, DecideEvent)):
                return (pid,)
    return enabled


def _check_config_progress(
    system: System,
    config: Configuration,
    survivor_sets: Sequence[Tuple[int, ...]],
    solo_budget: int,
) -> Optional[Tuple[Tuple[int, ...], str]]:
    """First survivor set that cannot finish from *config*, or ``None``."""
    from repro.runtime.runner import run
    from repro.sched.round_robin import RoundRobinScheduler

    for survivors in survivor_sets:
        pending = [pid for pid in survivors if system.enabled(config, pid)]
        if not pending:
            continue
        try:
            tail = run(
                system,
                RoundRobinScheduler(subset=survivors),
                initial=config,
                max_steps=solo_budget,
            )
        except StepLimitExceeded:
            return (
                survivors,
                f"survivors {survivors} exceeded {solo_budget} "
                "steps running in isolation",
            )
        if not system.decided_all(tail.config, survivors):
            return (survivors, f"survivors {survivors} stalled before finishing")
    return None


def default_survivor_sets(n: int, m: int) -> List[Tuple[int, ...]]:
    """Every candidate survivor set of size ≤ m among ``n`` processes."""
    return [
        tuple(c) for size in range(1, m + 1) for c in combinations(range(n), size)
    ]


def explore_safety(
    system: System,
    k: int,
    *,
    max_configs: int = 200_000,
    stop_at_first: bool = True,
    reduction: str = "none",
    workers: int = 1,
    batch_size: int = 64,
    canonicalize: bool = False,
    cache_dir: Optional[str] = None,
    batch_timeout: Optional[float] = None,
    max_retries: int = 2,
    chaos=None,
    journal_dir: Optional[str] = None,
    checkpoint_every: int = 64,
    watchdog=None,
    backend: str = "reference",
) -> ExplorationResult:
    """BFS the reachable configuration space, checking safety everywhere.

    ``reduction="local-first"`` enables a sound partial-order reduction
    (see :func:`_expansion_pids`) that typically shrinks the explored space
    severalfold without affecting verdicts; ``tests`` verify agreement with
    full exploration on small systems.

    ``workers > 1`` shards frontier expansion across that many OS processes
    (shared-nothing; the coordinator owns the visited set) with results
    merged in deterministic BFS order, so verdicts, counts, and witness
    schedules are identical for every worker count.  ``canonicalize=True``
    quotients the visited set by process-identity orbits — applied only
    when sound (anonymous automaton, static workloads, primitive layout;
    see :mod:`repro.explore.canonical`), silently inert otherwise.
    ``cache_dir`` persists finished runs and truncated frontiers so a rerun
    of the same system resumes instead of restarting.

    ``batch_timeout`` (seconds) bounds how long the coordinator waits for
    any one batch; on timeout or pool failure it rebuilds the pool and
    resubmits the whole batch, up to ``max_retries`` times with exponential
    backoff, before degrading to serial in-process expansion for the rest
    of the run.  The default ``None`` waits forever, the pre-self-healing
    behavior.  ``chaos`` is a test hook (see :mod:`repro.faults.chaos`)
    invoked by each worker before expanding a chunk.

    ``journal_dir`` arms the durable run journal (see
    :mod:`repro.durable`): every merged batch is appended as a checksummed
    delta record and every ``checkpoint_every`` batches the coordinator
    state is compacted into a sealed checkpoint, so a run killed at any
    point — ``kill -9`` included — resumes from its last consistent prefix
    and ends bit-identical to an uninterrupted run.  ``watchdog`` (a
    :class:`~repro.durable.watchdog.Watchdog`) is polled between batches;
    when it fires, the run checkpoints and returns early with
    ``result.interrupted`` set.

    ``backend`` selects the hot-path representation (see
    :mod:`repro.explore.packed`): ``"reference"`` walks dataclass
    configurations, ``"packed"`` walks compact byte carriers and ships
    bytes across the worker pool.  Verdicts, footprints, and checkpoints
    are bit-identical either way; ``packed`` is the faster choice for
    multi-worker runs.
    """
    if reduction not in ("none", "local-first"):
        raise ValueError(f"unknown reduction {reduction!r}")
    from repro.explore.frontier import explore

    return explore(
        system,
        oracle="safety",
        k=k,
        max_configs=max_configs,
        stop_at_first=stop_at_first,
        reduction=reduction,
        workers=workers,
        batch_size=batch_size,
        canonicalize=canonicalize,
        cache_dir=cache_dir,
        batch_timeout=batch_timeout,
        max_retries=max_retries,
        chaos=chaos,
        journal_dir=journal_dir,
        checkpoint_every=checkpoint_every,
        watchdog=watchdog,
        backend=backend,
    )


def explore_progress_closure(
    system: System,
    m: int,
    *,
    max_configs: int = 20_000,
    solo_budget: int = 20_000,
    survivor_sets: Optional[Sequence[Tuple[int, ...]]] = None,
    workers: int = 1,
    batch_size: int = 16,
    canonicalize: bool = False,
    cache_dir: Optional[str] = None,
    batch_timeout: Optional[float] = None,
    max_retries: int = 2,
    chaos=None,
    journal_dir: Optional[str] = None,
    checkpoint_every: int = 64,
    watchdog=None,
    backend: str = "reference",
) -> ExplorationResult:
    """From every reachable configuration, every ≤m survivor set must finish.

    This is the strongest finite rendition of m-obstruction-freedom the
    library offers: the adversarial prelude ranges over *all* reachable
    pasts, not a sampled family.  Exponential — reserve for tiny systems,
    and shard it with ``workers`` (the per-configuration survivor-closure
    checks dominate, so this oracle parallelizes well).
    """
    from repro.explore.frontier import explore

    return explore(
        system,
        oracle="progress",
        m=m,
        max_configs=max_configs,
        solo_budget=solo_budget,
        survivor_sets=survivor_sets,
        workers=workers,
        batch_size=batch_size,
        canonicalize=canonicalize,
        cache_dir=cache_dir,
        batch_timeout=batch_timeout,
        max_retries=max_retries,
        chaos=chaos,
        journal_dir=journal_dir,
        checkpoint_every=checkpoint_every,
        watchdog=watchdog,
        backend=backend,
    )
