"""Exhaustive state-space exploration for small instances.

Safety of set agreement must hold in *every* execution.  For small systems
the execution space, quotiented by configuration equality, is finite enough
to enumerate outright; this package does so, producing either a proof of
safety over the explored space or a concrete counterexample schedule.

It is also the engine behind the §7-conjecture probe (benchmark E9) and the
cross-validation of the Theorem 2 covering construction: both ask "does an
under-provisioned algorithm have *any* unsafe execution?", which exploration
answers definitively on tiny instances.
"""

from repro.explore.checker import (
    ExplorationResult,
    explore_progress_closure,
    explore_safety,
)

__all__ = ["ExplorationResult", "explore_safety", "explore_progress_closure"]
