"""Exhaustive state-space exploration for small instances.

Safety of set agreement must hold in *every* execution.  For small systems
the execution space, quotiented by configuration equality, is finite enough
to enumerate outright; this package does so, producing either a proof of
safety over the explored space or a concrete counterexample schedule.

It is also the engine behind the §7-conjecture probe (benchmark E9) and the
cross-validation of the Theorem 2 covering construction: both ask "does an
under-provisioned algorithm have *any* unsafe execution?", which exploration
answers definitively on tiny instances.

The package splits three ways (see ``docs/explorer.md`` for the operator's
guide):

* :mod:`repro.explore.checker` — the oracles and the public API
  (:func:`explore_safety`, :func:`explore_progress_closure`);
* :mod:`repro.explore.frontier` — the engine: batched deterministic BFS,
  a shared-nothing ``multiprocessing`` worker pool, structured failure
  propagation;
* :mod:`repro.explore.canonical` — symmetry reduction for anonymous
  protocols (visited-set quotient by process-identity orbits);
* :mod:`repro.explore.packed` — the packed configuration codec and the
  backend registry behind ``--backend={reference,packed}``: canonical
  byte encodings key the visited set, and the packed backend ships bytes
  instead of pickled dataclass graphs (see ``docs/performance.md``);
* :mod:`repro.explore.cache` — the ``.repro-cache/`` persistence layer
  that lets truncated runs resume and finished runs return instantly.
"""

from repro.explore.canonical import canonical_fingerprint, canonicalize, symmetry_classes
from repro.explore.checker import (
    ExplorationResult,
    ProgressCounterexample,
    SafetyCounterexample,
    explore_progress_closure,
    explore_safety,
)
from repro.explore.frontier import EngineFailure
from repro.explore.packed import (
    BACKENDS,
    PackedCodec,
    PackedCodecError,
    PackedState,
    make_backend,
    packed_fingerprint,
)

__all__ = [
    "BACKENDS",
    "EngineFailure",
    "ExplorationResult",
    "PackedCodec",
    "PackedCodecError",
    "PackedState",
    "ProgressCounterexample",
    "SafetyCounterexample",
    "canonical_fingerprint",
    "canonicalize",
    "explore_progress_closure",
    "explore_safety",
    "make_backend",
    "packed_fingerprint",
    "symmetry_classes",
]
