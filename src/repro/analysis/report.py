"""The shared reporting vocabulary of ``repro analyze``.

Every static-analysis pass — the determinism/purity lint
(:mod:`repro.analysis.determinism`), the static register-footprint checker
(:mod:`repro.analysis.footprint`), and the register-access sanitizer
(:mod:`repro.analysis.sanitizer`) — reports through one
:class:`AnalysisReport` of :class:`Finding` records, so CLI output, JSON
artifacts, and the CI gate all speak a single format.

Rules have *stable identifiers* (``DET001``, ``MUT002``, ``FP001``,
``SAN101``, ...): tests, suppression comments and CI logs reference rules
by ID, and IDs are never renumbered — a retired rule's ID is retired with
it.  The full catalog lives in :data:`RULES` and is rendered in
``docs/analysis.md``.

Severities form a three-level gate:

* ``error`` — a soundness problem (mutation of frozen state, a register
  footprint above the declared bound); fails ``repro analyze`` always;
* ``warning`` — a hazard that needs review (unseeded randomness, set
  iteration feeding output order); fails only under ``--strict``;
* ``note`` — diagnostics (covering-write statistics from the sanitizer);
  never affects the exit code.

Suppression is per-line and per-rule: a trailing ``# repro: allow(RULE)``
comment silences exactly that rule on its own line; an *own-line* comment
(nothing but the comment on the line) additionally covers the line
directly below it, as does a comment on an explicit ``\\`` continuation
line.  :func:`suppressed` is consulted by every pass — there is one
suppression syntax, not one per pass — and :func:`apply_suppressions`
records which annotations were actually consumed so the stale-allow
audit (``CONC005``) can flag the ones that rot.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Ordered severity levels, weakest last.
SEVERITIES = ("error", "warning", "note")

#: The rule catalog: stable ID -> (default severity, one-line summary).
#: IDs are grouped by pass: DET* determinism, MUT* immutability, FP*
#: footprint, SAN* sanitizer (trace-time).  Never renumber.
RULES: Dict[str, Tuple[str, str]] = {
    "DET001": ("error", "wall-clock read (time/datetime) in the step path"),
    "DET002": ("error", "unseeded randomness in the step path"),
    "DET003": ("error", "object-identity dependence (id()) in the step path"),
    "DET004": ("warning", "iteration over a set/frozenset feeds output order"),
    "DET005": ("error", "ambient-environment read (os.environ/os.urandom) "
                        "in the step path"),
    "MUT001": ("error", "attribute assignment mutates a frozen-state "
                        "parameter"),
    "MUT002": ("error", "non-frozen dataclass in a state module"),
    "MUT003": ("warning", "frozen state dataclass without slots=True"),
    "FP001": ("error", "static register footprint deviates from the "
                       "declared Figure 1 bound"),
    "FP002": ("error", "protocol accesses an object its layout does not "
                       "declare"),
    "FP003": ("error", "unrecognized allocation site in default_layout"),
    "SAN101": ("error", "mutation-after-freeze: step mutated its input "
                        "configuration"),
    "SAN102": ("error", "nondeterministic step: replaying one step "
                        "diverged"),
    "SAN103": ("note", "covering write: a value was overwritten before "
                       "any other process read it"),
    "SAN104": ("note", "torn frame read: one frame observed two values "
                       "of the same register"),
    "CONC001": ("error", "module-global mutable written from a pool-worker "
                         "entry point (fork-divergence hazard)"),
    "CONC002": ("error", "type transits the pickle boundary without "
                         "frozen+slots or a reduction protocol"),
    "CONC003": ("error", "bare write-mode open on a shared path (must use "
                         "the flock'd journal or sealed write->fsync->"
                         "rename)"),
    "CONC004": ("error", "signal-handler-reachable code does more than set "
                         "flags/close fds"),
    "CONC005": ("note", "stale repro: allow(...) comment suppresses "
                        "nothing or names an unknown rule"),
}

#: The ``repro: allow`` comment syntax — accepts one rule ID or a
#: comma-separated list between the parentheses.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\(([A-Z0-9, ]+)\)")


@dataclass(frozen=True)
class Finding:
    """One analysis finding, anchored to a rule and (usually) a location.

    ``file`` and ``line`` are empty/0 for trace-time findings that have no
    source anchor (the sanitizer anchors to the simulated step instead,
    described in ``detail``).
    """

    rule: str
    message: str
    file: str = ""
    line: int = 0
    severity: str = ""

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown analysis rule {self.rule!r}")
        if not self.severity:
            object.__setattr__(self, "severity", RULES[self.rule][0])
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def location(self) -> str:
        """``file:line`` when anchored, ``<trace>`` otherwise."""
        if self.file:
            return f"{self.file}:{self.line}"
        return "<trace>"

    def render(self) -> str:
        """The canonical one-line rendering used by the CLI."""
        return f"{self.location()}: {self.severity} [{self.rule}] {self.message}"


@dataclass
class AnalysisReport:
    """The combined outcome of one ``repro analyze`` invocation."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    passes_run: Tuple[str, ...] = ()

    def add(self, finding: Finding) -> None:
        """Append one finding."""
        self.findings.append(finding)

    def extend(self, other: "AnalysisReport") -> None:
        """Fold another pass's report into this one."""
        self.findings.extend(other.findings)
        self.files_scanned += other.files_scanned
        self.passes_run = self.passes_run + other.passes_run

    def sorted_findings(self) -> List[Finding]:
        """Findings in stable (file, line, rule) order — diffable output."""
        return sorted(
            self.findings, key=lambda f: (f.file, f.line, f.rule, f.message)
        )

    def count(self, severity: str) -> int:
        """Number of findings at exactly *severity*."""
        return sum(1 for f in self.findings if f.severity == severity)

    def gating_findings(self, strict: bool = False) -> List[Finding]:
        """Findings that fail the run: errors always, warnings iff strict."""
        gate = ("error", "warning") if strict else ("error",)
        return [f for f in self.sorted_findings() if f.severity in gate]

    @property
    def ok(self) -> bool:
        """True iff the report carries no error-severity finding."""
        return self.count("error") == 0

    def summary(self) -> str:
        """One-line account: passes, files, findings per severity."""
        counts = ", ".join(
            f"{self.count(sev)} {sev}{'s' if self.count(sev) != 1 else ''}"
            for sev in SEVERITIES
        )
        passes = "+".join(self.passes_run) if self.passes_run else "none"
        return (
            f"analyze [{passes}]: {self.files_scanned} files, {counts}"
        )

    def render(self) -> str:
        """Multi-line human-readable report (findings then summary)."""
        lines = [finding.render() for finding in self.sorted_findings()]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> str:
        """Stable JSON rendering (the CI failure artifact)."""
        payload = {
            "passes": list(self.passes_run),
            "files_scanned": self.files_scanned,
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "file": f.file,
                    "line": f.line,
                    "message": f.message,
                }
                for f in self.sorted_findings()
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


@dataclass(frozen=True)
class AllowComment:
    """One parsed ``# repro: allow(...)`` comment and the lines it covers.

    A *trailing* comment (code before the ``#``) covers only its own
    line.  An *own-line* comment — nothing but the comment — also covers
    the line below it (the statement it annotates), as does a comment on
    an explicit ``\\`` continuation line whose statement anchors one line
    down.  The old behaviour of unconditionally carrying every comment
    onto the next line let a trailing allow on a decorator leak onto the
    following ``def``; the carry-over is now scoped to exactly these two
    forms.
    """

    line: int
    rules: Tuple[str, ...]
    covers: Tuple[int, ...]


def _comment_tokens(source: str) -> List[Tuple[int, int, str]]:
    """(line, column, text) of every real COMMENT token in *source*.

    Tokenizing (rather than regex-scanning lines) keeps the suppression
    machinery from being fooled by ``# repro: allow(...)`` *mentions*
    inside docstrings and string literals — this module's own docstring
    would otherwise register as a stale allow.
    """
    try:
        return [
            (tok.start[0], tok.start[1], tok.string)
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable source: fall back to a plain line scan (fixtures
        # and half-written files still get their suppressions honored).
        found: List[Tuple[int, int, str]] = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            column = line.find("#")
            if column >= 0:
                found.append((lineno, column, line[column:]))
        return found


def allow_comments(source: str) -> List[AllowComment]:
    """Parse every ``# repro: allow(...)`` comment in *source*."""
    lines = source.splitlines()
    comments: List[AllowComment] = []
    for lineno, column, text in _comment_tokens(source):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rules = tuple(sorted({
            token.strip()
            for token in match.group(1).split(",")
            if token.strip()
        }))
        line = lines[lineno - 1] if lineno <= len(lines) else ""
        own_line = line[:column].strip() == ""
        continuation = line[:column].rstrip().endswith("\\")
        if own_line or continuation:
            covers = (lineno, lineno + 1)
        else:
            covers = (lineno,)
        comments.append(AllowComment(line=lineno, rules=rules, covers=covers))
    return comments


def suppressions(source: str) -> Mapping[int, frozenset]:
    """Map line number -> rules suppressed there via ``# repro: allow(...)``.

    Trailing comments cover their own line; own-line comments and
    comments on ``\\`` continuation lines also cover the line below —
    see :class:`AllowComment`.
    """
    table: Dict[int, set] = {}
    for comment in allow_comments(source):
        for lineno in comment.covers:
            table.setdefault(lineno, set()).update(comment.rules)
    return {lineno: frozenset(rules) for lineno, rules in table.items()}


def suppressed(
    table: Mapping[int, frozenset], line: int, rule: str
) -> bool:
    """True iff *rule* is suppressed at *line* per :func:`suppressions`."""
    return rule in table.get(line, frozenset())


def apply_suppressions(
    findings: Iterable[Finding],
    table: Mapping[int, frozenset],
    used: Optional[set] = None,
) -> List[Finding]:
    """Drop findings whose (line, rule) the source explicitly allows.

    When *used* is given, every ``(line, rule)`` pair consumed by a
    suppression is recorded into it — the CONC005 stale-allow audit
    compares these records against the parsed comments.
    """
    kept: List[Finding] = []
    for finding in findings:
        if suppressed(table, finding.line, finding.rule):
            if used is not None:
                used.add((finding.line, finding.rule))
        else:
            kept.append(finding)
    return kept


def rule_severity(rule: str) -> str:
    """The default severity of *rule* (raises on unknown IDs)."""
    return RULES[rule][0]


def rule_summary(rule: str) -> str:
    """The one-line catalog summary of *rule*."""
    return RULES[rule][1]


def catalog_table() -> List[Tuple[str, str, str]]:
    """(id, severity, summary) rows in ID order — docs and ``--rules``."""
    return [(rid, sev, text) for rid, (sev, text) in sorted(RULES.items())]


def make_finding(
    rule: str,
    message: str,
    *,
    file: str = "",
    line: int = 0,
    severity: Optional[str] = None,
) -> Finding:
    """Convenience constructor applying the catalog's default severity."""
    return Finding(
        rule=rule,
        message=message,
        file=file,
        line=line,
        severity=severity or rule_severity(rule),
    )
