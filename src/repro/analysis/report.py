"""The shared reporting vocabulary of ``repro analyze``.

Every static-analysis pass — the determinism/purity lint
(:mod:`repro.analysis.determinism`), the static register-footprint checker
(:mod:`repro.analysis.footprint`), and the register-access sanitizer
(:mod:`repro.analysis.sanitizer`) — reports through one
:class:`AnalysisReport` of :class:`Finding` records, so CLI output, JSON
artifacts, and the CI gate all speak a single format.

Rules have *stable identifiers* (``DET001``, ``MUT002``, ``FP001``,
``SAN101``, ...): tests, suppression comments and CI logs reference rules
by ID, and IDs are never renumbered — a retired rule's ID is retired with
it.  The full catalog lives in :data:`RULES` and is rendered in
``docs/analysis.md``.

Severities form a three-level gate:

* ``error`` — a soundness problem (mutation of frozen state, a register
  footprint above the declared bound); fails ``repro analyze`` always;
* ``warning`` — a hazard that needs review (unseeded randomness, set
  iteration feeding output order); fails only under ``--strict``;
* ``note`` — diagnostics (covering-write statistics from the sanitizer);
  never affects the exit code.

Suppression is per-line and per-rule: a trailing ``# repro: allow(RULE)``
comment on the flagged line (or the line above it) silences exactly that
rule there, and :func:`suppressed` is consulted by every pass — there is
one suppression syntax, not one per pass.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Ordered severity levels, weakest last.
SEVERITIES = ("error", "warning", "note")

#: The rule catalog: stable ID -> (default severity, one-line summary).
#: IDs are grouped by pass: DET* determinism, MUT* immutability, FP*
#: footprint, SAN* sanitizer (trace-time).  Never renumber.
RULES: Dict[str, Tuple[str, str]] = {
    "DET001": ("error", "wall-clock read (time/datetime) in the step path"),
    "DET002": ("error", "unseeded randomness in the step path"),
    "DET003": ("error", "object-identity dependence (id()) in the step path"),
    "DET004": ("warning", "iteration over a set/frozenset feeds output order"),
    "DET005": ("error", "ambient-environment read (os.environ/os.urandom) "
                        "in the step path"),
    "MUT001": ("error", "attribute assignment mutates a frozen-state "
                        "parameter"),
    "MUT002": ("error", "non-frozen dataclass in a state module"),
    "MUT003": ("warning", "frozen state dataclass without slots=True"),
    "FP001": ("error", "static register footprint deviates from the "
                       "declared Figure 1 bound"),
    "FP002": ("error", "protocol accesses an object its layout does not "
                       "declare"),
    "FP003": ("error", "unrecognized allocation site in default_layout"),
    "SAN101": ("error", "mutation-after-freeze: step mutated its input "
                        "configuration"),
    "SAN102": ("error", "nondeterministic step: replaying one step "
                        "diverged"),
    "SAN103": ("note", "covering write: a value was overwritten before "
                       "any other process read it"),
    "SAN104": ("note", "torn frame read: one frame observed two values "
                       "of the same register"),
}

#: ``# repro: allow(DET001)`` — also accepts a comma-separated rule list.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\(([A-Z0-9, ]+)\)")


@dataclass(frozen=True)
class Finding:
    """One analysis finding, anchored to a rule and (usually) a location.

    ``file`` and ``line`` are empty/0 for trace-time findings that have no
    source anchor (the sanitizer anchors to the simulated step instead,
    described in ``detail``).
    """

    rule: str
    message: str
    file: str = ""
    line: int = 0
    severity: str = ""

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown analysis rule {self.rule!r}")
        if not self.severity:
            object.__setattr__(self, "severity", RULES[self.rule][0])
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def location(self) -> str:
        """``file:line`` when anchored, ``<trace>`` otherwise."""
        if self.file:
            return f"{self.file}:{self.line}"
        return "<trace>"

    def render(self) -> str:
        """The canonical one-line rendering used by the CLI."""
        return f"{self.location()}: {self.severity} [{self.rule}] {self.message}"


@dataclass
class AnalysisReport:
    """The combined outcome of one ``repro analyze`` invocation."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    passes_run: Tuple[str, ...] = ()

    def add(self, finding: Finding) -> None:
        """Append one finding."""
        self.findings.append(finding)

    def extend(self, other: "AnalysisReport") -> None:
        """Fold another pass's report into this one."""
        self.findings.extend(other.findings)
        self.files_scanned += other.files_scanned
        self.passes_run = self.passes_run + other.passes_run

    def sorted_findings(self) -> List[Finding]:
        """Findings in stable (file, line, rule) order — diffable output."""
        return sorted(
            self.findings, key=lambda f: (f.file, f.line, f.rule, f.message)
        )

    def count(self, severity: str) -> int:
        """Number of findings at exactly *severity*."""
        return sum(1 for f in self.findings if f.severity == severity)

    def gating_findings(self, strict: bool = False) -> List[Finding]:
        """Findings that fail the run: errors always, warnings iff strict."""
        gate = ("error", "warning") if strict else ("error",)
        return [f for f in self.sorted_findings() if f.severity in gate]

    @property
    def ok(self) -> bool:
        """True iff the report carries no error-severity finding."""
        return self.count("error") == 0

    def summary(self) -> str:
        """One-line account: passes, files, findings per severity."""
        counts = ", ".join(
            f"{self.count(sev)} {sev}{'s' if self.count(sev) != 1 else ''}"
            for sev in SEVERITIES
        )
        passes = "+".join(self.passes_run) if self.passes_run else "none"
        return (
            f"analyze [{passes}]: {self.files_scanned} files, {counts}"
        )

    def render(self) -> str:
        """Multi-line human-readable report (findings then summary)."""
        lines = [finding.render() for finding in self.sorted_findings()]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> str:
        """Stable JSON rendering (the CI failure artifact)."""
        payload = {
            "passes": list(self.passes_run),
            "files_scanned": self.files_scanned,
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "file": f.file,
                    "line": f.line,
                    "message": f.message,
                }
                for f in self.sorted_findings()
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def suppressions(source: str) -> Mapping[int, frozenset]:
    """Map line number -> rules suppressed there via ``# repro: allow(...)``.

    A suppression comment covers its own line and the line directly below
    it, so both trailing comments and own-line comments above a long
    statement work.
    """
    table: Dict[int, set] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {
            token.strip()
            for token in match.group(1).split(",")
            if token.strip()
        }
        table.setdefault(lineno, set()).update(rules)
        table.setdefault(lineno + 1, set()).update(rules)
    return {lineno: frozenset(rules) for lineno, rules in table.items()}


def suppressed(
    table: Mapping[int, frozenset], line: int, rule: str
) -> bool:
    """True iff *rule* is suppressed at *line* per :func:`suppressions`."""
    return rule in table.get(line, frozenset())


def apply_suppressions(
    findings: Iterable[Finding], table: Mapping[int, frozenset]
) -> List[Finding]:
    """Drop findings whose (line, rule) the source explicitly allows."""
    return [
        finding
        for finding in findings
        if not suppressed(table, finding.line, finding.rule)
    ]


def rule_severity(rule: str) -> str:
    """The default severity of *rule* (raises on unknown IDs)."""
    return RULES[rule][0]


def rule_summary(rule: str) -> str:
    """The one-line catalog summary of *rule*."""
    return RULES[rule][1]


def catalog_table() -> List[Tuple[str, str, str]]:
    """(id, severity, summary) rows in ID order — docs and ``--rules``."""
    return [(rid, sev, text) for rid, (sev, text) in sorted(RULES.items())]


def make_finding(
    rule: str,
    message: str,
    *,
    file: str = "",
    line: int = 0,
    severity: Optional[str] = None,
) -> Finding:
    """Convenience constructor applying the catalog's default severity."""
    return Finding(
        rule=rule,
        message=message,
        file=file,
        line=line,
        severity=severity or rule_severity(rule),
    )
