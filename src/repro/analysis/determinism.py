"""Determinism and purity lint over the simulation's step path.

The durable run journal and the parallel exploration merge are sound only
because :meth:`repro.runtime.system.System.step` is a *pure function of
hashable values*: replaying a journaled schedule must rebuild bit-identical
configurations, and two worker processes expanding the same frontier batch
must produce the same children in the same order.  Those properties were
previously asserted in docs; this pass checks them in the source.

Two rule groups, each over an explicit module scope:

* **DET — nondeterminism hazards** (scope: :data:`STEP_PATH_SCOPE`, the
  modules whose code runs inside a simulated step or a fingerprint):
  wall-clock reads, unseeded randomness, ``id()``, ambient environment
  reads, and iteration over sets/frozensets whose order can leak into
  outputs.  Seeded randomness (``random.Random(seed)``) is fine — plan
  families depend on it — as is order-insensitive set use (``len``,
  membership, ``sorted(...)``).

* **MUT — immutability of state** (scope: :data:`STATE_SCOPE` for
  ``frozen=True``; :data:`SLOTS_SCOPE` for ``slots=True``): every
  dataclass in a state module must be frozen (anything reachable from a
  configuration fingerprint must be a value), attribute assignment through
  a function parameter is flagged as mutation of state the caller still
  holds, and frozen state dataclasses must also declare ``slots=True`` so
  stray attribute creation fails loudly.

Scopes are path-prefix lists relative to the package root, so the pass can
run over a whole tree (``repro analyze src/repro``) and only apply each
rule where it is meant to hold: e.g. :mod:`repro.durable.watchdog` reads
the wall clock *by design* (deadlines), and :mod:`repro.runtime.procedural`
is the documented impure automaton style (``supports_peek = False`` guards
it at runtime) — neither is in scope.

Suppression: ``# repro: allow(RULE)`` on (or directly above) the flagged
line; see :mod:`repro.analysis.report`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.report import (
    AnalysisReport,
    Finding,
    apply_suppressions,
    make_finding,
    suppressions,
)

#: Modules whose code executes inside System.step / fingerprinting —
#: the code that must be deterministic for replay and parallel merge.
STEP_PATH_SCOPE: Tuple[str, ...] = (
    "repro/agreement/",
    "repro/faults/plans.py",
    "repro/memory/",
    "repro/objects/",
    "repro/runtime/automaton.py",
    "repro/runtime/events.py",
    "repro/runtime/frames.py",
    "repro/runtime/system.py",
    "repro/explore/canonical.py",
    "repro/explore/packed.py",
)

#: Modules whose dataclasses must be frozen (values reachable from
#: configuration fingerprints live here).
STATE_SCOPE: Tuple[str, ...] = STEP_PATH_SCOPE + ("repro/spec/",)

#: Modules whose frozen dataclasses must also declare ``slots=True``
#: (the PR-4 conversion set; grows as modules are converted).
SLOTS_SCOPE: Tuple[str, ...] = (
    "repro/faults/plans.py",
    "repro/runtime/frames.py",
    "repro/runtime/system.py",
    "repro/spec/",
)

#: ``module.attribute`` call targets that read a wall clock (DET001).
_CLOCK_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "time_ns"), ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

#: ``random.<fn>`` module-level calls that use the shared global RNG
#: (DET002); ``random.Random(seed)`` instances are fine.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "expovariate", "seed",
    "getrandbits",
}

#: Ambient environment reads (DET005).
_ENV_CALLS = {("os", "urandom"), ("os", "getenv"), ("uuid", "uuid1"),
              ("uuid", "uuid4"), ("secrets", "token_bytes"),
              ("secrets", "token_hex")}


def in_scope(path: str, scope: Sequence[str]) -> bool:
    """True iff *path* (POSIX-style) falls under one of *scope*'s prefixes.

    Prefixes are matched against the path's tail, so absolute paths,
    ``src/``-prefixed paths and bare package paths all resolve the same
    way.
    """
    normalized = Path(path).as_posix()
    return any(
        normalized.endswith(prefix.rstrip("/"))
        or f"/{prefix}" in f"/{normalized}/"
        or normalized.startswith(prefix)
        for prefix in scope
    )


def _call_target(node: ast.Call) -> Tuple[Optional[str], Optional[str]]:
    """(base, attr) for ``base.attr(...)`` calls, (None, name) for bare."""
    func = node.func
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            return base.id, func.attr
        if isinstance(base, ast.Attribute):  # e.g. datetime.datetime.now
            return base.attr, func.attr
        return None, func.attr
    if isinstance(func, ast.Name):
        return None, func.id
    return None, None


def _is_set_expression(node: ast.expr) -> bool:
    """Over-approximate: does this expression evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        base, attr = _call_target(node)
        if base is None and attr in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub)
    ):
        # set algebra: s1 | s2, s1 & s2, s1 - s2 over syntactic sets
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class _FunctionParams(ast.NodeVisitor):
    """Collects, per function node, the parameter names it binds."""

    @staticmethod
    def params(node: ast.AST) -> frozenset:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return frozenset()
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return frozenset(names)


def _dataclass_decoration(node: ast.ClassDef) -> Optional[Tuple[bool, bool, int]]:
    """(frozen, slots, decorator line) when *node* is a dataclass, else None."""
    for decorator in node.decorator_list:
        target = decorator
        keywords: List[ast.keyword] = []
        if isinstance(decorator, ast.Call):
            target = decorator.func
            keywords = decorator.keywords
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name != "dataclass":
            continue
        flags = {"frozen": False, "slots": False}
        for keyword in keywords:
            if keyword.arg in flags and isinstance(keyword.value, ast.Constant):
                flags[keyword.arg] = bool(keyword.value.value)
        return flags["frozen"], flags["slots"], decorator.lineno
    return None


def _lint_tree(
    tree: ast.AST,
    rel_path: str,
    *,
    det: bool,
    frozen_rule: bool,
    slots_rule: bool,
) -> List[Finding]:
    findings: List[Finding] = []

    # Parameter-name context for MUT001: walk functions, tracking params.
    param_stack: List[frozenset] = []

    def visit(node: ast.AST) -> None:
        is_function = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if is_function:
            param_stack.append(_FunctionParams.params(node))
        _check_node(node)
        for child in ast.iter_child_nodes(node):
            visit(child)
        if is_function:
            param_stack.pop()

    def _check_node(node: ast.AST) -> None:
        if det and isinstance(node, ast.Call):
            base, attr = _call_target(node)
            if (base, attr) in _CLOCK_CALLS:
                findings.append(make_finding(
                    "DET001",
                    f"call to {base}.{attr}() — wall-clock reads make "
                    "journal replay and parallel merge diverge; thread a "
                    "logical clock through the configuration instead",
                    file=rel_path, line=node.lineno,
                ))
            if base == "random" and attr in _GLOBAL_RANDOM_FNS:
                findings.append(make_finding(
                    "DET002",
                    f"call to random.{attr}() uses the shared global RNG; "
                    "construct random.Random(seed) with an injected seed",
                    file=rel_path, line=node.lineno,
                ))
            if base is None and attr == "Random" and not (
                node.args or node.keywords
            ):
                findings.append(make_finding(
                    "DET002",
                    "Random() without a seed argument is seeded from the "
                    "OS; inject an explicit seed",
                    file=rel_path, line=node.lineno,
                ))
            if base == "random" and attr == "Random" and not (
                node.args or node.keywords
            ):
                findings.append(make_finding(
                    "DET002",
                    "random.Random() without a seed argument is seeded "
                    "from the OS; inject an explicit seed",
                    file=rel_path, line=node.lineno,
                ))
            if base is None and attr == "id" and node.args:
                findings.append(make_finding(
                    "DET003",
                    "id() depends on object identity, which differs across "
                    "interpreter processes; use a stable key",
                    file=rel_path, line=node.lineno,
                ))
            if (base, attr) in _ENV_CALLS:
                findings.append(make_finding(
                    "DET005",
                    f"call to {base}.{attr}() reads ambient environment "
                    "state; pass the value in explicitly",
                    file=rel_path, line=node.lineno,
                ))
        if det and isinstance(node, ast.Subscript):
            # os.environ[...] reads
            target = node.value
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "environ"
                and isinstance(target.value, ast.Name)
                and target.value.id == "os"
            ):
                findings.append(make_finding(
                    "DET005",
                    "os.environ read in the step path; pass configuration "
                    "in explicitly",
                    file=rel_path, line=node.lineno,
                ))
        if det and isinstance(node, (ast.For, ast.comprehension)):
            iterable = node.iter
            if _is_set_expression(iterable):
                findings.append(make_finding(
                    "DET004",
                    "iterating a set/frozenset: element order depends on "
                    "PYTHONHASHSEED and can leak into outputs; wrap in "
                    "sorted(...) or iterate a deterministic sequence",
                    file=rel_path, line=iterable.lineno,
                ))

        if frozen_rule and isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                if (
                    isinstance(base, ast.Name)
                    and param_stack
                    and base.id in param_stack[-1]
                    and base.id not in ("self", "cls")
                ):
                    findings.append(make_finding(
                        "MUT001",
                        f"assignment to {base.id}.{target.attr} mutates a "
                        "parameter the caller still holds; build a new "
                        "value (dataclasses.replace) instead",
                        file=rel_path, line=node.lineno,
                    ))
        if frozen_rule and isinstance(node, ast.Call):
            base, attr = _call_target(node)
            if attr == "__setattr__" and base == "object":
                findings.append(make_finding(
                    "MUT001",
                    "object.__setattr__ bypasses frozen-dataclass "
                    "protection; frozen state must never be written after "
                    "construction",
                    file=rel_path, line=node.lineno,
                ))

        if isinstance(node, ast.ClassDef) and (frozen_rule or slots_rule):
            decoration = _dataclass_decoration(node)
            if decoration is not None:
                frozen, slots, deco_line = decoration
                if frozen_rule and not frozen:
                    findings.append(make_finding(
                        "MUT002",
                        f"dataclass {node.name} is not frozen=True; values "
                        "in state modules must be immutable (they are "
                        "reachable from configuration fingerprints)",
                        file=rel_path, line=deco_line,
                    ))
                if slots_rule and frozen and not slots:
                    findings.append(make_finding(
                        "MUT003",
                        f"frozen dataclass {node.name} lacks slots=True; "
                        "slots make stray attribute creation fail loudly "
                        "and shrink per-configuration memory",
                        file=rel_path, line=deco_line,
                    ))

    visit(tree)
    return findings


def lint_file(
    path: str,
    *,
    det: Optional[bool] = None,
    frozen_rule: Optional[bool] = None,
    slots_rule: Optional[bool] = None,
    used: Optional[Set[Tuple[int, str]]] = None,
) -> List[Finding]:
    """Lint one file.  Rule groups default to their scope tables.

    Passing explicit booleans overrides scoping — the fixture tests use
    this to run every rule against modules outside the package.  *used*
    (when given) collects the ``(line, rule)`` suppressions this file
    consumed, for the stale-allow audit.
    """
    rel = Path(path).as_posix()
    source = Path(path).read_text()
    tree = ast.parse(source, filename=rel)
    findings = _lint_tree(
        tree,
        rel,
        det=in_scope(rel, STEP_PATH_SCOPE) if det is None else det,
        frozen_rule=(
            in_scope(rel, STATE_SCOPE) if frozen_rule is None else frozen_rule
        ),
        slots_rule=(
            in_scope(rel, SLOTS_SCOPE) if slots_rule is None else slots_rule
        ),
    )
    return apply_suppressions(findings, suppressions(source), used=used)


def _python_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


def lint_paths(
    paths: Sequence[str],
    *,
    all_rules: bool = False,
    usage: Optional[Dict[str, Set[Tuple[int, str]]]] = None,
) -> AnalysisReport:
    """Lint every Python file under *paths*, honoring the rule scopes.

    With ``all_rules=True`` every rule group applies to every file
    regardless of scope (the CLI's ``--all-rules``, used against fixture
    trees).  *usage* (when given) maps each file's POSIX path to the
    ``(line, rule)`` suppressions it consumed — input to the CONC005
    stale-allow audit.
    """
    report = AnalysisReport(passes_run=("determinism",))
    override = True if all_rules else None
    for path in _python_files(paths):
        report.files_scanned += 1
        rel = path.as_posix()
        used = None if usage is None else usage.setdefault(rel, set())
        for finding in lint_file(
            str(path), det=override, frozen_rule=override,
            slots_rule=override, used=used,
        ):
            report.add(finding)
    return report
