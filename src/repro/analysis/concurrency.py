"""Concurrency-safety lint over the process-crossing hot paths.

The explore worker pool, the serve supervisor, the chaos hooks, and the
SIGTERM machinery all cross process boundaries — by ``fork``, by pickle,
by shared files, by signal delivery.  Each crossing has a discipline the
rest of the repo relies on (documented in ``docs/concurrency``-adjacent
docstrings of :mod:`repro.explore.frontier`, :mod:`repro.durable.journal`
and :mod:`repro.serve.supervisor`); this pass checks the disciplines
statically, rooted at the *entry points* the call graph discovers on its
own — pool ``map``/``apply_async`` targets, pool ``initializer=``
callables, and ``signal.signal`` handlers — rather than a hand-kept
list.

Four rule groups over :class:`repro.analysis.callgraph.CallGraph`
reachability:

* **CONC001 — fork-shared mutable state**: a module-global (re)bound or
  mutated in place from a function reachable from a pool entry point.
  Under ``fork`` every worker inherits the coordinator's copy and then
  diverges silently; under ``spawn`` the global is simply absent.
  Per-process caches and initializer handoffs are legitimate — they
  carry ``# repro: allow(CONC001)`` with a justification.
* **CONC002 — pickle-boundary discipline**: every type that transits a
  pool boundary (entry-point parameter/return annotations, submitted
  argument types, ``initargs`` — closed transitively over dataclass
  fields, stopping at types with a custom reduction) must be a
  ``frozen=True, slots=True`` dataclass, or define ``__reduce__`` /
  ``__reduce_ex__`` or ``__getstate__``+``__setstate__``.
* **CONC003 — file-write protocol**: inside the shared-path scope
  (:data:`SHARED_PATH_SCOPE`) a write-mode ``open`` / ``os.fdopen`` /
  ``Path.write_text`` / ``Path.write_bytes`` is flagged unless the
  enclosing function holds the journal's advisory lock (an ``flock`` /
  ``_lock_or_raise`` call) or follows the sealed pattern (``os.replace``
  *and* ``os.fsync`` in the same function) — multiple process classes
  share these directories, and a bare ``open(..., "w")`` is a torn-file
  hazard.
* **CONC004 — signal-handler safety**: code reachable from a registered
  signal handler may only set flags and close fds — no telemetry
  emission, no lock acquisition, no I/O, no ``print``/``sleep``.

Plus the allow-comment audit: **CONC005** (note) reports a
``# repro: allow(...)`` comment that suppressed nothing on the lines it
covers, or that names an unknown/retired rule — run with the usage
records of every suppressing pass so annotations cannot rot silently.

Scoping mirrors :mod:`repro.analysis.determinism`: CONC001/2/4 are
reachability-scoped (the graph decides, not a path table), CONC003 uses
:data:`SHARED_PATH_SCOPE`, and ``--all-rules`` forces CONC003 onto every
given path so the fixtures can live outside the package.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo, ModuleInfo
from repro.analysis.determinism import in_scope
from repro.analysis.report import (
    RULES,
    AnalysisReport,
    Finding,
    allow_comments,
    apply_suppressions,
    make_finding,
    suppressions,
)

#: Directories whose files more than one process class writes: the
#: durable journal/checkpoint layer, the serve daemon's data dir, the
#: explore cache, and the chaos token directory.
SHARED_PATH_SCOPE: Tuple[str, ...] = (
    "repro/durable/",
    "repro/serve/",
    "repro/explore/",
    "repro/faults/",
)

#: ``pool.<method>(func, ...)`` submission attributes.
_POOL_SUBMIT = {
    "map", "map_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "apply", "apply_async",
}

#: In-place mutation methods on containers (CONC001).
_MUTATORS = {
    "append", "appendleft", "add", "update", "clear", "pop", "popitem",
    "popleft", "extend", "extendleft", "remove", "discard", "insert",
    "setdefault",
}

#: Callable names whose presence sanctions a raw write (the flock'd
#: journal discipline).
_LOCK_SANCTIONS = {"flock", "lockf", "_lock_or_raise"}

#: Telemetry-pipeline entry names (CONC004: no emission from handlers).
_TELEMETRY_CALLS = {
    "span", "mark", "counter", "gauge", "observe", "merge", "emit",
}


def _python_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


# --------------------------------------------------------------------- #
# Entry-point discovery
# --------------------------------------------------------------------- #

class EntryPoints:
    """Pool / initializer / signal roots plus pickle-boundary seeds."""

    def __init__(self) -> None:
        self.pool_roots: Set[str] = set()
        self.signal_roots: Set[str] = set()
        #: (class_key, route description) seeds for the CONC002 closure.
        self.boundary_seeds: List[Tuple[str, str]] = []

    def seed(self, keys: Iterable[str], route: str) -> None:
        """Record boundary-crossing class *keys* with the *route* they take."""
        for key in keys:
            self.boundary_seeds.append((key, route))


def _discover_entry_points(graph: CallGraph) -> EntryPoints:
    entries = EntryPoints()
    for fkey in sorted(graph.functions):
        fn = graph.functions[fkey]
        module = graph.modules[fn.module]
        local = graph._nested_functions(fn)
        env = graph._local_env(module, fn, local)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            _scan_submission(graph, module, fn, local, env, node, entries)
            _scan_initializer(graph, module, fn, local, env, node, entries)
            _scan_signal(graph, module, fn, local, node, entries)
    return entries


def _function_ref(
    graph: CallGraph, module: ModuleInfo, local: Dict[str, str], node: ast.expr
) -> Optional[str]:
    """Resolve an expression used as a callable *reference* (not a call)."""
    if isinstance(node, ast.Name):
        resolved = graph._resolve_name(module, node.id, local)
        if resolved is not None and resolved in graph.functions:
            return resolved
    return None


def _annotation_seeds(
    graph: CallGraph, module: ModuleInfo, fn_key: str
) -> List[str]:
    fn = graph.functions[fn_key]
    node = fn.node
    seeds: List[str] = []
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            seeds.extend(graph.annotation_classes(module, arg.annotation))
        seeds.extend(graph.annotation_classes(module, node.returns))
    return seeds


def _scan_submission(
    graph: CallGraph,
    module: ModuleInfo,
    fn: FunctionInfo,
    local: Dict[str, str],
    env: Dict[str, str],
    node: ast.Call,
    entries: EntryPoints,
) -> None:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in _POOL_SUBMIT):
        return
    if not node.args:
        return
    target = _function_ref(graph, module, local, node.args[0])
    if target is None:
        return
    entries.pool_roots.add(target)
    target_module = graph.modules[graph.functions[target].module]
    entries.seed(
        _annotation_seeds(graph, target_module, target),
        f"{graph.functions[target].name} (pool submission)",
    )
    # apply/apply_async ship an explicit args tuple: seed its element types.
    for extra in node.args[1:]:
        if isinstance(extra, ast.Tuple):
            for element in extra.elts:
                if isinstance(element, ast.Name) and element.id in env:
                    entries.seed(
                        [env[element.id]],
                        f"{graph.functions[target].name} (submitted argument)",
                    )
        elif isinstance(extra, ast.Name) and extra.id in env:
            entries.seed(
                [env[extra.id]],
                f"{graph.functions[target].name} (submitted argument)",
            )


def _scan_initializer(
    graph: CallGraph,
    module: ModuleInfo,
    fn: FunctionInfo,
    local: Dict[str, str],
    env: Dict[str, str],
    node: ast.Call,
    entries: EntryPoints,
) -> None:
    for keyword in node.keywords:
        if keyword.arg == "initializer":
            target = _function_ref(graph, module, local, keyword.value)
            if target is not None:
                entries.pool_roots.add(target)
                target_module = graph.modules[graph.functions[target].module]
                entries.seed(
                    _annotation_seeds(graph, target_module, target),
                    f"{graph.functions[target].name} (pool initializer)",
                )
        elif keyword.arg == "initargs" and isinstance(keyword.value, ast.Tuple):
            for element in keyword.value.elts:
                if isinstance(element, ast.Name) and element.id in env:
                    entries.seed([env[element.id]], "pool initargs")


def _scan_signal(
    graph: CallGraph,
    module: ModuleInfo,
    fn: FunctionInfo,
    local: Dict[str, str],
    node: ast.Call,
    entries: EntryPoints,
) -> None:
    func = node.func
    is_signal_call = (
        isinstance(func, ast.Attribute)
        and func.attr == "signal"
        and isinstance(func.value, ast.Name)
        and func.value.id == "signal"
    )
    if not is_signal_call or len(node.args) < 2:
        return
    target = _function_ref(graph, module, local, node.args[1])
    if target is not None:
        entries.signal_roots.add(target)


# --------------------------------------------------------------------- #
# CONC001 — fork-shared mutable state
# --------------------------------------------------------------------- #

def _global_writes(
    graph: CallGraph, fn: FunctionInfo
) -> List[Tuple[int, str, str]]:
    """(line, global name, how) for module-global writes inside *fn*."""
    module = graph.modules[fn.module]
    node = fn.node
    declared_global: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared_global.update(sub.names)
    writes: List[Tuple[int, str, str]] = []
    # Locals that shadow a module global (assigned without ``global``).
    shadowed: Set[str] = set()
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            shadowed.add(arg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in declared_global and target.id in module.globals:
                        writes.append((sub.lineno, target.id, "rebinding"))
                    else:
                        shadowed.add(target.id)
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if (
                        name in module.mutable_globals
                        and name not in shadowed
                    ):
                        writes.append((sub.lineno, name, "item assignment"))
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if name in module.mutable_globals and name not in shadowed:
                        writes.append((sub.lineno, name, "item deletion"))
        elif isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
            ):
                name = func.value.id
                if name in module.mutable_globals and name not in shadowed:
                    writes.append(
                        (sub.lineno, name, f".{func.attr}() mutation")
                    )
    return writes


def _check_fork_shared_state(
    graph: CallGraph, pool_reachable: Set[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for fkey in sorted(pool_reachable):
        fn = graph.functions[fkey]
        for line, name, how in _global_writes(graph, fn):
            findings.append(make_finding(
                "CONC001",
                f"module-global {name!r} is written ({how}) in "
                f"{fn.qualname}(), which is reachable from a pool worker "
                "entry point; fork-inherited globals diverge silently "
                "across worker processes — pass state through the worker "
                "context instead",
                file=fn.path, line=line,
            ))
    return findings


# --------------------------------------------------------------------- #
# CONC002 — pickle-boundary discipline
# --------------------------------------------------------------------- #

def _has_reduction(graph: CallGraph, key: str) -> bool:
    """Reduction protocol on the class or an indexed base class."""
    return any(
        ancestor.has_reduction_protocol
        for ancestor in graph.ancestors(graph.classes[key])
    )


def _boundary_closure(
    graph: CallGraph, seeds: List[Tuple[str, str]]
) -> Dict[str, str]:
    """class key -> first route description, closed over dataclass fields."""
    routes: Dict[str, str] = {}
    queue: List[Tuple[str, str]] = list(seeds)
    while queue:
        key, route = queue.pop(0)
        if key in routes or key not in graph.classes:
            continue
        routes[key] = route
        info = graph.classes[key]
        if _has_reduction(graph, key):
            continue  # a custom reduction decides what actually transits
        if info.dataclass_flags is not None:
            module = graph.modules[info.module]
            for annotation in info.field_annotations:
                for fkey in graph.annotation_classes(module, annotation):
                    queue.append((fkey, f"a field of {info.name}"))
    return routes


def _check_pickle_boundary(
    graph: CallGraph, entries: EntryPoints
) -> List[Finding]:
    findings: List[Finding] = []
    routes = _boundary_closure(graph, entries.boundary_seeds)
    for key in sorted(routes):
        info = graph.classes[key]
        route = routes[key]
        if info.dataclass_flags is not None:
            frozen, slots = info.dataclass_flags
            if frozen and slots:
                continue
            if _has_reduction(graph, key):
                continue
            missing = []
            if not frozen:
                missing.append("frozen=True")
            if not slots:
                missing.append("slots=True")
            findings.append(make_finding(
                "CONC002",
                f"dataclass {info.name} transits the process (pickle) "
                f"boundary via {route} but lacks {' and '.join(missing)}; "
                "boundary types must be frozen+slots values or define "
                "__reduce__",
                file=info.path, line=info.lineno,
            ))
        else:
            if _has_reduction(graph, key):
                continue
            findings.append(make_finding(
                "CONC002",
                f"class {info.name} transits the process (pickle) boundary "
                f"via {route} but defines no reduction protocol "
                "(__reduce__/__reduce_ex__ or __getstate__+__setstate__); "
                "default pickling of ad-hoc classes ships unstable "
                "identity-bearing state",
                file=info.path, line=info.lineno,
            ))
    return findings


# --------------------------------------------------------------------- #
# CONC003 — file-write protocol
# --------------------------------------------------------------------- #

def _write_mode(node: ast.Call, position: int = 1) -> Optional[str]:
    """The write-capable mode string of an open-style call, if any."""
    mode: Optional[str] = None
    if len(node.args) > position and isinstance(node.args[position], ast.Constant):
        value = node.args[position].value
        if isinstance(value, str):
            mode = value
    for keyword in node.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            if isinstance(keyword.value.value, str):
                mode = keyword.value.value
    if mode is not None and any(ch in mode for ch in "wax+"):
        return mode
    return None


def _function_sanctioned(fn_node: ast.AST) -> bool:
    """Does this function hold a lock or follow the sealed-write pattern?"""
    saw_replace = saw_fsync = False
    for sub in ast.walk(fn_node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _LOCK_SANCTIONS:
            return True
        if name == "replace" and isinstance(func, ast.Attribute) and (
            isinstance(func.value, ast.Name) and func.value.id == "os"
        ):
            saw_replace = True
        if name == "fsync":
            saw_fsync = True
    return saw_replace and saw_fsync


def _check_file_protocol(
    graph: CallGraph, *, all_rules: bool
) -> List[Finding]:
    findings: List[Finding] = []
    for fkey in sorted(graph.functions):
        fn = graph.functions[fkey]
        if not all_rules and not in_scope(fn.path, SHARED_PATH_SCOPE):
            continue
        sanctioned: Optional[bool] = None
        for sub in ast.walk(fn.node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            flagged: Optional[str] = None
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _write_mode(sub)
                if mode is not None:
                    flagged = f"open(..., {mode!r})"
            elif isinstance(func, ast.Attribute):
                if func.attr == "fdopen" and isinstance(func.value, ast.Name) \
                        and func.value.id == "os":
                    mode = _write_mode(sub)
                    if mode is not None:
                        flagged = f"os.fdopen(..., {mode!r})"
                elif func.attr in ("write_text", "write_bytes"):
                    flagged = f".{func.attr}(...)"
                elif func.attr == "open":
                    mode = _write_mode(sub, position=0)
                    if mode is not None:
                        flagged = f".open({mode!r})"
            if flagged is None:
                continue
            if sanctioned is None:
                sanctioned = _function_sanctioned(fn.node)
            if sanctioned:
                continue
            findings.append(make_finding(
                "CONC003",
                f"bare {flagged} in {fn.qualname}() under a shared "
                "directory scope; writes here must go through the flock'd "
                "journal or the sealed write->fsync->rename helpers "
                "(repro.durable.checkpoint.write_sealed) so concurrent "
                "process classes never tear a file",
                file=fn.path, line=sub.lineno,
            ))
    return findings


# --------------------------------------------------------------------- #
# CONC004 — signal-handler safety
# --------------------------------------------------------------------- #

def _check_signal_handlers(
    graph: CallGraph, signal_reachable: Set[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for fkey in sorted(signal_reachable):
        fn = graph.functions[fkey]
        module = graph.modules[fn.module]
        for sub in ast.walk(fn.node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            problem: Optional[str] = None
            if isinstance(func, ast.Name):
                if func.id == "open":
                    problem = "opens a file"
                elif func.id == "print":
                    problem = "calls print()"
            elif isinstance(func, ast.Attribute):
                attr = func.attr
                base = func.value
                base_name = base.id if isinstance(base, ast.Name) else None
                if attr == "acquire":
                    problem = "acquires a lock"
                elif base_name == "time" and attr == "sleep":
                    problem = "sleeps"
                elif base_name == "logging":
                    problem = "logs"
                elif base_name == "os" and attr == "fdopen":
                    problem = "opens a file"
                elif attr in _TELEMETRY_CALLS and base_name is not None:
                    target_module = graph._imported_module(module, base_name)
                    if target_module is not None and target_module.startswith(
                        "repro.telemetry"
                    ) or base_name == "telemetry":
                        problem = f"emits telemetry ({base_name}.{attr})"
            if problem is not None:
                findings.append(make_finding(
                    "CONC004",
                    f"{fn.qualname}() is reachable from a registered signal "
                    f"handler and {problem}; handlers may only set flags "
                    "and close file descriptors — they interrupt arbitrary "
                    "code, including malloc and lock-holding regions",
                    file=fn.path, line=sub.lineno,
                ))
    return findings


# --------------------------------------------------------------------- #
# CONC005 — the allow-comment audit
# --------------------------------------------------------------------- #

def audit_allow_comments(
    rel_path: str,
    source: str,
    used: Set[Tuple[int, str]],
) -> List[Finding]:
    """CONC005 notes for stale/unknown ``# repro: allow(...)`` comments.

    *used* holds the ``(line, rule)`` pairs every suppressing pass
    actually consumed for this file.
    """
    findings: List[Finding] = []
    for comment in allow_comments(source):
        for rule in comment.rules:
            if rule not in RULES:
                findings.append(make_finding(
                    "CONC005",
                    f"allow({rule}) names an unknown or retired rule; "
                    "remove the annotation or fix the rule ID",
                    file=rel_path, line=comment.line,
                ))
                continue
            if not any((line, rule) in used for line in comment.covers):
                findings.append(make_finding(
                    "CONC005",
                    f"allow({rule}) suppresses nothing on the lines it "
                    "covers; the finding it once silenced is gone — "
                    "delete the stale annotation",
                    file=rel_path, line=comment.line,
                ))
    return findings


# --------------------------------------------------------------------- #
# The pass driver
# --------------------------------------------------------------------- #

def analyze_concurrency(
    paths: Sequence[str],
    *,
    all_rules: bool = False,
    usage: Optional[Dict[str, Set[Tuple[int, str]]]] = None,
    audit: bool = True,
) -> AnalysisReport:
    """Run the CONC passes over every Python file under *paths*.

    ``all_rules=True`` forces the CONC003 shared-path scope onto every
    given file (the fixtures live outside the package tree).  *usage*
    carries the ``(line, rule)`` suppression consumptions of passes that
    already ran (the determinism lint); this pass adds its own and — with
    ``audit=True`` — closes with the CONC005 stale-allow sweep.
    """
    report = AnalysisReport(passes_run=("concurrency",))
    files = _python_files(paths)
    sources: Dict[str, str] = {}
    parsed: List[Tuple[str, ast.Module]] = []
    for path in files:
        rel = path.as_posix()
        source = path.read_text()
        sources[rel] = source
        parsed.append((rel, ast.parse(source, filename=rel)))
        report.files_scanned += 1

    graph = CallGraph.build(parsed)
    entries = _discover_entry_points(graph)
    pool_reachable = graph.reachable(entries.pool_roots)
    signal_reachable = graph.reachable(entries.signal_roots)

    raw: List[Finding] = []
    raw.extend(_check_fork_shared_state(graph, pool_reachable))
    raw.extend(_check_pickle_boundary(graph, entries))
    raw.extend(_check_file_protocol(graph, all_rules=all_rules))
    raw.extend(_check_signal_handlers(graph, signal_reachable))

    by_file: Dict[str, List[Finding]] = {}
    for finding in raw:
        by_file.setdefault(finding.file, []).append(finding)

    if usage is None:
        usage = {}
    for rel in sorted(sources):
        table = suppressions(sources[rel])
        used = usage.setdefault(rel, set())
        for finding in apply_suppressions(
            by_file.get(rel, []), table, used=used
        ):
            report.add(finding)
    if audit:
        for rel in sorted(sources):
            for finding in audit_allow_comments(
                rel, sources[rel], usage.get(rel, set())
            ):
                report.add(finding)
    return report
