"""The register-access sanitizer ("simsan"): dynamic checks at trace time.

Static passes prove what the *source* can do; the sanitizer watches what a
*simulation* actually does.  It is opt-in instrumentation, analogous to
ASan/TSan for native code: nothing in the substrate pays for it unless a
run is started with ``--sanitize``.

Two tiers, because two different guarantees are at stake:

* **Configuration-local checks** (:class:`SanitizedSystem`) wrap
  :meth:`repro.runtime.system.System.step` and are valid under *any*
  exploration order, including branching BFS:

  - SAN101 *mutation-after-freeze* — the input configuration's stable
    fingerprint must be identical before and after the step.  Journal
    replay (PR 3) and the parallel frontier merge (PR 1) silently corrupt
    if a step mutates shared immutable state.
  - SAN102 *nondeterministic step* — re-executing the same
    ``(configuration, pid)`` step must yield the same successor
    fingerprint and the same event.  This is the operational counterpart
    of the static DET rules: it catches nondeterminism the lint cannot
    see (hash-order leaks through C extensions, stateful closures).

* **Trace-level checks** (:class:`RegisterSanitizer`) need a *linear*
  execution, so they attach as a runner monitor (``repro run --sanitize``
  and the smoke runs of ``repro analyze --sanitize``), never to BFS:

  - SAN103 *covering write* (note) — a register's value was overwritten
    by a different process before anyone read it.  Not a bug: it is the
    paper's covering phenomenon (Theorem 2 builds its lower bound from
    exactly these), surfaced so operators can see covering pressure.
  - SAN104 *torn frame read* (note) — one object-implementation frame
    observed two different values of the same register, i.e. its read
    set was not atomic.  Expected for non-linearizable substrates
    (``collect``); a diagnostic for the others.

Findings flow into the shared :class:`~repro.analysis.report.AnalysisReport`
vocabulary; error-severity findings from SAN101/SAN102 gate ``--sanitize``
runs the same way static findings gate ``repro analyze``.

Sanitized systems carry mutable collector state, so ``explore --sanitize``
forces ``workers=1`` — the shared-nothing worker pool cannot aggregate a
collector across processes, and a silent per-worker collector would drop
findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.memory.ops import ReadOp, ScanOp, is_write_access, written_register
from repro.runtime.events import Event, MemoryEvent
from repro.runtime.system import (
    Configuration,
    StepResult,
    System,
    configuration_fingerprint,
)

from repro.analysis.report import AnalysisReport, Finding, make_finding

#: Stop collecting per rule beyond this many findings: a systematically
#: covering schedule would otherwise drown the report in identical notes.
MAX_FINDINGS_PER_RULE = 25


@dataclass
class SanitizerCollector:
    """Mutable accumulator shared by all sanitizer instrumentation.

    Deduplicates by (rule, message) and caps per-rule volume, so a bug hit
    on every step of a long exploration is reported once, not a million
    times.
    """

    findings: List[Finding] = field(default_factory=list)
    steps_checked: int = 0
    _seen: Set[Tuple[str, str]] = field(default_factory=set)
    _dropped: Dict[str, int] = field(default_factory=dict)

    def record(self, rule: str, message: str) -> None:
        """Record one finding, deduplicating and capping per rule."""
        key = (rule, message)
        if key in self._seen:
            return
        per_rule = sum(1 for f in self.findings if f.rule == rule)
        if per_rule >= MAX_FINDINGS_PER_RULE:
            self._dropped[rule] = self._dropped.get(rule, 0) + 1
            return
        self._seen.add(key)
        self.findings.append(make_finding(rule, message))

    def report(self) -> AnalysisReport:
        """Snapshot the collected findings as an :class:`AnalysisReport`."""
        report = AnalysisReport(passes_run=("sanitizer",))
        for finding in self.findings:
            report.add(finding)
        for rule, count in sorted(self._dropped.items()):
            report.add(make_finding(
                rule,
                f"... and {count} further {rule} findings suppressed "
                f"(cap {MAX_FINDINGS_PER_RULE} per rule)",
                severity="note",
            ))
        return report


SanitizedCollectorT = Optional[SanitizerCollector]


class SanitizedSystem(System):
    """A :class:`System` whose ``step`` audits purity on every call.

    Wraps an existing system (sharing its automaton, workloads and layout)
    rather than building one, so callers sanitize exactly the system they
    were about to run: ``SanitizedSystem(system, collector)``.

    ``check_replay=True`` doubles the cost of every step (each step is
    executed twice and compared) — acceptable for smoke runs and bounded
    explorations, which is what ``--sanitize`` is for.
    """

    def __init__(
        self,
        base: System,
        collector: SanitizedCollectorT = None,
        *,
        check_replay: bool = True,
    ) -> None:
        # Adopt the base system's fully-validated state wholesale instead
        # of re-running System.__init__: the base already resolved
        # workloads/layout defaults, and re-validation could diverge.
        self.__dict__.update(base.__dict__)
        self._base = base
        self.collector = collector if collector is not None else SanitizerCollector()
        self.check_replay = check_replay

    def step(self, config: Configuration, pid: int) -> StepResult:
        before = configuration_fingerprint(config)
        result = self._base.step(config, pid)
        self.collector.steps_checked += 1
        after = configuration_fingerprint(config)
        if before != after:
            self.collector.record(
                "SAN101",
                f"step(pid={pid}) mutated its input configuration "
                f"(fingerprint {before[:12]} -> {after[:12]}); journal "
                "replay and frontier merging are unsound against this "
                "system",
            )
        if self.check_replay:
            replayed = self._base.step(config, pid)
            same_succ = (
                configuration_fingerprint(replayed.config)
                == configuration_fingerprint(result.config)
            )
            if not same_succ or replayed.event != result.event:
                what = "successor" if not same_succ else "event"
                self.collector.record(
                    "SAN102",
                    f"step(pid={pid}) is nondeterministic: re-executing "
                    f"the same step produced a different {what} "
                    f"(event {result.event!r} vs {replayed.event!r})",
                )
        return result


@dataclass
class _WriteRecord:
    """Last write to one register: who wrote, and whether anyone read it."""

    pid: int
    step: int
    read: bool = False


class RegisterSanitizer:
    """Runner monitor tracking happens-before over register accesses.

    Only sound on a *linear* execution: attach via
    ``run(..., monitors=[sanitizer])``, never to BFS exploration (a
    branching frontier has no single happens-before order).
    """

    def __init__(self, system: System, collector: SanitizedCollectorT = None):
        self.layout = system.layout
        self.collector = (
            collector if collector is not None else SanitizerCollector()
        )
        self._writes: Dict[Tuple[str, int], _WriteRecord] = {}
        #: (pid, invocation, thread) -> register -> first response seen
        #: inside the current object-implementation frame.
        self._frame_reads: Dict[Tuple[int, int, int], Dict] = {}
        self._step = 0

    # -- read-set bookkeeping ----------------------------------------- #

    def _reads_of(self, op) -> List[Tuple[str, int]]:
        if isinstance(op, ReadOp):
            return [(op.obj, op.index)]
        if isinstance(op, ScanOp):
            return [
                (op.obj, index)
                for (obj, index) in self._writes
                if obj == op.obj
            ]
        return []

    def __call__(self, config: Configuration, event: Event) -> None:
        self._step += 1
        if not isinstance(event, MemoryEvent):
            return
        frame_key = (event.pid, event.invocation, event.thread)
        if not event.in_frame:
            # Leaving (or never entering) a frame ends its read window.
            self._frame_reads.pop(frame_key, None)

        for reg in self._reads_of(event.op):
            record = self._writes.get(reg)
            if record is not None:
                record.read = True
            if event.in_frame and isinstance(event.op, ReadOp):
                window = self._frame_reads.setdefault(frame_key, {})
                if reg in window and window[reg] != event.response:
                    self.collector.record(
                        "SAN104",
                        f"p{event.pid} frame (invocation "
                        f"{event.invocation}, thread {event.thread}) read "
                        f"{reg[0]}[{reg[1]}] twice and observed "
                        f"{window[reg]!r} then {event.response!r}: the "
                        "frame's read set is not atomic",
                    )
                window.setdefault(reg, event.response)

        if is_write_access(event.op):
            reg = written_register(event.op)
            if reg is None:
                return
            previous = self._writes.get(reg)
            if (
                previous is not None
                and not previous.read
                and previous.pid != event.pid
            ):
                self.collector.record(
                    "SAN103",
                    f"p{event.pid} covered {reg[0]}[{reg[1]}] at step "
                    f"{self._step}: p{previous.pid}'s write at step "
                    f"{previous.step} was never read (covering pressure, "
                    "cf. Theorem 2)",
                )
            self._writes[reg] = _WriteRecord(pid=event.pid, step=self._step)

    def report(self) -> AnalysisReport:
        """Snapshot the collected trace findings as a report."""
        return self.collector.report()


def sanitize_execution(
    system: System,
    *,
    max_steps: int = 2_000,
    check_replay: bool = True,
) -> AnalysisReport:
    """One sanitized smoke run: round-robin *system* to quiescence.

    This is what ``repro analyze --sanitize`` does per algorithm family:
    wrap the system, attach the trace monitor, run a short linear
    execution, and fold every finding into one report.
    """
    from repro.runtime.runner import run
    from repro.sched.round_robin import RoundRobinScheduler

    collector = SanitizerCollector()
    sanitized = SanitizedSystem(system, collector, check_replay=check_replay)
    monitor = RegisterSanitizer(sanitized, collector)
    run(
        sanitized,
        RoundRobinScheduler(),
        max_steps=max_steps,
        on_limit="return",
        monitors=[monitor],
    )
    report = collector.report()
    report.files_scanned = 0
    return report
