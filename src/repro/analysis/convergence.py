"""The preference funnel: how the set of live values collapses.

The k-agreement argument (Lemma 4) shows that after the (n−ℓ+1)-th decider's
final scan only ≤ m values can appear duplicated; the termination argument
(Lemma 5 / Corollary 6) shows that with ≤ m processes running, the snapshot
eventually contains only their values.  Both are statements about the
series computed here: the number of distinct values present in the snapshot
after each step.
"""

from __future__ import annotations

from typing import List, Optional

from repro._types import is_bot
from repro.runtime.runner import Execution


def distinct_values_over_time(
    execution: Execution, bank_index: int = 0
) -> List[int]:
    """Distinct non-⊥ values (entry first components) in the snapshot after
    each step of the execution."""
    system = execution.system
    config = execution.initial
    series: List[int] = []
    for pid in execution.schedule:
        config = system.step(config, pid).config
        values = set()
        for entry in config.memory[bank_index]:
            if is_bot(entry):
                continue
            values.add(entry[0] if isinstance(entry, tuple) and entry else entry)
        series.append(len(values))
    return series


def convergence_step(
    execution: Execution, m: int, bank_index: int = 0
) -> Optional[int]:
    """First step index from which the snapshot holds ≤ m distinct values
    forever (within this execution), or ``None`` if it never converges.

    For a completed m-bounded episode of Figures 3/4 this is finite — it is
    the operational content of Corollary 6 — and the decisions cluster
    shortly after it.
    """
    series = distinct_values_over_time(execution, bank_index)
    converged_from: Optional[int] = None
    for index, count in enumerate(series):
        if count <= m:
            if converged_from is None:
                converged_from = index
        else:
            converged_from = None
    return converged_from
