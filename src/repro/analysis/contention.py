"""Contention metrics over executions of the preference-loop algorithms.

All metrics are computed from the event stream (plus, for the concurrency
profile, a cheap replay), so they apply to any execution regardless of the
scheduler that produced it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memory.ops import UpdateOp, is_write_access
from repro.runtime.runner import Execution


def preference_changes(execution: Execution) -> Dict[int, int]:
    """Per process: how often the written *value* changed between its
    consecutive snapshot updates.

    For Figures 3/4/5 the written entry's first element is the preference,
    so this counts adoptions (line 13 / 24 / 28 events) — the quantity the
    termination proofs bound.
    """
    changes: Dict[int, int] = {}
    last_value: Dict[int, object] = {}
    for event in execution.memory_events:
        if not isinstance(event.op, UpdateOp):
            continue
        entry = event.op.value
        value = entry[0] if isinstance(entry, tuple) and entry else entry
        pid = event.pid
        if pid in last_value and last_value[pid] != value:
            changes[pid] = changes.get(pid, 0) + 1
        last_value[pid] = value
        changes.setdefault(pid, changes.get(pid, 0))
    return changes


def location_advances(execution: Execution) -> Dict[int, int]:
    """Per process: how often its update target moved to a new component.

    The complement of :func:`preference_changes` under Lemma 5's dichotomy:
    every loop iteration either adopts (same location) or advances.
    """
    advances: Dict[int, int] = {}
    last_component: Dict[int, int] = {}
    for event in execution.memory_events:
        if not isinstance(event.op, UpdateOp):
            continue
        pid = event.pid
        component = event.op.component
        if pid in last_component and last_component[pid] != component:
            advances[pid] = advances.get(pid, 0) + 1
        last_component[pid] = component
        advances.setdefault(pid, advances.get(pid, 0))
    return advances


def concurrency_profile(execution: Execution) -> List[int]:
    """Number of processes mid-operation after each step.

    Replays the schedule (pure, cheap) and counts active operations; the
    maximum of this series is the run's peak contention, its tail shape
    shows whether an adversary really created overlap or just took turns.
    """
    system = execution.system
    config = execution.initial
    profile: List[int] = []
    for pid in execution.schedule:
        config = system.step(config, pid).config
        profile.append(
            sum(1 for proc in config.procs if proc.active is not None)
        )
    return profile


def write_density(execution: Execution) -> float:
    """Fraction of memory steps that are writes — a cheap contention proxy
    (scans dominate quiet runs; writes dominate preference churn)."""
    memory = execution.memory_events
    if not memory:
        return 0.0
    writes = sum(1 for event in memory if is_write_access(event.op))
    return writes / len(memory)
