"""Appendix B's candidate machinery for the anonymous algorithm, executable.

The progress proof of Theorem 11 (Appendix B) tracks, for each value ``v``
and configuration ``C``, the quantity

    ``mult(C, v)`` = number of snapshot components holding an instance-t
    entry with value ``v``, **plus** the number of processes poised to
    perform an update with preference ``v``

and proves (Lemma 18) that once ``mult(C, v) < ℓ``, *no single step can
raise it back* to ``ℓ`` — values below the support threshold are doomed to
stop being candidates, which caps the surviving candidates at ``m`` and
forces decisions.

This module computes ``mult`` on real configurations and exposes the
Lemma 18 step-invariant as a checkable predicate; the test suite asserts
it along random executions of Figure 5 — the closest a simulation can come
to "running" Appendix B.
"""

from __future__ import annotations

from typing import Dict, Set

from repro._types import Value, is_bot
from repro.agreement.anonymous import LoopThreadState, UPDATE
from repro.runtime.system import Configuration, System


def poised_preferences(
    system: System, config: Configuration, instance: int
) -> Dict[Value, int]:
    """Preferences of processes poised to update in *instance*.

    A process is poised to update when its loop thread's next action is the
    ``update`` of Figure 5 line 18 (phase ``UPDATE``) for instance t.
    """
    counts: Dict[Value, int] = {}
    for proc in config.procs:
        if proc.active is None:
            continue
        loop_state = proc.active.slots[0].state
        if not isinstance(loop_state, LoopThreadState):
            continue
        if loop_state.t == instance and loop_state.phase == UPDATE:
            counts[loop_state.pref] = counts.get(loop_state.pref, 0) + 1
    return counts


def component_support(
    config: Configuration, instance: int, bank_index: int = 0
) -> Dict[Value, int]:
    """Instance-*instance* entries per value in the snapshot bank."""
    counts: Dict[Value, int] = {}
    for entry in config.memory[bank_index]:
        if is_bot(entry) or entry[1] != instance:
            continue
        counts[entry[0]] = counts.get(entry[0], 0) + 1
    return counts


def mult(
    system: System, config: Configuration, value: Value, instance: int
) -> int:
    """Appendix B's ``mult(C, v)`` for one instance of Figure 5."""
    return (
        component_support(config, instance).get(value, 0)
        + poised_preferences(system, config, instance).get(value, 0)
    )


def all_tracked_values(
    system: System, config: Configuration, instance: int
) -> Set[Value]:
    """Every value with positive mult — the candidate pool superset."""
    values = set(component_support(config, instance))
    values.update(poised_preferences(system, config, instance))
    return values


def lemma18_step_preserves_submult(
    system: System,
    before: Configuration,
    after: Configuration,
    instance: int,
    ell: int,
) -> bool:
    """Lemma 18's key step: values with ``mult < ℓ`` before a step still
    have ``mult < ℓ`` after it.

    Checked for every value tracked in either configuration.  Returns
    ``True`` when the invariant holds across this step.
    """
    values = all_tracked_values(system, before, instance) | all_tracked_values(
        system, after, instance
    )
    for value in values:
        if (
            mult(system, before, value, instance) < ell
            and mult(system, after, value, instance) >= ell
        ):
            return False
    return True
