"""A lightweight interprocedural call graph over a Python source tree.

The concurrency pass (:mod:`repro.analysis.concurrency`) needs one
question answered over and over: *is this function reachable from a
process-boundary entry point?* — a pool worker, a pool initializer, a
signal handler.  Answering it statically takes a call graph, and this
module builds one from nothing but ``ast``:

* every module under the analyzed paths is parsed once and indexed:
  functions (nested ones included), classes (with their dataclass
  decoration, ``__slots__``, and reduction-protocol methods), imports
  (with one level of re-export chasing through package ``__init__``
  modules), module-level globals, and module-level dispatch tables
  (``{"key": function, ...}``);
* call edges are resolved in a fixed priority order: enclosing-scope
  nested functions, module-level names, imports, ``self``/``cls``
  methods, receivers whose type is inferable (parameter annotations and
  ``x = ClassName(...)`` constructor assignments, including
  ``self.attr`` assignments collected class-wide), and finally a
  *duck-typed fallback* — an unresolvable ``recv.method()`` edges to
  every indexed class defining ``method``, capped at
  :data:`DUCK_FALLBACK_CAP` owning classes so ubiquitous names
  (``close``, ``get``) do not glue the whole graph together;
* :meth:`CallGraph.reachable` is a plain BFS over those edges.

Everything is deterministic by construction: files are walked in sorted
order, edge sets are materialized sorted, and the duck fallback sorts its
candidates — the analyzer's output must be bit-identical across runs and
filesystem listing orders (see ``tests/property/test_analysis_determinism.py``).

The graph is an over- *and* under-approximation at once (dynamic dispatch
through data, ``getattr``, and callables stored in instance attributes
are invisible), which is the standard static-analysis bargain: rules
built on it must tolerate both via suppression comments and scope
tables.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: A duck-typed ``recv.method()`` call resolves to same-named methods only
#: when at most this many indexed classes define the method; past the cap
#: the name is treated as too generic to mean anything.
DUCK_FALLBACK_CAP = 4

#: Container constructors whose module-level assignment marks a global as
#: a mutable (fork-divergent) value.
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "deque", "defaultdict", "OrderedDict",
    "Counter", "bytearray",
}

#: Methods whose presence gives a class a custom pickle story.
_REDUCTION_METHODS = ("__reduce__", "__reduce_ex__")


def module_name_for(rel_path: str) -> str:
    """Dotted module name for *rel_path* (``src/``-aware, fixture-safe)."""
    parts = list(PurePosixPath(Path(rel_path).as_posix()).with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else Path(rel_path).stem


@dataclass
class FunctionInfo:
    """One function or method definition, nested definitions included."""

    key: str                      # "module::qualname"
    module: str
    name: str
    qualname: str
    path: str
    lineno: int
    node: ast.AST
    class_key: Optional[str] = None   # owning class key for methods


@dataclass
class ClassInfo:
    """One class definition with the facts the passes ask about."""

    key: str
    module: str
    name: str
    qualname: str
    path: str
    lineno: int
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)
    #: (frozen, slots) when decorated ``@dataclass``, else None.
    dataclass_flags: Optional[Tuple[bool, bool]] = None
    has_slots: bool = False
    has_reduce: bool = False
    has_getstate: bool = False
    has_setstate: bool = False
    base_names: Tuple[str, ...] = ()
    #: Dataclass field annotation expressions (AnnAssign values in body).
    field_annotations: List[ast.expr] = field(default_factory=list)
    #: Inferred types of ``self.attr`` assignments/annotations (class keys).
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def has_reduction_protocol(self) -> bool:
        """A custom pickle path: ``__reduce__`` family, or get+setstate."""
        return self.has_reduce or (self.has_getstate and self.has_setstate)


@dataclass
class ModuleInfo:
    """Per-module index: imports, globals, dispatch tables."""

    name: str
    path: str
    tree: ast.Module
    #: local alias -> fully-qualified target ("pkg.mod" or "pkg.mod.name").
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level simple-Name assignment targets -> lineno of definition.
    globals: Dict[str, int] = field(default_factory=dict)
    #: the subset of ``globals`` bound to a mutable container value.
    mutable_globals: Set[str] = field(default_factory=set)
    #: module-level ``NAME = {const: func, ...}`` tables -> function names.
    dispatch_tables: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: module-level ``NAME = Union[...]``-style alias -> referenced names.
    type_aliases: Dict[str, ast.expr] = field(default_factory=dict)


def _dataclass_decoration(node: ast.ClassDef) -> Optional[Tuple[bool, bool]]:
    for decorator in node.decorator_list:
        target, keywords = decorator, []
        if isinstance(decorator, ast.Call):
            target, keywords = decorator.func, decorator.keywords
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name != "dataclass":
            continue
        flags = {"frozen": False, "slots": False}
        for keyword in keywords:
            if keyword.arg in flags and isinstance(keyword.value, ast.Constant):
                flags[keyword.arg] = bool(keyword.value.value)
        return flags["frozen"], flags["slots"]
    return None


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _is_type_alias_value(node: ast.expr) -> bool:
    """Union/Optional/Tuple-style subscript or PEP 604 union expressions."""
    if isinstance(node, ast.Subscript):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return True
    return False


class CallGraph:
    """The whole-tree index plus resolved call edges."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> sorted keys of classes defining it.
        self.methods_by_name: Dict[str, List[str]] = {}
        #: caller function key -> sorted callee function keys.
        self.edges: Dict[str, Tuple[str, ...]] = {}
        #: caller function key -> sorted class keys it constructs.
        self.constructs: Dict[str, Tuple[str, ...]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[Tuple[str, ast.Module]]) -> "CallGraph":
        """Index *files* (``(rel_path, parsed tree)``) and resolve edges."""
        graph = cls()
        for rel_path, tree in files:
            graph._index_module(rel_path, tree)
        for name in sorted(graph.classes):
            graph._collect_attr_types(graph.classes[name])
        for key in sorted(graph.functions):
            graph._resolve_edges(graph.functions[key])
        return graph

    def _index_module(self, rel_path: str, tree: ast.Module) -> None:
        module = ModuleInfo(name=module_name_for(rel_path), path=rel_path,
                            tree=tree)
        self.modules[module.name] = module

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports.setdefault(local, target)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    pkg = module.name.split(".")
                    # Within a package __init__ the module *is* the package.
                    if not module.path.endswith("__init__.py"):
                        pkg = pkg[:-1]
                    pkg = pkg[:len(pkg) - (node.level - 1)] if node.level > 1 else pkg
                    base = ".".join(pkg + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports.setdefault(local, f"{base}.{alias.name}")

        for stmt in tree.body:
            self._index_statement(module, stmt, qual_prefix="", class_key=None)

        # Module-level globals / dispatch tables / type aliases.
        for stmt in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                module.globals[target.id] = stmt.lineno
                if value is not None and _is_mutable_value(value):
                    module.mutable_globals.add(target.id)
                if isinstance(value, ast.Dict):
                    funcs = []
                    for v in value.values:
                        if isinstance(v, ast.Name):
                            funcs.append(v.id)
                    if funcs and len(funcs) == len(value.values):
                        module.dispatch_tables[target.id] = tuple(funcs)
                if value is not None and _is_type_alias_value(value):
                    module.type_aliases[target.id] = value

    def _index_statement(
        self,
        module: ModuleInfo,
        stmt: ast.stmt,
        *,
        qual_prefix: str,
        class_key: Optional[str],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{qual_prefix}{stmt.name}"
            key = f"{module.name}::{qualname}"
            info = FunctionInfo(
                key=key, module=module.name, name=stmt.name,
                qualname=qualname, path=module.path, lineno=stmt.lineno,
                node=stmt, class_key=class_key,
            )
            self.functions[key] = info
            if class_key is not None:
                owner = self.classes[class_key]
                owner.methods[stmt.name] = key
                if stmt.name in _REDUCTION_METHODS:
                    owner.has_reduce = True
                if stmt.name == "__getstate__":
                    owner.has_getstate = True
                if stmt.name == "__setstate__":
                    owner.has_setstate = True
            for inner in stmt.body:
                self._index_statement(
                    module, inner, qual_prefix=f"{qualname}.", class_key=None
                )
        elif isinstance(stmt, ast.ClassDef):
            qualname = f"{qual_prefix}{stmt.name}"
            key = f"{module.name}::{qualname}"
            bases = []
            for base in stmt.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            info = ClassInfo(
                key=key, module=module.name, name=stmt.name,
                qualname=qualname, path=module.path, lineno=stmt.lineno,
                node=stmt, dataclass_flags=_dataclass_decoration(stmt),
                base_names=tuple(bases),
            )
            self.classes[key] = info
            for inner in stmt.body:
                if isinstance(inner, ast.AnnAssign):
                    if isinstance(inner.target, ast.Name):
                        if inner.target.id == "__slots__":
                            info.has_slots = True
                        else:
                            info.field_annotations.append(inner.annotation)
                elif isinstance(inner, ast.Assign):
                    for target in inner.targets:
                        if isinstance(target, ast.Name) and target.id == "__slots__":
                            info.has_slots = True
                self._index_statement(
                    module, inner, qual_prefix=f"{qualname}.", class_key=key
                )
            self.methods_by_name = {}  # rebuilt lazily below

    # -- name resolution ---------------------------------------------------

    def _methods_named(self, name: str) -> List[str]:
        if not self.methods_by_name:
            table: Dict[str, List[str]] = {}
            for ckey in sorted(self.classes):
                for mname in self.classes[ckey].methods:
                    table.setdefault(mname, []).append(ckey)
            self.methods_by_name = table
        return self.methods_by_name.get(name, [])

    def resolve_qualified(self, dotted: str, *, _depth: int = 0) -> Optional[str]:
        """Resolve ``pkg.mod.name`` to a function/class key, chasing one
        level of package re-exports (``from pkg.mod import name`` in an
        ``__init__``)."""
        if _depth > 4 or "." not in dotted or dotted in self.modules:
            return None
        mod, name = dotted.rsplit(".", 1)
        if mod in self.modules:
            fkey = f"{mod}::{name}"
            if fkey in self.functions or fkey in self.classes:
                return fkey
            reexport = self.modules[mod].imports.get(name)
            if reexport is not None:
                return self.resolve_qualified(reexport, _depth=_depth + 1)
        # ``pkg.sub.name`` where ``pkg.sub`` itself is not indexed: give the
        # parent package a chance (``from repro import telemetry``).
        return None

    def _resolve_name(
        self, module: ModuleInfo, name: str, local_functions: Dict[str, str]
    ) -> Optional[str]:
        if name in local_functions:
            return local_functions[name]
        for key in (f"{module.name}::{name}",):
            if key in self.functions or key in self.classes:
                return key
        target = module.imports.get(name)
        if target is not None:
            if target in self.modules:
                return None  # a bare module import, not a callable
            return self.resolve_qualified(target)
        return None

    def _imported_module(self, module: ModuleInfo, alias: str) -> Optional[str]:
        target = module.imports.get(alias)
        if target is None:
            return None
        if target in self.modules:
            return target
        return None

    def class_of(self, key: Optional[str]) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` for *key* (``module::qualname``), or None."""
        if key is not None and key in self.classes:
            return self.classes[key]
        return None

    def ancestors(self, info: ClassInfo) -> List[ClassInfo]:
        """*info* plus indexed base classes (by bare name, same module first)."""
        out = [info]
        for base in info.base_names:
            resolved = self._resolve_name(
                self.modules[info.module], base, {}
            )
            base_info = self.class_of(resolved)
            if base_info is not None and base_info is not info:
                out.append(base_info)
        return out

    def annotation_classes(
        self, module: ModuleInfo, annotation: Optional[ast.expr],
        *, _depth: int = 0,
    ) -> List[str]:
        """Class keys referenced by *annotation*, aliases expanded."""
        if annotation is None or _depth > 6:
            return []
        found: List[str] = []
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return []
        for node in ast.walk(annotation):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is None:
                continue
            if name in module.type_aliases:
                found.extend(self.annotation_classes(
                    module, module.type_aliases[name], _depth=_depth + 1
                ))
                continue
            resolved = self._resolve_name(module, name, {})
            if resolved is None and name in module.imports:
                # alias defined in another indexed module
                target = module.imports[name]
                if "." in target:
                    tmod, tname = target.rsplit(".", 1)
                    other = self.modules.get(tmod)
                    if other is not None and tname in other.type_aliases:
                        found.extend(self.annotation_classes(
                            other, other.type_aliases[tname], _depth=_depth + 1
                        ))
            if resolved is not None and resolved in self.classes:
                found.append(resolved)
        seen: Set[str] = set()
        ordered = []
        for key in found:
            if key not in seen:
                seen.add(key)
                ordered.append(key)
        return ordered

    # -- type environments -------------------------------------------------

    def _collect_attr_types(self, info: ClassInfo) -> None:
        module = self.modules[info.module]
        for mkey in sorted(info.methods.values()):
            fn = self.functions[mkey]
            for node in ast.walk(fn.node):
                target = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value, annotation = node.target, node.value, node.annotation
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                inferred: Optional[str] = None
                if annotation is not None:
                    candidates = self.annotation_classes(module, annotation)
                    if len(candidates) == 1:
                        inferred = candidates[0]
                if inferred is None and isinstance(value, ast.Call):
                    inferred = self._constructed_class(module, value, {})
                if inferred is not None:
                    info.attr_types.setdefault(target.attr, inferred)

    def _constructed_class(
        self, module: ModuleInfo, call: ast.Call, local_functions: Dict[str, str]
    ) -> Optional[str]:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return None
        resolved = self._resolve_name(module, name, local_functions)
        if resolved in self.classes:
            return resolved
        return None

    def _local_env(
        self, module: ModuleInfo, fn: FunctionInfo, local_functions: Dict[str, str]
    ) -> Dict[str, str]:
        """Best-effort name -> class key map for *fn*'s body."""
        env: Dict[str, str] = {}
        node = fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                candidates = self.annotation_classes(module, arg.annotation)
                if len(candidates) == 1:
                    env[arg.arg] = candidates[0]
        for sub in ast.walk(node):
            target = None
            value: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 and isinstance(
                sub.targets[0], ast.Name
            ):
                target, value = sub.targets[0].id, sub.value
            elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                candidates = self.annotation_classes(module, sub.annotation)
                if len(candidates) == 1:
                    env.setdefault(sub.target.id, candidates[0])
                continue
            if target is None or not isinstance(value, ast.Call):
                continue
            constructed = self._constructed_class(module, value, local_functions)
            if constructed is not None:
                env.setdefault(target, constructed)
        return env

    # -- edges -------------------------------------------------------------

    def _nested_functions(self, fn: FunctionInfo) -> Dict[str, str]:
        """Names of functions defined lexically inside *fn* (one level deep
        is enough for the handler-registration idiom)."""
        out: Dict[str, str] = {}
        prefix = f"{fn.module}::{fn.qualname}."
        for key in self.functions:
            if key.startswith(prefix):
                out[self.functions[key].name] = key
        return out

    def _resolve_edges(self, fn: FunctionInfo) -> None:
        module = self.modules[fn.module]
        local_functions = self._nested_functions(fn)
        # Sibling nested functions (defined next to *fn* in an enclosing
        # function) are also in lexical scope.
        if "." in fn.qualname:
            enclosing = fn.qualname.rsplit(".", 1)[0]
            prefix = f"{fn.module}::{enclosing}."
            for key in self.functions:
                if key.startswith(prefix):
                    local_functions.setdefault(self.functions[key].name, key)
        env = self._local_env(module, fn, local_functions)
        callees: Set[str] = set()
        constructed: Set[str] = set()

        def note(resolved: Optional[str]) -> None:
            if resolved is None:
                return
            if resolved in self.classes:
                constructed.add(resolved)
                init = self.classes[resolved].methods.get("__init__")
                if init is not None:
                    callees.add(init)
                return
            if resolved in self.functions:
                callees.add(resolved)

        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                note(self._resolve_name(module, func.id, local_functions))
                continue
            if isinstance(func, ast.Subscript) and isinstance(func.value, ast.Name):
                table = module.dispatch_tables.get(func.value.id)
                if table is not None:
                    for name in table:
                        note(self._resolve_name(module, name, local_functions))
                continue
            if not isinstance(func, ast.Attribute):
                continue
            attr = func.attr
            base = func.value
            resolved_method = False
            if isinstance(base, ast.Name):
                # module alias: telemetry.reset(), heartbeat.publish(), ...
                target_module = self._imported_module(module, base.id)
                if target_module is not None:
                    note(self.resolve_qualified(f"{target_module}.{attr}"))
                    continue
                if base.id in ("self", "cls") and fn.class_key is not None:
                    for owner in self.ancestors(self.classes[fn.class_key]):
                        if attr in owner.methods:
                            callees.add(owner.methods[attr])
                            resolved_method = True
                            break
                    if resolved_method:
                        continue
                receiver_type = env.get(base.id)
                if receiver_type is not None:
                    for owner in self.ancestors(self.classes[receiver_type]):
                        if attr in owner.methods:
                            callees.add(owner.methods[attr])
                            resolved_method = True
                            break
                    if resolved_method:
                        continue
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and fn.class_key is not None
            ):
                attr_type = None
                for owner in self.ancestors(self.classes[fn.class_key]):
                    attr_type = owner.attr_types.get(base.attr)
                    if attr_type is not None:
                        break
                if attr_type is not None:
                    for owner in self.ancestors(self.classes[attr_type]):
                        if attr in owner.methods:
                            callees.add(owner.methods[attr])
                            resolved_method = True
                            break
                    if resolved_method:
                        continue
            # Duck-typed fallback: any indexed class with this method name,
            # bounded so generic names do not connect everything.
            if not attr.startswith("__"):
                owners = self._methods_named(attr)
                if 0 < len(owners) <= DUCK_FALLBACK_CAP:
                    for ckey in owners:
                        callees.add(self.classes[ckey].methods[attr])
        self.edges[fn.key] = tuple(sorted(callees))
        self.constructs[fn.key] = tuple(sorted(constructed))

    # -- queries -----------------------------------------------------------

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Function keys reachable from *roots* (roots included)."""
        seen: Set[str] = set()
        stack = [r for r in sorted(set(roots)) if r in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            for callee in self.edges.get(key, ()):
                if callee not in seen:
                    stack.append(callee)
        return seen
