"""Execution analytics and static analysis of the reproduction itself.

Two halves live here.  *Execution analytics* measure concrete runs:

* :mod:`~repro.analysis.contention` — per-process preference changes,
  location advances, and the concurrency profile of a run;
* :mod:`~repro.analysis.convergence` — the "preference funnel": distinct
  values present in the snapshot over time, and when it collapses to ≤ m.

*Static analysis* (``python -m repro analyze``) verifies the properties
the rest of the repo leans on without running a single simulation step:

* :mod:`~repro.analysis.report` — the shared :class:`AnalysisReport` /
  :class:`Finding` vocabulary, rule catalog, and suppression syntax;
* :mod:`~repro.analysis.determinism` — AST lint for nondeterminism
  hazards and frozen-state discipline on the step path (DET*/MUT* rules);
* :mod:`~repro.analysis.callgraph` — the interprocedural call graph the
  concurrency pass is built on (entry-point reachability);
* :mod:`~repro.analysis.concurrency` — static concurrency-safety checks
  over the process-crossing hot paths (CONC* rules: fork-shared state,
  pickle boundary, file-write protocol, signal handlers, stale allows);
* :mod:`~repro.analysis.footprint` — symbolic register-footprint checker
  proving each algorithm family against its Figure 1 bound (FP* rules);
* :mod:`~repro.analysis.sanitizer` — opt-in runtime instrumentation
  ("simsan") for purity and register-access anomalies (SAN* rules).
"""

from repro.analysis.contention import (
    concurrency_profile,
    location_advances,
    preference_changes,
)
from repro.analysis.convergence import (
    convergence_step,
    distinct_values_over_time,
)
from repro.analysis.callgraph import CallGraph
from repro.analysis.concurrency import analyze_concurrency
from repro.analysis.determinism import lint_paths
from repro.analysis.footprint import check_footprints, family_footprints
from repro.analysis.report import AnalysisReport, Finding, RULES, catalog_table
from repro.analysis.sanitizer import (
    RegisterSanitizer,
    SanitizedSystem,
    SanitizerCollector,
    sanitize_execution,
)

__all__ = [
    "preference_changes",
    "location_advances",
    "concurrency_profile",
    "distinct_values_over_time",
    "convergence_step",
    "AnalysisReport",
    "Finding",
    "RULES",
    "catalog_table",
    "lint_paths",
    "CallGraph",
    "analyze_concurrency",
    "check_footprints",
    "family_footprints",
    "RegisterSanitizer",
    "SanitizedSystem",
    "SanitizerCollector",
    "sanitize_execution",
]
