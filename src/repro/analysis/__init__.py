"""Execution analytics: contention profiles and preference convergence.

The progress arguments of §4 are, operationally, statements about how the
set of *live preferences* shrinks: processes adopt duplicated values until
at most ``m`` distinct values survive, at which point everyone decides.
This package measures that dynamic on concrete executions:

* :mod:`~repro.analysis.contention` — per-process preference changes,
  location advances, and the concurrency profile of a run;
* :mod:`~repro.analysis.convergence` — the "preference funnel": distinct
  values present in the snapshot over time, and when it collapses to ≤ m.
"""

from repro.analysis.contention import (
    concurrency_profile,
    location_advances,
    preference_changes,
)
from repro.analysis.convergence import (
    convergence_step,
    distinct_values_over_time,
)

__all__ = [
    "preference_changes",
    "location_advances",
    "concurrency_profile",
    "distinct_values_over_time",
    "convergence_step",
]
