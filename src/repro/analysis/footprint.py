"""Static register-footprint checker: Figure 1 without running a step.

The paper's headline artifact is a table of register counts; the library's
operational accounting (`MemoryLayout.register_count`) only measures a
*constructed* layout at concrete ``(n, m, k)``.  This pass closes the gap
statically: it parses each algorithm family's source, derives a *symbolic*
register footprint over the parameters ``n, m, k``, and proves it against
the declared Figure 1 bounds — so an accidental extra bank, a changed
component formula, or a new register slipped into ``default_layout`` fails
``repro analyze`` before any simulation runs.

How the footprint is derived (all by AST walk, no imports, no execution):

1. ``nominal_components`` — its return expression is converted into a
   polynomial over ``n, m, k`` (the paper's formulas are polynomial:
   ``n+2m−k`` for Figures 3/4, ``(m+1)(n−k)+m²`` for Figure 5);
2. ``default_layout`` — every allocation call is charged:
   ``snapshot_layout(X, self.components)`` costs the components
   polynomial, ``register_layout(X, c)`` costs the constant ``c``,
   ``merge_layouts`` sums its arguments.  Any allocation the walker does
   not recognize is itself a finding (FP003) — the checker refuses to
   under-count silently;
3. access sites — every ``UpdateOp/ScanOp/ReadOp/WriteOp`` constructed
   anywhere in the class must target an object the layout declares
   (FP002): a protocol cannot touch registers it never paid for.

Symbolic comparison happens over the paper's parameter regime
``1 ≤ m ≤ k < n`` using the substitution ``m = 1+c, k = m+b, n = k+1+a``
with ``a, b, c ≥ 0``: a polynomial is nonnegative on the whole regime if
its rewritten form has only nonnegative coefficients.  This is sound
(never claims an inequality that can fail) and complete for every bound in
Figure 1; a ``min``-shaped upper bound is satisfied when the footprint is
dominated by *some* branch — the min records that two different algorithms
witness the bound, and this repo implements the ``n+2m−k`` witness.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.report import AnalysisReport, make_finding

#: Monomial over the parameter variables: a sorted tuple of variable
#: names, e.g. () for the constant term, ("m", "n") for m·n.
Monomial = Tuple[str, ...]

#: Polynomial: monomial -> integer coefficient (zero coefficients absent).
Poly = Mapping[Monomial, int]

PARAMS = ("n", "m", "k")


def poly(**terms: int) -> Dict[Monomial, int]:
    """Convenience constructor: ``poly(n=1, m=2, k=-1, const=0)``.

    Keys are single variables or ``const``; richer monomials (``m²``,
    ``m·n``) are built with :func:`p_mul`.
    """
    out: Dict[Monomial, int] = {}
    for key, coeff in terms.items():
        mono: Monomial = () if key == "const" else (key,)
        if coeff:
            out[mono] = out.get(mono, 0) + coeff
    return out


def p_add(*ps: Poly) -> Dict[Monomial, int]:
    """Sum of polynomials."""
    out: Dict[Monomial, int] = {}
    for p in ps:
        for mono, coeff in p.items():
            new = out.get(mono, 0) + coeff
            if new:
                out[mono] = new
            else:
                out.pop(mono, None)
    return out


def p_neg(p: Poly) -> Dict[Monomial, int]:
    """Negation of a polynomial."""
    return {mono: -coeff for mono, coeff in p.items()}


def p_sub(a: Poly, b: Poly) -> Dict[Monomial, int]:
    """Difference ``a - b``."""
    return p_add(a, p_neg(b))


def p_mul(a: Poly, b: Poly) -> Dict[Monomial, int]:
    """Product of two polynomials."""
    out: Dict[Monomial, int] = {}
    for mono_a, ca in a.items():
        for mono_b, cb in b.items():
            mono = tuple(sorted(mono_a + mono_b))
            new = out.get(mono, 0) + ca * cb
            if new:
                out[mono] = new
            else:
                out.pop(mono, None)
    return out


def p_eval(p: Poly, **values: int) -> int:
    """Evaluate at concrete parameter values."""
    total = 0
    for mono, coeff in p.items():
        term = coeff
        for var in mono:
            term *= values[var]
        total += term
    return total


def p_render(p: Poly) -> str:
    """Human-readable canonical rendering, e.g. ``m*n - k + 2``."""
    if not p:
        return "0"
    parts = []
    for mono in sorted(p, key=lambda m: (-len(m), m)):
        coeff = p[mono]
        body = "*".join(mono)
        if not mono:
            text = str(abs(coeff))
        elif abs(coeff) == 1:
            text = body
        else:
            text = f"{abs(coeff)}*{body}"
        sign = "-" if coeff < 0 else "+"
        parts.append((sign, text))
    first_sign, first_text = parts[0]
    rendered = (first_sign if first_sign == "-" else "") + first_text
    for sign, text in parts[1:]:
        rendered += f" {sign} {text}"
    return rendered


def nonnegative_on_regime(p: Poly) -> bool:
    """Soundly decide ``p(n,m,k) ≥ 0`` for all ``1 ≤ m ≤ k < n``.

    Substitutes ``m = 1+c, k = 1+c+b, n = 2+c+b+a`` (``a,b,c ≥ 0``) and
    checks that every coefficient of the rewritten polynomial in
    ``a, b, c`` is nonnegative — a sufficient condition that happens to be
    conclusive for every Figure 1 bound (their slack is monotone in the
    regime offsets).
    """
    substitution = {
        "m": poly(c=1, const=1),
        "k": poly(c=1, b=1, const=1),
        "n": poly(c=1, b=1, a=1, const=2),
    }
    rewritten: Dict[Monomial, int] = {(): 0}
    for mono, coeff in p.items():
        term: Dict[Monomial, int] = {(): coeff}
        for var in mono:
            term = p_mul(term, substitution[var])
        rewritten = p_add(rewritten, term)
    return all(coeff >= 0 for coeff in rewritten.values())


# --------------------------------------------------------------------- #
# AST -> polynomial extraction
# --------------------------------------------------------------------- #

class FootprintExtractionError(Exception):
    """The walker met source it cannot soundly account for."""


def _expr_poly(node: ast.expr) -> Dict[Monomial, int]:
    """Convert an arithmetic expression over self.n/m/k into a polynomial."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return poly(const=node.value)
    if isinstance(node, ast.Attribute) and node.attr in PARAMS:
        return poly(**{node.attr: 1})
    if isinstance(node, ast.Name) and node.id in PARAMS:
        return poly(**{node.id: 1})
    if isinstance(node, ast.BinOp):
        left, right = _expr_poly(node.left), _expr_poly(node.right)
        if isinstance(node.op, ast.Add):
            return p_add(left, right)
        if isinstance(node.op, ast.Sub):
            return p_sub(left, right)
        if isinstance(node.op, ast.Mult):
            return p_mul(left, right)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return p_neg(_expr_poly(node.operand))
    raise FootprintExtractionError(
        f"cannot symbolize expression at line {node.lineno}: "
        f"{ast.dump(node)[:80]}"
    )


def _find_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == name:
            return item
    return None


def _components_poly(cls: ast.ClassDef) -> Dict[Monomial, int]:
    method = _find_method(cls, "nominal_components")
    if method is None:
        raise FootprintExtractionError(
            f"{cls.name} has no nominal_components method"
        )
    returns = [n for n in ast.walk(method) if isinstance(n, ast.Return)]
    if len(returns) != 1 or returns[0].value is None:
        raise FootprintExtractionError(
            f"{cls.name}.nominal_components must have a single return "
            "expression"
        )
    return _expr_poly(returns[0].value)


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _layout_cost(
    node: ast.expr,
    components: Poly,
    objects: List[str],
) -> Dict[Monomial, int]:
    """Charge one allocation expression inside ``default_layout``."""
    if not isinstance(node, ast.Call):
        raise FootprintExtractionError(
            f"unrecognized layout expression at line {node.lineno}"
        )
    name = _call_name(node)
    if name == "merge_layouts":
        return p_add(*(
            _layout_cost(arg, components, objects) for arg in node.args
        ))
    if name in ("snapshot_layout", "register_layout"):
        if len(node.args) < 2:
            raise FootprintExtractionError(
                f"{name} call at line {node.lineno} lacks a size argument"
            )
        obj_arg, size_arg = node.args[0], node.args[1]
        if isinstance(obj_arg, ast.Constant):
            objects.append(str(obj_arg.value))
        elif isinstance(obj_arg, ast.Name):
            objects.append(obj_arg.id)  # module-level constant (SNAPSHOT)
        if (
            isinstance(size_arg, ast.Attribute)
            and size_arg.attr == "components"
        ):
            return dict(components)
        return _expr_poly(size_arg)
    raise FootprintExtractionError(
        f"unrecognized allocation {name!r} at line {node.lineno}; teach "
        "repro.analysis.footprint about it before shipping"
    )


def _layout_poly(
    cls: ast.ClassDef, components: Poly
) -> Tuple[Dict[Monomial, int], List[str]]:
    method = _find_method(cls, "default_layout")
    if method is None:
        raise FootprintExtractionError(f"{cls.name} has no default_layout")
    returns = [n for n in ast.walk(method) if isinstance(n, ast.Return)]
    if len(returns) != 1 or returns[0].value is None:
        raise FootprintExtractionError(
            f"{cls.name}.default_layout must have a single return expression"
        )
    objects: List[str] = []
    cost = _layout_cost(returns[0].value, components, objects)
    return cost, objects


_OP_CONSTRUCTORS = {"UpdateOp", "ScanOp", "ReadOp", "WriteOp"}


def _access_sites(cls: ast.ClassDef) -> List[Tuple[str, int]]:
    """(object name, line) of every shared-memory op the class constructs."""
    sites: List[Tuple[str, int]] = []
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) not in _OP_CONSTRUCTORS:
            continue
        if not node.args:
            continue
        target = node.args[0]
        if isinstance(target, ast.Constant):
            sites.append((str(target.value), node.lineno))
        elif isinstance(target, ast.Name):
            sites.append((target.id, node.lineno))
    return sites


# --------------------------------------------------------------------- #
# The family registry and the check
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class FamilySpec:
    """The declared space contract of one algorithm family.

    ``expected`` is the family's exact footprint formula; ``upper_bounds``
    the Figure 1 cell's branches (the footprint must be dominated by at
    least one); ``lower_bound`` the matching lower-bound polynomial (must
    not exceed the footprint — an algorithm below the proven lower bound
    means the accounting itself is broken), or ``None`` when the cell's
    lower bound is not polynomial (Theorem 10's square root).
    """

    family: str
    module: str
    class_name: str
    expected: Poly
    expected_text: str
    upper_bounds: Tuple[Poly, ...]
    upper_text: str
    lower_bound: Optional[Poly]
    source: str


def _fig1_nonanon() -> Tuple[Poly, ...]:
    # min(n+2m−k, n): the repo implements the n+2m−k witness.
    return (poly(n=1, m=2, k=-1), poly(n=1))


def _fig5_snapshot() -> Dict[Monomial, int]:
    # (m+1)(n−k) + m²
    return p_add(
        p_mul(poly(m=1, const=1), poly(n=1, k=-1)),
        p_mul(poly(m=1), poly(m=1)),
    )


DEFAULT_FAMILIES: Tuple[FamilySpec, ...] = (
    FamilySpec(
        family="oneshot-figure3",
        module="repro/agreement/oneshot.py",
        class_name="OneShotSetAgreement",
        expected=poly(n=1, m=2, k=-1),
        expected_text="n + 2m - k",
        upper_bounds=_fig1_nonanon(),
        upper_text="min(n+2m-k, n)  (Theorem 7)",
        lower_bound=poly(const=2),
        source="Figure 3",
    ),
    FamilySpec(
        family="repeated-figure4",
        module="repro/agreement/repeated.py",
        class_name="RepeatedSetAgreement",
        expected=poly(n=1, m=2, k=-1),
        expected_text="n + 2m - k",
        upper_bounds=_fig1_nonanon(),
        upper_text="min(n+2m-k, n)  (Theorem 8)",
        lower_bound=poly(n=1, m=1, k=-1),
        source="Figure 4",
    ),
    FamilySpec(
        family="anonymous-figure5",
        module="repro/agreement/anonymous.py",
        class_name="AnonymousRepeatedSetAgreement",
        expected=p_add(_fig5_snapshot(), poly(const=1)),
        expected_text="(m+1)(n-k) + m^2 + 1",
        upper_bounds=(p_add(_fig5_snapshot(), poly(const=1)),),
        upper_text="(m+1)(n-k) + m^2 + 1  (Theorem 11)",
        lower_bound=poly(n=1, m=1, k=-1),
        source="Figure 5",
    ),
    FamilySpec(
        family="anonymous-oneshot",
        module="repro/agreement/anonymous.py",
        class_name="AnonymousOneShotSetAgreement",
        expected=_fig5_snapshot(),
        expected_text="(m+1)(n-k) + m^2",
        upper_bounds=(_fig5_snapshot(),),
        upper_text="(m+1)(n-k) + m^2  (§6 remark)",
        lower_bound=None,  # Theorem 10's bound is a square root
        source="Figure 5 (one-shot)",
    ),
)

#: Module-level constants that name layout objects in the sources.
_OBJECT_CONSTANTS = {"SNAPSHOT": "A", "HISTORY_REGISTER": "H"}


@dataclass(frozen=True, slots=True)
class FamilyFootprint:
    """The derived symbolic footprint of one family (for tests/tables)."""

    family: str
    footprint: Poly
    rendered: str
    objects: Tuple[str, ...]


def check_family(
    spec: FamilySpec, root: Path
) -> Tuple[Optional[FamilyFootprint], List]:
    """Derive and verify one family's footprint.  Returns (footprint, findings)."""
    findings = []
    path = _resolve_module(spec.module, root)
    if path is None:
        findings.append(make_finding(
            "FP003",
            f"family {spec.family}: module {spec.module} not found under "
            f"{root}",
            file=spec.module,
        ))
        return None, findings
    rel = path.as_posix()
    tree = ast.parse(path.read_text(), filename=rel)
    cls = next(
        (
            n for n in ast.walk(tree)
            if isinstance(n, ast.ClassDef) and n.name == spec.class_name
        ),
        None,
    )
    if cls is None:
        findings.append(make_finding(
            "FP003",
            f"family {spec.family}: class {spec.class_name} not found in "
            f"{rel}",
            file=rel,
        ))
        return None, findings
    try:
        components = _components_poly(cls)
        footprint, declared = _layout_poly(cls, components)
    except FootprintExtractionError as exc:
        findings.append(make_finding(
            "FP003", f"family {spec.family}: {exc}", file=rel, line=cls.lineno
        ))
        return None, findings

    declared_objects = {
        _OBJECT_CONSTANTS.get(name, name) for name in declared
    }
    for obj, line in _access_sites(cls):
        resolved = _OBJECT_CONSTANTS.get(obj, obj)
        if resolved not in declared_objects:
            findings.append(make_finding(
                "FP002",
                f"family {spec.family}: operation targets object "
                f"{resolved!r} which default_layout never allocates "
                f"(declared: {sorted(declared_objects)})",
                file=rel, line=line,
            ))

    if dict(footprint) != dict(spec.expected):
        findings.append(make_finding(
            "FP001",
            f"family {spec.family}: static footprint is "
            f"{p_render(footprint)} registers but {spec.source} declares "
            f"{spec.expected_text}; a space "
            f"{'regression' if _exceeds(footprint, spec.expected) else 'deviation'} "
            "must update the Figure 1 contract explicitly",
            file=rel, line=cls.lineno,
        ))
    if not any(
        nonnegative_on_regime(p_sub(branch, footprint))
        for branch in spec.upper_bounds
    ):
        findings.append(make_finding(
            "FP001",
            f"family {spec.family}: footprint {p_render(footprint)} is not "
            f"dominated by any branch of the Figure 1 upper bound "
            f"{spec.upper_text} on the regime 1 <= m <= k < n",
            file=rel, line=cls.lineno,
        ))
    if spec.lower_bound is not None and not nonnegative_on_regime(
        p_sub(footprint, spec.lower_bound)
    ):
        findings.append(make_finding(
            "FP001",
            f"family {spec.family}: footprint {p_render(footprint)} falls "
            f"below the proven lower bound "
            f"{p_render(spec.lower_bound)} — the static accounting is "
            "unsound, not the algorithm too frugal",
            file=rel, line=cls.lineno,
        ))
    return (
        FamilyFootprint(
            family=spec.family,
            footprint=footprint,
            rendered=p_render(footprint),
            objects=tuple(sorted(declared_objects)),
        ),
        findings,
    )


def _exceeds(footprint: Poly, expected: Poly) -> bool:
    """True when the footprint is (somewhere in the regime) above expected."""
    return not nonnegative_on_regime(p_sub(expected, footprint))


def _resolve_module(module: str, root: Path) -> Optional[Path]:
    for candidate in (root / module, root / "src" / module):
        if candidate.is_file():
            return candidate
    matches = sorted(root.rglob(Path(module).name))
    for match in matches:
        if match.as_posix().endswith(module):
            return match
    return None


def check_footprints(
    root: str = ".",
    families: Sequence[FamilySpec] = DEFAULT_FAMILIES,
) -> AnalysisReport:
    """Run the static footprint pass for every family under *root*."""
    report = AnalysisReport(passes_run=("footprint",))
    for spec in families:
        footprint, findings = check_family(spec, Path(root))
        report.files_scanned += 1
        for finding in findings:
            report.add(finding)
    return report


def family_footprints(
    root: str = ".",
    families: Sequence[FamilySpec] = DEFAULT_FAMILIES,
) -> Dict[str, FamilyFootprint]:
    """The derived footprints keyed by family (None entries omitted)."""
    out: Dict[str, FamilyFootprint] = {}
    for spec in families:
        footprint, _ = check_family(spec, Path(root))
        if footprint is not None:
            out[spec.family] = footprint
    return out
