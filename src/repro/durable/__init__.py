"""Crash-safe run durability: journal, checkpoints, watchdogs, recovery.

The repository's verification workloads — exhaustive explorations, fault
campaigns — are long, deterministic, and restartable, which makes
preemption tolerance cheap: persist progress at unit boundaries and a
resumed run is *provably* (bit-identically) the run that was interrupted.
This package is that persistence layer:

* :mod:`repro.durable.journal` — the append-only, length-prefixed,
  blake2b-checksummed record log (:class:`~repro.durable.journal.Journal`)
  and the checkpoint-compacted per-run composition
  (:class:`~repro.durable.journal.RunJournal`);
* :mod:`repro.durable.checkpoint` — sealed (digest-framed), fsync'd,
  atomically replaced blobs — the write discipline that survives power
  loss, not just process death;
* :mod:`repro.durable.watchdog` — wall-clock deadlines, RSS ceilings and
  SIGTERM routing that turn impending preemption into checkpoint-then-
  clean-exit (CLI exit code 3, or 143 for SIGTERM);
* :mod:`repro.durable.recovery` — the salvage accounting
  (:class:`~repro.durable.recovery.RecoveryReport`) and the quarantine
  protocol (unreadable files are moved under ``quarantine/``, never
  deleted, never re-hit);
* :mod:`repro.durable.retry` — the one shared exponential-backoff
  policy (:class:`~repro.durable.retry.BackoffPolicy`, optional seeded
  jitter) behind every self-healing retry loop.

Consumers: the exploration coordinator (``explore/frontier.py``,
``journal_dir=…``), the campaign runner (``faults/campaign.py``), and the
exploration cache's hardened load/save path (``explore/cache.py``).
"""

from repro.durable.checkpoint import (
    CheckpointStore,
    read_sealed,
    seal,
    unseal,
    write_sealed,
)
from repro.durable.journal import (
    Journal,
    JournalBusyError,
    JournalScan,
    RunJournal,
    scan_journal,
)
from repro.durable.recovery import RecoveryReport, quarantine_file
from repro.durable.retry import DEFAULT_REBUILD_POLICY, BackoffPolicy
from repro.durable.watchdog import (
    Terminated,
    Watchdog,
    current_rss_mb,
    install_sigterm_handler,
)

__all__ = [
    "BackoffPolicy",
    "CheckpointStore",
    "DEFAULT_REBUILD_POLICY",
    "Journal",
    "JournalBusyError",
    "JournalScan",
    "RecoveryReport",
    "RunJournal",
    "Terminated",
    "Watchdog",
    "current_rss_mb",
    "install_sigterm_handler",
    "quarantine_file",
    "read_sealed",
    "scan_journal",
    "seal",
    "unseal",
    "write_sealed",
]
