"""Watchdogs: turn preemption into a checkpoint, not a lost run.

Long verification workloads die three ways in practice: a scheduler
deadline (batch queue walltime), the OOM killer, and ``SIGTERM`` from an
orchestrator draining the host.  All three give *some* notice — the
deadline and the memory ceiling are knowable in advance, and SIGTERM is
the notice — so a run that polls a :class:`Watchdog` at its unit
boundaries (between exploration batches, between campaign trials) can
checkpoint and exit cleanly instead of being shot mid-write.

The contract:

* ``Watchdog(deadline=…, max_rss_mb=…)`` is armed by entering it as a
  context manager (which also registers it for SIGTERM delivery);
* the work loop calls :meth:`Watchdog.poll` at each consistent point; a
  non-``None`` return (``"deadline"``, ``"rss"``, ``"sigterm"``) means
  *checkpoint now and stop* — the loop records the reason and returns;
* :func:`install_sigterm_handler` (installed by the CLI dispatcher)
  routes SIGTERM to every registered watchdog; with **no** watchdog
  active it raises :class:`Terminated` instead, so commands with nothing
  to checkpoint still die promptly — and with exit code 143 either way.

``Terminated`` derives from ``BaseException`` (like
``KeyboardInterrupt``): it must not be swallowed by ``except Exception``
handlers anywhere between the signal and the exit code.

Worker processes forked by the exploration pool reset SIGTERM to the
default disposition (see ``explore/frontier._init_worker``): pool
teardown stops workers *with* SIGTERM, and a worker that graciously
"checkpoints" instead of dying would deadlock the coordinator's join.
"""

from __future__ import annotations

import os
import signal
import time
from typing import List, Optional

#: Reasons a watchdog can request a stop, in poll-priority order.
SIGTERM_REASON = "sigterm"
DEADLINE_REASON = "deadline"
RSS_REASON = "rss"


class Terminated(BaseException):
    """SIGTERM arrived with no checkpointable run active.

    Deliberately not a :class:`~repro.errors.ReproError` (and not even an
    ``Exception``): termination must reach the process exit path through
    any library-level ``except Exception`` clauses.
    """


def current_rss_mb() -> float:
    """This process's resident set size in MiB (best effort, never raises).

    Reads ``/proc/self/status`` (current RSS) where available, falling
    back to ``resource.getrusage`` (peak RSS) elsewhere; returns 0.0 when
    neither source works, which disables RSS ceilings rather than
    tripping them.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS reports bytes.
        return peak / 1024.0 if os.uname().sysname != "Darwin" else peak / 2**20
    except Exception:  # noqa: BLE001 — RSS is advisory, never fatal
        return 0.0


#: Watchdogs currently armed in this process; SIGTERM fans out to all.
_ACTIVE: List["Watchdog"] = []


class Watchdog:
    """Deadline + RSS ceiling + SIGTERM flag, polled at unit boundaries."""

    def __init__(
        self,
        *,
        deadline: Optional[float] = None,
        max_rss_mb: Optional[float] = None,
    ) -> None:
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if max_rss_mb is not None and max_rss_mb <= 0:
            raise ValueError(f"max_rss_mb must be positive, got {max_rss_mb}")
        self.deadline = deadline
        self.max_rss_mb = max_rss_mb
        self.started: Optional[float] = None
        self._stop_reason: Optional[str] = None

    def request_stop(self, reason: str) -> None:
        """Externally request a stop (the SIGTERM path); first reason wins."""
        if self._stop_reason is None:
            self._stop_reason = reason

    def poll(self) -> Optional[str]:
        """The reason to checkpoint-and-stop, or ``None`` to keep working.

        RSS comes from the shared throttled heartbeat
        (:mod:`repro.telemetry.heartbeat`), which also publishes the sample
        as the volatile gauges live renderers read — one ``/proc`` read
        serves the ceiling check and every display.  The cache can delay
        an RSS-ceiling trip by at most its ``max_age`` (0.5s), well under
        any poll cadence the ceiling is meant to protect.
        """
        # Imported lazily: telemetry.heartbeat imports this module for the
        # raw probe, so a top-level import here would be circular.
        from repro.telemetry import heartbeat

        if self._stop_reason is not None:
            return self._stop_reason
        elapsed: Optional[float] = None
        if self.started is not None:
            elapsed = time.monotonic() - self.started
        if self.deadline is not None:
            if (elapsed if elapsed is not None else 0.0) >= self.deadline:
                self._stop_reason = DEADLINE_REASON
                return self._stop_reason
        rss = heartbeat.publish(elapsed_s=elapsed)
        if self.max_rss_mb is not None and rss >= self.max_rss_mb:
            self._stop_reason = RSS_REASON
            return self._stop_reason
        return None

    def __enter__(self) -> "Watchdog":
        if self.started is None:
            self.started = time.monotonic()
        # Per-process SIGTERM registry by design: each process arms its
        # own watchdogs, and forked children clear inherited entries via
        # reset_active_watchdogs() in their pool initializer.
        _ACTIVE.append(self)  # repro: allow(CONC001)
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            # Per-process registry; see __enter__.
            _ACTIVE.remove(self)  # repro: allow(CONC001)
        except ValueError:
            pass


def active_watchdogs() -> List[Watchdog]:
    """The watchdogs currently armed in this process (a copy)."""
    return list(_ACTIVE)


def reset_active_watchdogs() -> None:
    """Clear the registry — for forked children and test isolation."""
    # This *is* the fork-divergence remedy CONC001 asks for: pool
    # initializers call it so children drop inherited registrations.
    _ACTIVE.clear()  # repro: allow(CONC001)


def deliver_sigterm() -> None:
    """Route a SIGTERM: flag every active watchdog, or die loudly.

    With at least one armed watchdog the signal becomes a graceful
    checkpoint request and the work loop exits on its own; with none,
    there is nothing to checkpoint and :class:`Terminated` propagates.
    """
    if _ACTIVE:
        for watchdog in _ACTIVE:
            watchdog.request_stop(SIGTERM_REASON)
        return
    raise Terminated()


def install_sigterm_handler():
    """Install the graceful SIGTERM handler; returns the previous handler.

    Only meaningful in the main thread of the main interpreter (where
    Python delivers signals); callers should restore the returned handler
    when their scope ends, so embedding the CLI in a larger process does
    not permanently hijack SIGTERM.
    """

    def _handler(signum, frame):  # noqa: ARG001 — signal handler signature
        deliver_sigterm()

    return signal.signal(signal.SIGTERM, _handler)
