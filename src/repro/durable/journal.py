"""The append-only run journal and its checkpoint-compacted run log.

Layout of a journal file::

    REPROJNL\\x01                      9-byte header (magic + version)
    [len:u64be][blake2b-128][payload]  record 0
    [len:u64be][blake2b-128][payload]  record 1
    ...

Records are length-prefixed and individually checksummed, so a scan can
classify every possible on-disk state without raising:

* a **valid prefix** — records whose digests verify, in order;
* a **torn tail** — a final record cut mid-write by a crash (the length
  prefix promises more bytes than the file holds);
* a **corrupt record** — bytes present but digest mismatch (bit rot,
  overwrite).  Scanning stops at the first torn/corrupt record: nothing
  after an unverifiable region can be trusted, because record boundaries
  themselves are data.

Appends go to the OS immediately (``flush``), so the journal survives
``kill -9`` of the process; ``fsync`` is reserved for checkpoints and
close, keeping the per-record cost to one buffered write (power loss can
cost un-fsynced suffix records — bounded, reported, never corrupting).

A journal has exactly **one writer**.  Two processes appending to the
same file would interleave frames and corrupt both histories, so the
writer handle takes a non-blocking ``flock`` on open and holds it until
:meth:`Journal.close` — including across :meth:`Journal.reset`, which
truncates the locked handle in place rather than reopening.  The loser
of the race gets :class:`JournalBusyError` immediately (nothing it wrote
reaches the file) and can retry under a
:class:`~repro.durable.retry.BackoffPolicy` or walk away; read paths
(:func:`scan_journal`) stay lock-free.

:class:`RunJournal` composes a journal with a sealed checkpoint
(:mod:`repro.durable.checkpoint`) into the unit the exploration engine
and the campaign runner actually use: indexed pickled records, periodic
compaction (checkpoint the aggregate, reset the journal), and a
:meth:`RunJournal.recover` that reconstructs the last consistent prefix
and accounts for everything else in a
:class:`~repro.durable.recovery.RecoveryReport`.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover — non-POSIX: locking degrades to no-op
    fcntl = None  # type: ignore[assignment]

from repro import telemetry
from repro.durable.checkpoint import (
    DIGEST_SIZE as _SEAL_DIGEST_SIZE,
    SEAL_MAGIC,
    CheckpointStore,
    fsync_dir,
    write_sealed,
)
from repro.durable.recovery import RecoveryReport, quarantine_file
from repro.errors import ReproError

#: Journal file header: magic + format version.  A mismatched header is
#: quarantine-grade (the whole file is unreadable), not a torn tail.
JOURNAL_MAGIC = b"REPROJNL\x01"

_LEN = struct.Struct(">Q")
DIGEST_SIZE = 16

#: Hard ceiling on a single record, enforced on append *and* scan: a
#: corrupted length prefix must never make recovery attempt a multi-GB
#: allocation.
MAX_RECORD_BYTES = 1 << 30

#: Minimum journal growth before :meth:`RunJournal.should_compact` says
#: yes: below this, replaying the log on recovery is cheaper than writing
#: a full-state checkpoint during the run.
COMPACT_FLOOR_BYTES = 4 << 20


class JournalBusyError(ReproError):
    """Another live process holds the writer lock on this journal.

    Raised by the *loser* of a concurrent-open race before any of its
    bytes reach the file — the on-disk journal stays the winner's,
    uncorrupted.  Callers either retry (serve's admission queue, under
    its backoff policy) or surface the conflict (two explorations
    resuming the same run key is an operator error).
    """

    def __init__(self, path: Path) -> None:
        super().__init__(
            f"journal {path} is locked by another writer; "
            "concurrent appends would corrupt it"
        )
        self.path = path


def _lock_or_raise(handle: Any, path: Path) -> None:
    """Take the non-blocking writer flock, or raise :class:`JournalBusyError`.

    flock attaches to the open file description, so a second ``Journal``
    on the same path conflicts even within one process — which is the
    point: one journal, one writer, no exceptions.
    """
    if fcntl is None:  # non-POSIX: advisory locking unavailable
        return
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        raise JournalBusyError(path) from None


def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).digest()


def _timed_fsync(fileno: int) -> None:
    """fsync, timing the wait into the volatile latency histogram."""
    t0 = time.perf_counter()
    os.fsync(fileno)
    telemetry.observe(
        "durable.fsync_seconds", time.perf_counter() - t0, volatile=True
    )


@dataclass
class JournalScan:
    """Classification of one journal file's bytes (see module docstring)."""

    payloads: List[bytes] = field(default_factory=list)
    valid_bytes: int = 0  #: header + verified records; truncation point
    discarded_bytes: int = 0  #: torn/corrupt suffix beyond the valid prefix
    header_ok: bool = True  #: False => the whole file is unreadable


def scan_journal(path: Path) -> JournalScan:
    """Read *path* and classify every byte.  Never raises.

    A missing file scans as an empty, header-ok journal (there is nothing
    to salvage and nothing wrong).
    """
    try:
        data = Path(path).read_bytes()
    except OSError:
        return JournalScan(valid_bytes=len(JOURNAL_MAGIC))
    if not data:
        return JournalScan(valid_bytes=len(JOURNAL_MAGIC))
    if not data.startswith(JOURNAL_MAGIC):
        return JournalScan(
            header_ok=False, valid_bytes=0, discarded_bytes=len(data)
        )
    scan = JournalScan(valid_bytes=len(JOURNAL_MAGIC))
    offset = len(JOURNAL_MAGIC)
    while offset < len(data):
        if offset + _LEN.size + DIGEST_SIZE > len(data):
            break  # torn: not even a complete length + digest
        (length,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        digest = data[offset:offset + DIGEST_SIZE]
        offset += DIGEST_SIZE
        if length > MAX_RECORD_BYTES or offset + length > len(data):
            break  # torn or length-corrupted: promised bytes aren't there
        payload = data[offset:offset + length]
        if _digest(payload) != digest:
            break  # corrupt: present but unverifiable
        offset += length
        scan.payloads.append(payload)
        scan.valid_bytes = offset
    scan.discarded_bytes = len(data) - scan.valid_bytes
    return scan


class Journal:
    """Append-only checksummed record log over one file."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._handle: Optional[io.BufferedWriter] = None

    def _ensure_open(self) -> io.BufferedWriter:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            handle = open(self.path, "ab")
            try:
                _lock_or_raise(handle, self.path)
            except JournalBusyError:
                handle.close()
                raise
            self._handle = handle
            if fresh:
                self._handle.write(JOURNAL_MAGIC)
                self._handle.flush()
        return self._handle

    def append(self, payload: bytes, *, sync: bool = False) -> None:
        """Append one record; flushed to the OS (``kill -9``-safe) always,
        fsynced (power-loss-safe) only when *sync* is set."""
        if len(payload) > MAX_RECORD_BYTES:
            raise ValueError(
                f"journal record of {len(payload)} bytes exceeds "
                f"MAX_RECORD_BYTES ({MAX_RECORD_BYTES})"
            )
        handle = self._ensure_open()
        handle.write(_LEN.pack(len(payload)) + _digest(payload) + payload)
        handle.flush()
        if sync:
            _timed_fsync(handle.fileno())

    def sync(self) -> None:
        """fsync pending appends (no-op if nothing was ever appended)."""
        if self._handle is not None:
            self._handle.flush()
            _timed_fsync(self._handle.fileno())

    def reset(self) -> None:
        """Truncate to an empty (header-only) journal, durably.

        The writer lock is held *across* the truncation: the handle is
        truncated in place rather than closed and reopened, so no other
        process can slip in between compaction and the next append.
        """
        handle = self._ensure_open()
        handle.flush()
        handle.truncate(0)
        handle.write(JOURNAL_MAGIC)  # O_APPEND: lands at the new EOF (0)
        handle.flush()
        os.fsync(handle.fileno())
        fsync_dir(self.path.parent)

    def repair(self, scan: JournalScan) -> None:
        """Truncate the file to *scan*'s valid prefix (drop the torn tail)."""
        self.close()
        if not self.path.exists():
            return
        try:
            with open(self.path, "rb+") as handle:
                _lock_or_raise(handle, self.path)
                handle.truncate(scan.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass

    def close(self) -> None:
        """fsync pending appends and release the file handle."""
        if self._handle is not None:
            try:
                self.sync()
            finally:
                self._handle.close()
                self._handle = None


#: Checkpoint payload: (format, next_record_index, application object).
_CK_FORMAT = 1


class RunJournal:
    """One run's durable state: ``<dir>/journal.bin`` + ``<dir>/checkpoint.bin``.

    Records are pickled ``(index, obj)`` pairs; indices are the
    application's monotonically increasing unit counter (batch number,
    trial number).  Compaction (:meth:`checkpoint`) persists the
    aggregate state *and the index it covers*, then resets the journal —
    so recovery can tell redundant pre-compaction records (stale, skipped)
    from the live suffix, even if a crash lands between the two steps.
    """

    def __init__(
        self, directory: Path, *, quarantine_dir: Optional[Path] = None
    ) -> None:
        self.directory = Path(directory)
        self.quarantine_dir = (
            Path(quarantine_dir) if quarantine_dir is not None
            else self.directory / "quarantine"
        )
        self.journal = Journal(self.directory / "journal.bin")
        self.store = CheckpointStore(
            self.directory / "checkpoint.bin", self.quarantine_dir
        )
        #: Report of the last :meth:`recover` call, for operators' logs.
        self.last_recovery: Optional[RecoveryReport] = None
        #: First unused record index after :meth:`recover` — the index the
        #: resuming run should stamp on its next :meth:`record` call.
        self.next_index: int = 0
        #: Journal bytes appended since the last compaction, and the size
        #: of the last checkpoint blob — the two sides of the
        #: :meth:`should_compact` amortization rule.
        self.bytes_since_compaction: int = 0
        self.last_checkpoint_bytes: int = 0

    def record(self, index: int, obj: Any, *, sync: bool = False) -> None:
        """Append one unit of completed work to the journal."""
        payload = pickle.dumps((index, obj), protocol=pickle.HIGHEST_PROTOCOL)
        self.journal.append(payload, sync=sync)
        self.bytes_since_compaction += len(payload) + _LEN.size + DIGEST_SIZE
        telemetry.counter("durable.appends")
        telemetry.counter("durable.append_bytes", len(payload))

    def checkpoint(self, obj: Any, next_index: int) -> None:
        """Compact: seal the aggregate covering ``[0, next_index)``, then
        reset the journal.  Crash-safe in either order of survival."""
        with telemetry.span("durable.checkpoint", next_index=next_index) as sp:
            payload = pickle.dumps(
                (_CK_FORMAT, next_index, obj), protocol=pickle.HIGHEST_PROTOCOL
            )
            write_sealed(self.store.path, payload)
            self.journal.reset()
            sp.set(bytes=len(payload))
        self.bytes_since_compaction = 0
        self.last_checkpoint_bytes = len(payload)
        telemetry.counter("durable.checkpoints")

    def should_compact(self) -> bool:
        """Has the journal grown enough that folding it in pays?

        The amortization rule of log-structured storage: compacting costs
        one full-state write, so it only pays once the log to be folded in
        is at least that large — and never before ``COMPACT_FLOOR_BYTES``,
        which caps compaction frequency for runs whose state dwarfs their
        per-unit deltas.  Callers combine this with their own unit cadence
        (``checkpoint_every``).  Skipping a compaction never risks work:
        records alone replay from the previous base; the only cost is
        recovery replaying at most the floor's worth of deltas.  Graceful
        exits (watchdog, SIGTERM, completion) checkpoint unconditionally.
        """
        return self.bytes_since_compaction >= max(
            COMPACT_FLOOR_BYTES, self.last_checkpoint_bytes
        )

    def recover(self) -> Tuple[Optional[Any], List[Tuple[int, Any]], RecoveryReport]:
        """Reconstruct the last consistent prefix of the run.

        Returns ``(checkpoint_obj, records, report)`` where *records* are
        the contiguous post-checkpoint ``(index, obj)`` pairs.  Never
        raises; every anomaly is truncated or quarantined and accounted
        for in the report.
        """
        report = RecoveryReport(run=self.directory.name)
        checkpoint_obj = None
        next_index = 0
        ck, problem = self.store.load()
        if problem == "corrupt":
            report.quarantined.append(self.store.path.name)
            report.notes.append("checkpoint failed verification; quarantined")
        elif ck is not None:
            try:
                fmt, next_index, checkpoint_obj = ck
                valid = fmt == _CK_FORMAT and isinstance(next_index, int)
            except (TypeError, ValueError):
                valid = False
            if not valid:
                checkpoint_obj, next_index = None, 0
                quarantine_file(self.store.path, self.quarantine_dir)
                report.quarantined.append(self.store.path.name)
                report.notes.append("checkpoint format skew; quarantined")
            else:
                report.checkpoint_loaded = True

        scan = scan_journal(self.journal.path)
        if not scan.header_ok:
            moved = quarantine_file(self.journal.path, self.quarantine_dir)
            if moved is not None:
                report.quarantined.append(self.journal.path.name)
            report.notes.append("journal header unreadable; quarantined")
            report.bytes_discarded += scan.discarded_bytes
        else:
            if scan.discarded_bytes:
                report.bytes_discarded += scan.discarded_bytes
                report.notes.append(
                    f"journal tail torn at byte {scan.valid_bytes}; truncated"
                )
                self.journal.repair(scan)
            records: List[Tuple[int, Any]] = []
            expected = next_index
            for payload in scan.payloads:
                try:
                    index, obj = pickle.loads(payload)
                except Exception:  # noqa: BLE001 — unpicklable => corrupt
                    report.notes.append("unpicklable journal record; dropped")
                    break
                if not isinstance(index, int) or index < expected:
                    report.records_stale += 1
                    continue
                if index > expected:
                    report.notes.append(
                        f"journal gap at record {expected}; suffix dropped"
                    )
                    break
                records.append((index, obj))
                expected += 1
            report.records_recovered = len(records)
            self.last_recovery = report
            self.next_index = expected
            self._seed_compaction_sizes(scan.valid_bytes)
            self._recovery_telemetry(report)
            return checkpoint_obj, records, report
        self.last_recovery = report
        self.next_index = next_index
        self._seed_compaction_sizes(0)
        self._recovery_telemetry(report)
        return checkpoint_obj, [], report

    @staticmethod
    def _recovery_telemetry(report: RecoveryReport) -> None:
        """Publish one salvaging recovery's counters (fresh journals skip).

        Volatile: what a recovery salvages depends on where the previous
        process died, which is a host accident, not run semantics.
        """
        if not report.salvaged_anything:
            return
        telemetry.counter("durable.recoveries", volatile=True)
        telemetry.counter(
            "durable.records_recovered", report.records_recovered,
            volatile=True,
        )
        telemetry.counter(
            "durable.records_stale", report.records_stale, volatile=True
        )
        telemetry.counter(
            "durable.bytes_discarded", report.bytes_discarded, volatile=True
        )

    def _seed_compaction_sizes(self, journal_valid_bytes: int) -> None:
        """Prime :meth:`should_compact` from the recovered on-disk sizes."""
        self.bytes_since_compaction = max(
            0, journal_valid_bytes - len(JOURNAL_MAGIC)
        )
        try:
            self.last_checkpoint_bytes = max(
                0,
                self.store.path.stat().st_size
                - len(SEAL_MAGIC) - _SEAL_DIGEST_SIZE,
            )
        except OSError:
            self.last_checkpoint_bytes = 0

    def close(self) -> None:
        """fsync and release the underlying journal file."""
        self.journal.close()
