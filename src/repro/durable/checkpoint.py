"""Sealed, fsync'd, atomically replaced blobs: the checkpoint discipline.

A *sealed* blob is ``MAGIC + blake2b-128(payload) + payload``.  The digest
turns silent corruption (a flipped bit on disk, a torn tail that still
parses as a pickle) into a detected miss: an unsealed read either returns
the exact bytes that were written or returns nothing — never plausible
garbage.  This is what lets every durable loader promise "wrong verdicts
are impossible, only lost work".

Writes follow the full power-loss protocol, not just the process-crash
one:

1. write the sealed blob to a temp file **in the destination directory**
   (same filesystem, so the final rename is atomic);
2. ``fsync`` the temp file — the payload is on the platter, not merely in
   the page cache;
3. ``os.replace`` onto the destination — readers see old-or-new, never a
   partial file;
4. ``fsync`` the directory — the *rename itself* survives power loss
   (without this, a crash can resurrect the old directory entry).

:class:`CheckpointStore` wraps the protocol for one pickled object with
quarantine-on-corruption (see :mod:`repro.durable.recovery`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.durable.recovery import quarantine_file

#: Leading bytes of every sealed blob; versioned so format changes are
#: detected as corruption (quarantine), never misread.
SEAL_MAGIC = b"REPROSEAL\x01"

#: blake2b digest width used throughout the durable layer.
DIGEST_SIZE = 16


def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).digest()


def seal(payload: bytes) -> bytes:
    """Frame *payload* as a self-verifying blob."""
    return SEAL_MAGIC + _digest(payload) + payload


def unseal(blob: bytes) -> Optional[bytes]:
    """Recover the payload of a sealed blob, or ``None`` if unverifiable."""
    header = len(SEAL_MAGIC) + DIGEST_SIZE
    if len(blob) < header or not blob.startswith(SEAL_MAGIC):
        return None
    digest = blob[len(SEAL_MAGIC):header]
    payload = blob[header:]
    if _digest(payload) != digest:
        return None
    return payload


def fsync_dir(directory: Path) -> None:
    """fsync a directory so renames within it survive power loss.

    Best-effort: platforms/filesystems that cannot open a directory for
    reading (or reject fsync on one) degrade to process-crash durability.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_sealed(path: Path, payload: bytes) -> Path:
    """Write ``seal(payload)`` to *path* with the full durability protocol."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(seal(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)
    return path


def read_sealed(path: Path) -> Optional[bytes]:
    """Read and verify a sealed blob; ``None`` on any failure.  Never raises."""
    try:
        blob = Path(path).read_bytes()
    except OSError:
        return None
    return unseal(blob)


class CheckpointStore:
    """One pickled object, stored sealed, loaded with quarantine.

    ``save`` is atomic and power-loss durable; ``load`` returns
    ``(obj, problem)`` where ``problem`` is ``None`` on success,
    ``"missing"`` when no checkpoint exists, or ``"corrupt"`` when the
    file failed verification or unpickling — in which case it has been
    moved to the quarantine directory (best-effort) rather than deleted.
    """

    def __init__(self, path: Path, quarantine_dir: Optional[Path] = None) -> None:
        self.path = Path(path)
        self.quarantine_dir = (
            Path(quarantine_dir) if quarantine_dir is not None
            else self.path.parent / "quarantine"
        )

    def save(self, obj: Any) -> None:
        """Pickle *obj* and write it sealed (atomic, power-loss durable)."""
        write_sealed(
            self.path, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def load(self) -> Tuple[Optional[Any], Optional[str]]:
        """Return ``(obj, None)``, or ``(None, "missing"/"corrupt")``."""
        if not self.path.exists():
            return None, "missing"
        payload = read_sealed(self.path)
        if payload is None:
            quarantine_file(self.path, self.quarantine_dir)
            return None, "corrupt"
        try:
            return pickle.loads(payload), None
        except Exception:  # noqa: BLE001 — any unpickling failure is corruption
            quarantine_file(self.path, self.quarantine_dir)
            return None, "corrupt"
