"""Shared retry/backoff policy for every self-healing loop in the repo.

Three subsystems retry failed work under exponentially growing patience:
the fault campaign grows the *step budget* of inconclusive trials, the
exploration engine sleeps between worker-pool rebuilds, and the serve
supervisor does both.  Before this module each carried its own copy of
the arithmetic (``budget * backoff**attempt`` in one place,
``min(0.05 * 2**attempt, 2.0)`` in another); :class:`BackoffPolicy` is
the single definition, with optional *seeded* jitter so that a fleet of
workers retrying the same incident fans out in time without giving up
reproducibility — the jitter for attempt ``i`` under seed ``s`` is a
pure function of ``(s, i)``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["BackoffPolicy", "DEFAULT_REBUILD_POLICY"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with a cap and optional deterministic jitter.

    ``max_retries`` counts *retries*, so a loop over :meth:`attempts`
    runs the work at most ``max_retries + 1`` times.  ``delay(attempt)``
    is ``min(base_delay * factor**attempt, max_delay)``, scaled by a
    jitter factor drawn uniformly from ``[1 - jitter, 1 + jitter]``
    using a PRNG seeded by ``(seed, attempt)`` — deterministic per
    attempt, independent across attempts.  ``jitter=0`` (the default)
    reproduces the historical fixed schedule exactly.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def attempts(self) -> Iterator[int]:
        """Attempt indices ``0 .. max_retries`` inclusive."""
        return iter(range(self.max_retries + 1))

    def delay(self, attempt: int) -> float:
        """Seconds to wait before re-running attempt number *attempt*."""
        base = min(self.base_delay * self.factor**attempt, self.max_delay)
        if self.jitter == 0.0:
            return base
        # str seeds hash via sha512 in CPython — stable across processes,
        # unlike tuple seeds (rejected) or hash() (per-process salted).
        rng = random.Random(f"{self.seed}:{attempt}")
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    def sleep(self, attempt: int) -> float:
        """Sleep for :meth:`delay`; returns the seconds actually slept."""
        pause = self.delay(attempt)
        if pause > 0.0:
            time.sleep(pause)
        return pause

    def scaled_budget(self, initial: int, attempt: int) -> int:
        """Exponentially grown work budget for *attempt* (no cap).

        This is the fault campaign's retry ladder: attempt 0 runs under
        ``initial`` steps, attempt ``i`` under ``initial * factor**i``.
        """
        return int(initial * self.factor**attempt)


#: The exploration engine's historical pool-rebuild schedule
#: (50 ms, 100 ms, 200 ms, ... capped at 2 s), kept as the shared
#: default for infrastructure rebuild loops.
DEFAULT_REBUILD_POLICY = BackoffPolicy(
    max_retries=3, base_delay=0.05, factor=2.0, max_delay=2.0,
)
