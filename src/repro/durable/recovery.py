"""Recovery accounting: what a crashed run left behind, and what survived.

Every durable component (the run journal, the checkpoint store, the
exploration cache) follows the same salvage discipline on startup:

* anything **verifiable** (magic intact, blake2b digest matches) is used;
* the first **torn or corrupt** region of a journal truncates the valid
  prefix — everything before it is trusted, everything after discarded;
* anything **unreadable wholesale** (bad header, failed digest, garbage
  pickle) is moved — never deleted — to a ``quarantine/`` directory, so a
  forensic copy survives and the bad file cannot be re-hit on every run.

The :class:`RecoveryReport` is the receipt: it records what was salvaged
and what was lost so a resumed run can state, in one line, exactly how
much work the preemption cost.  Loading and salvaging **never raise** —
a recovery path that can itself crash is no recovery path at all.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

#: Subdirectory (under a cache/journal root) receiving unreadable files.
QUARANTINE_DIR = "quarantine"


@dataclass
class RecoveryReport:
    """What one recovery scan salvaged from a run's durable state.

    ``records_recovered`` counts journal records replayed on top of the
    checkpoint; ``records_stale`` counts pre-compaction leftovers that the
    checkpoint already covers (skipped, harmless); ``bytes_discarded``
    measures the torn/corrupt journal suffix that was truncated away.
    ``quarantined`` lists files moved aside wholesale.
    """

    run: str
    checkpoint_loaded: bool = False
    checkpoint_finished: bool = False
    records_recovered: int = 0
    records_stale: int = 0
    bytes_discarded: int = 0
    quarantined: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def salvaged_anything(self) -> bool:
        """True iff the scan found any prior state (even quarantined)."""
        return (
            self.checkpoint_loaded
            or self.records_recovered > 0
            or self.records_stale > 0
            or self.bytes_discarded > 0
            or bool(self.quarantined)
        )

    def describe(self) -> str:
        """One line: what survived the preemption and what it cost."""
        if not self.salvaged_anything:
            return f"recovery [{self.run}]: fresh run, nothing to salvage"
        parts = []
        if self.checkpoint_finished:
            parts.append("finished checkpoint")
        elif self.checkpoint_loaded:
            parts.append("checkpoint")
        parts.append(f"{self.records_recovered} journal records")
        if self.records_stale:
            parts.append(f"{self.records_stale} stale (pre-compaction) skipped")
        if self.bytes_discarded:
            parts.append(f"{self.bytes_discarded} torn bytes truncated")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} files quarantined")
        return f"recovery [{self.run}]: salvaged " + ", ".join(parts)


def quarantine_file(path: Path, quarantine_dir: Path) -> Optional[Path]:
    """Move *path* under *quarantine_dir*; return the new path, or ``None``.

    Collisions get a numeric suffix.  Never raises — if the move itself
    fails (cross-device, permissions, the file vanished) the original is
    left in place and ``None`` is returned; quarantine is best-effort
    forensics, not a correctness dependency.
    """
    try:
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = quarantine_dir / path.name
        attempt = 0
        while target.exists():
            attempt += 1
            target = quarantine_dir / f"{path.name}.{attempt}"
        os.replace(path, target)
        return target
    except OSError:
        return None
