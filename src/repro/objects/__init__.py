"""Register-level implementations of snapshot objects.

The paper's space bounds count registers; its algorithms speak snapshot.
These implementations close the gap, each as an
:class:`~repro.runtime.frames.ObjectImplementation` driven one register
access per process step:

* :class:`~repro.objects.doublecollect.DoubleCollectSnapshot` — ``r``
  components from ``r`` MWMR registers; *non-blocking* scans via double
  collect with (pid, seq)-tagged writes.
* :class:`~repro.objects.doublecollect.AnonymousDoubleCollectSnapshot` —
  the identifier-free variant used under Figure 5; see its docstring for
  the Guerraoui–Ruppert [7] approximation note.
* :class:`~repro.objects.waitfree.WaitFreeSnapshot` — ``r`` components from
  ``r`` MWMR registers, *wait-free* via embedded-scan helping (the Afek et
  al. [1] technique adapted to multi-writer components).
* :class:`~repro.objects.swmr.SingleWriterSnapshot` — ``r`` components from
  exactly ``n`` single-writer registers (the [1, 13] route Theorem 7 takes
  when ``n + 2m − k > n``), wait-free via the same helping.

Helpers in :mod:`~repro.objects.layouts` build complete memory layouts
binding a protocol's snapshot to any of these substrates.
"""

from repro.objects.doublecollect import (
    AnonymousDoubleCollectSnapshot,
    DoubleCollectSnapshot,
)
from repro.objects.waitfree import WaitFreeSnapshot
from repro.objects.swmr import SingleWriterSnapshot
from repro.objects.layouts import implemented_snapshot_layout

__all__ = [
    "DoubleCollectSnapshot",
    "AnonymousDoubleCollectSnapshot",
    "WaitFreeSnapshot",
    "SingleWriterSnapshot",
    "implemented_snapshot_layout",
]
