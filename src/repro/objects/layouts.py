"""Layout builders: bind a protocol's snapshot to a register-level substrate.

A :class:`~repro.agreement.base.SetAgreementAutomaton` issues its snapshot
operations against the object named ``"A"``; by default that object is an
atomic primitive.  :func:`implemented_snapshot_layout` rebuilds the
protocol's layout with ``"A"`` bound to a chosen
:class:`~repro.runtime.frames.ObjectImplementation` instead, preserving
every other object (e.g. Figure 5's register ``H``) untouched — the
substrate ablation (benchmark E7) is exactly this swap.
"""

from __future__ import annotations

from typing import Literal

from repro._types import Params
from repro.agreement.base import SNAPSHOT, SetAgreementAutomaton
from repro.errors import ConfigurationError
from repro.memory.layout import (
    ImplementedBinding,
    MemoryLayout,
    PrimitiveBinding,
)
from repro.objects.doublecollect import (
    AnonymousDoubleCollectSnapshot,
    DoubleCollectSnapshot,
)
from repro.objects.swmr import SingleWriterSnapshot
from repro.objects.waitfree import WaitFreeSnapshot

SubstrateKind = Literal[
    "atomic", "double-collect", "anonymous-double-collect", "wait-free", "swmr"
]

_SUBSTRATES = {
    "double-collect": DoubleCollectSnapshot,
    "anonymous-double-collect": AnonymousDoubleCollectSnapshot,
    "wait-free": WaitFreeSnapshot,
    "swmr": SingleWriterSnapshot,
}


def implemented_snapshot_layout(
    protocol: SetAgreementAutomaton, kind: SubstrateKind
) -> MemoryLayout:
    """The protocol's layout with its snapshot on substrate *kind*.

    ``kind="atomic"`` returns the protocol's default layout unchanged.
    """
    if kind == "atomic":
        return protocol.default_layout()
    if kind not in _SUBSTRATES:
        raise ConfigurationError(
            f"unknown snapshot substrate {kind!r}; "
            f"choose one of {'/'.join(['atomic', *sorted(_SUBSTRATES)])}"
        )
    impl_cls = _SUBSTRATES[kind]
    impl = impl_cls(Params(components=protocol.components, n=protocol.n))
    impl_banks = impl.bank_specs(prefix=SNAPSHOT)

    base = protocol.default_layout()
    banks = list(impl_banks)
    objects = {
        SNAPSHOT: ImplementedBinding(
            impl=impl, banks=tuple(b.name for b in impl_banks)
        )
    }
    for obj in base.object_names:
        binding = base.binding(obj)
        if obj == SNAPSHOT:
            continue
        if isinstance(binding, PrimitiveBinding) and binding.bank == obj:
            continue  # implicit bank alias, regenerated automatically
        objects[obj] = binding
        if isinstance(binding, PrimitiveBinding):
            banks.append(base.banks[base.bank_index(binding.bank)])
    return MemoryLayout(tuple(banks), objects)


def substrate_register_count(protocol: SetAgreementAutomaton, kind: SubstrateKind) -> int:
    """Registers the protocol uses on substrate *kind* (space accounting)."""
    return implemented_snapshot_layout(protocol, kind).register_count()
