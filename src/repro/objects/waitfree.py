"""Wait-free snapshot from ``r`` MWMR registers via embedded-scan helping.

The Afek-et-al. [1] helping technique, adapted to multi-writer components:
every ``update(i, v)`` first performs an *embedded scan* and stores its
result (a full view of the object) alongside the value; a scanner that
observes the same process complete two updates during its own scan may
*borrow* that process's latest embedded view — that view was computed
entirely within the scanner's interval, so returning it is linearizable.

Register ``j`` holds ⊥ or ``(value, pid, seq, view)``.  Tag uniqueness
((pid, seq) pairs never repeat) rules out ABA, so:

* two identical consecutive collects certify quiescence → return directly;
* a changed register exposes the pid that moved; a pid seen moving twice
  has a borrowable view.

Each failed double collect implies some process moved, and after at most
``n`` distinct movers some pid must repeat, so a scan finishes within
``O(n)`` collects — wait-freedom, at the price of ``O(r)``-sized register
contents (the paper's "large registers" regime, cf. [13]).

Updates contain one embedded scan and one write, so they are wait-free too.
This is the substrate that preserves m-obstruction-freedom of Figures 3/4
for ``m ≥ 2`` at the register level (the non-blocking double collect only
guarantees it for ``m = 1``); benchmark E7 compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

from repro._types import BOT, Value, is_bot
from repro.errors import ProtocolViolation
from repro.memory.layout import BankSpec
from repro.memory.ops import Op, ReadOp, ScanOp, UpdateOp, WriteOp
from repro.runtime.frames import ImplContext, ObjectImplementation, Return

SCANNING, WRITING, DONE = "scanning", "writing", "done"


@dataclass(frozen=True)
class _Frame:
    """Shared frame for scans and updates (updates embed a scan).

    ``target`` is ``None`` for a plain scan, else ``(component, value)``.
    ``moved`` is the set of pids observed completing an update during this
    scan; a second observation of the same pid triggers borrowing.
    """

    seq: int
    target: Optional[Tuple[int, Value]]
    phase: str = SCANNING
    cursor: int = 0
    current: Tuple[Value, ...] = ()
    previous: Optional[Tuple[Value, ...]] = None
    moved: FrozenSet[int] = frozenset()
    view: Optional[Tuple[Value, ...]] = None


class WaitFreeSnapshot(ObjectImplementation):
    """Wait-free r-register snapshot with embedded-scan helping."""

    name = "wait-free-snapshot"

    def __init__(self, params) -> None:
        super().__init__(params)
        self.components = params["components"]

    def bank_specs(self, prefix: str) -> Tuple[BankSpec, ...]:
        return (BankSpec(name=f"{prefix}__regs", size=self.components),)

    def initial_persistent(self, ictx: ImplContext) -> int:
        return 0  # per-process sequence number

    # ------------------------------------------------------------------ #

    @staticmethod
    def _value_of(entry: Value) -> Value:
        return BOT if is_bot(entry) else entry[0]

    @staticmethod
    def _pid_of(entry: Value) -> Optional[int]:
        return None if is_bot(entry) else entry[1]

    @staticmethod
    def _view_of(entry: Value) -> Tuple[Value, ...]:
        return entry[3]

    def begin(self, ictx: ImplContext, persistent: int, op: Op) -> _Frame:
        if isinstance(op, UpdateOp):
            return _Frame(seq=persistent, target=(op.component, op.value))
        if isinstance(op, ScanOp):
            return _Frame(seq=persistent, target=None)
        raise ProtocolViolation(f"{self.name} supports update/scan, got {op!r}")

    def pending(self, ictx: ImplContext, state: _Frame):
        bank = ictx.banks[0]
        if state.phase == SCANNING:
            return ReadOp(bank, state.cursor)
        if state.phase == WRITING:
            component, value = state.target
            entry = (value, ictx.pid, state.seq + 1, state.view)
            return WriteOp(bank, component, entry)
        if state.phase == DONE:
            if state.target is None:
                return Return(response=state.view, persistent=state.seq)
            return Return(response=None, persistent=state.seq + 1)
        raise ProtocolViolation(f"unknown phase {state.phase!r}")

    def apply(self, ictx: ImplContext, state: _Frame, response: Value):
        if state.phase == WRITING:
            return replace(state, phase=DONE)
        if state.phase != SCANNING:
            raise ProtocolViolation(f"no transition from phase {state.phase!r}")

        current = state.current + (response,)
        if len(current) < self.components:
            return replace(state, cursor=state.cursor + 1, current=current)

        # A full collect is gathered.
        if state.previous is not None:
            if state.previous == current:
                view = tuple(self._value_of(e) for e in current)
                return self._finish_scan(state, view)
            borrowed = self._try_borrow(state, current)
            if borrowed is not None:
                moved_pid, view = borrowed
                return self._finish_scan(state, view)
            moved = state.moved | self._movers(state.previous, current)
            return replace(
                state, cursor=0, current=(), previous=current, moved=moved
            )
        return replace(state, cursor=0, current=(), previous=current)

    # ------------------------------------------------------------------ #

    def _movers(
        self, previous: Tuple[Value, ...], current: Tuple[Value, ...]
    ) -> FrozenSet[int]:
        moved = set()
        for old, new in zip(previous, current):
            if old != new and not is_bot(new):
                moved.add(self._pid_of(new))
        return frozenset(moved)

    def _try_borrow(self, state: _Frame, current: Tuple[Value, ...]):
        """A pid already in ``moved`` that moved again has a borrowable view."""
        for old, new in zip(state.previous, current):
            if old != new and not is_bot(new):
                pid = self._pid_of(new)
                if pid in state.moved:
                    return pid, self._view_of(new)
        return None

    def _finish_scan(self, state: _Frame, view: Tuple[Value, ...]) -> _Frame:
        if state.target is None:
            return replace(state, phase=DONE, view=view)
        # An update proceeds to its single write, carrying the view.
        return replace(state, phase=WRITING, view=view)
