"""Snapshot with ``r`` components from exactly ``n`` single-writer registers.

Theorem 7's accounting is ``min(n + 2m − k, n)`` registers: when the nominal
component count exceeds ``n``, the snapshot is implemented from ``n``
*single-writer* registers instead ([1] + the single-writer-to-multi-writer
folklore of Vitányi–Awerbuch [13], in the unbounded "large register"
regime).  This class realizes that route:

* register ``q`` is written only by process ``q`` (the SWMR discipline is
  asserted at runtime) and holds
  ``(seq_q, comps_q, view_q)`` where ``comps_q[i]`` is ``q``'s latest write
  to component ``i`` as a ``(lamport_ts, q, value)`` triple (or ⊥), and
  ``view_q`` is the embedded scan taken by ``q``'s latest update;
* the *current* value of component ``i`` is the value of the
  ``(ts, pid)``-maximal triple over all processes' ``comps``: Lamport
  timestamps with pid tie-break give multi-writer components a total write
  order;
* ``update(i, v)`` performs an embedded scan (which also yields the maximal
  timestamp for component ``i``), then writes its whole register once with
  ``ts = max_ts(i) + 1``;
* ``scan()`` double-collects the ``n`` registers; a register that changes
  identifies its (unique) writer, and a writer seen moving twice has a
  borrowable embedded view — the same helping argument as
  :mod:`repro.objects.waitfree`, so scans are wait-free.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

from repro._types import BOT, Value, is_bot
from repro.errors import ProtocolViolation
from repro.memory.layout import BankSpec
from repro.memory.ops import Op, ReadOp, ScanOp, UpdateOp, WriteOp
from repro.runtime.frames import ImplContext, ObjectImplementation, Return

SCANNING, WRITING, DONE = "scanning", "writing", "done"


@dataclass(frozen=True)
class _SwmrPersistent:
    """Per-process cross-operation state: seq and own component triples."""

    seq: int = 0
    comps: Tuple[Value, ...] = ()


@dataclass(frozen=True)
class _Frame:
    persistent: _SwmrPersistent
    target: Optional[Tuple[int, Value]]  # None for scan
    phase: str = SCANNING
    cursor: int = 0
    current: Tuple[Value, ...] = ()
    previous: Optional[Tuple[Value, ...]] = None
    moved: FrozenSet[int] = frozenset()
    view: Optional[Tuple[Value, ...]] = None
    max_ts: int = 0  # maximal timestamp seen for the target component


class SingleWriterSnapshot(ObjectImplementation):
    """r components from n SWMR registers; wait-free via helping."""

    name = "single-writer-snapshot"

    def __init__(self, params) -> None:
        super().__init__(params)
        self.components = params["components"]
        self.n = params["n"]

    def bank_specs(self, prefix: str) -> Tuple[BankSpec, ...]:
        return (BankSpec(name=f"{prefix}__swmr", size=self.n),)

    def initial_persistent(self, ictx: ImplContext) -> _SwmrPersistent:
        return _SwmrPersistent(seq=0, comps=(BOT,) * self.components)

    # ------------------------------------------------------------------ #
    # Resolution of collected registers into component values
    # ------------------------------------------------------------------ #

    def _resolve(self, collect: Tuple[Value, ...]) -> Tuple[Value, ...]:
        """Component values = (ts, pid)-maximal triples across registers."""
        values = []
        for i in range(self.components):
            best = None
            for entry in collect:
                if is_bot(entry):
                    continue
                triple = entry[1][i]
                if is_bot(triple):
                    continue
                if best is None or (triple[0], triple[1]) > (best[0], best[1]):
                    best = triple
            values.append(BOT if best is None else best[2])
        return tuple(values)

    def _component_max_ts(self, collect: Tuple[Value, ...], component: int) -> int:
        best = 0
        for entry in collect:
            if is_bot(entry):
                continue
            triple = entry[1][component]
            if not is_bot(triple):
                best = max(best, triple[0])
        return best

    # ------------------------------------------------------------------ #

    def begin(self, ictx: ImplContext, persistent: _SwmrPersistent, op: Op):
        if isinstance(op, UpdateOp):
            return _Frame(persistent=persistent, target=(op.component, op.value))
        if isinstance(op, ScanOp):
            return _Frame(persistent=persistent, target=None)
        raise ProtocolViolation(f"{self.name} supports update/scan, got {op!r}")

    def pending(self, ictx: ImplContext, state: _Frame):
        bank = ictx.banks[0]
        if state.phase == SCANNING:
            return ReadOp(bank, state.cursor)
        if state.phase == WRITING:
            component, value = state.target
            persistent = state.persistent
            triple = (state.max_ts + 1, ictx.pid, value)
            comps = (
                persistent.comps[:component]
                + (triple,)
                + persistent.comps[component + 1 :]
            )
            entry = (persistent.seq + 1, comps, state.view)
            return WriteOp(bank, ictx.pid, entry)
        if state.phase == DONE:
            if state.target is None:
                return Return(response=state.view, persistent=state.persistent)
            component, value = state.target
            persistent = state.persistent
            triple = (state.max_ts + 1, ictx.pid, value)
            comps = (
                persistent.comps[:component]
                + (triple,)
                + persistent.comps[component + 1 :]
            )
            return Return(
                response=None,
                persistent=_SwmrPersistent(seq=persistent.seq + 1, comps=comps),
            )
        raise ProtocolViolation(f"unknown phase {state.phase!r}")

    def apply(self, ictx: ImplContext, state: _Frame, response: Value):
        if state.phase == WRITING:
            return replace(state, phase=DONE)
        if state.phase != SCANNING:
            raise ProtocolViolation(f"no transition from phase {state.phase!r}")

        current = state.current + (response,)
        if len(current) < self.n:
            return replace(state, cursor=state.cursor + 1, current=current)

        if state.previous is not None:
            if state.previous == current:
                return self._finish_scan(state, current)
            borrowed = self._try_borrow(state, current)
            if borrowed is not None:
                return self._finish_borrowed(state, current, borrowed)
            moved = state.moved | self._movers(state.previous, current)
            return replace(
                state, cursor=0, current=(), previous=current, moved=moved
            )
        return replace(state, cursor=0, current=(), previous=current)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _movers(previous, current) -> FrozenSet[int]:
        return frozenset(
            q for q, (old, new) in enumerate(zip(previous, current)) if old != new
        )

    def _try_borrow(self, state: _Frame, current) -> Optional[Tuple[Value, ...]]:
        for q, (old, new) in enumerate(zip(state.previous, current)):
            if old != new and q in state.moved and not is_bot(new):
                return new[2]  # the mover's embedded view
        return None

    def _finish_scan(self, state: _Frame, collect) -> _Frame:
        view = self._resolve(collect)
        return self._complete(state, collect, view)

    def _finish_borrowed(self, state: _Frame, collect, view) -> _Frame:
        return self._complete(state, collect, view)

    def _complete(self, state: _Frame, collect, view) -> _Frame:
        if state.target is None:
            return replace(state, phase=DONE, view=view)
        component, _ = state.target
        max_ts = self._component_max_ts(collect, component)
        return replace(state, phase=WRITING, view=view, max_ts=max_ts)
