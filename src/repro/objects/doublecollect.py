"""Double-collect snapshot: ``r`` components from ``r`` registers, non-blocking.

The classic construction: each component lives in one MWMR register;

* ``update(i, v)`` is a single register write, tagging the value so that no
  register can ever hold the same content twice;
* ``scan()`` repeatedly *collects* (reads registers ``0..r−1`` one step at a
  time) until two consecutive collects are identical.  Unique tags rule out
  ABA, so identical collects certify that the memory was quiescent at some
  point in between — the scan linearizes there.

A scan retries only if an update was completed during it, so some operation
always completes: the implementation is non-blocking, but an individual
scanner can starve under perpetual writers.  That starvation is *the*
phenomenon Figure 5's second thread exists to mask, and the ablation
benchmark (E7) measures it.

Two taggings:

* :class:`DoubleCollectSnapshot` — tags ``(value, pid, seq)`` with a
  per-process sequence number: tags are globally unique, so the double
  collect argument is airtight.
* :class:`AnonymousDoubleCollectSnapshot` — anonymous processes cannot tag
  with identifiers; tags are ``(value, seq)`` with the per-process operation
  counter.  Two *distinct* processes at the same counter writing the same
  value produce colliding tags, so an adversary interleaving clones can in
  principle fool a double collect.  The full anonymous construction of
  Guerraoui–Ruppert [7] closes this with weak counters at the same register
  count; we document the approximation (DESIGN.md §2) and verify atomicity
  of actual runs with the linearizability checker instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from repro._types import BOT, Value, is_bot
from repro.errors import ProtocolViolation
from repro.memory.layout import BankSpec
from repro.memory.ops import Op, ReadOp, ScanOp, UpdateOp, WriteOp
from repro.runtime.frames import ImplContext, ObjectImplementation, Return


@dataclass(frozen=True)
class _UpdateFrame:
    """One write performs the whole update."""

    component: int
    value: Value
    seq: int
    written: bool = False


@dataclass(frozen=True)
class _ScanFrame:
    """Collect registers one read per step; retry until stable."""

    seq: int  # persistent sequence number, threaded through unchanged
    cursor: int = 0
    current: Tuple[Value, ...] = ()
    previous: Optional[Tuple[Value, ...]] = None


class DoubleCollectSnapshot(ObjectImplementation):
    """Non-blocking r-register snapshot with (pid, seq) tags."""

    name = "double-collect-snapshot"
    anonymous_tags = False

    def __init__(self, params) -> None:
        super().__init__(params)
        self.components = params["components"]

    def bank_specs(self, prefix: str) -> Tuple[BankSpec, ...]:
        return (BankSpec(name=f"{prefix}__regs", size=self.components),)

    def initial_persistent(self, ictx: ImplContext) -> int:
        return 0  # per-process sequence number

    # ------------------------------------------------------------------ #

    def _tag(self, ictx: ImplContext, value: Value, seq: int) -> Tuple:
        if self.anonymous_tags:
            return (value, seq)
        return (value, ictx.pid, seq)

    @staticmethod
    def _untag(entry: Value) -> Value:
        return BOT if is_bot(entry) else entry[0]

    def begin(self, ictx: ImplContext, persistent: int, op: Op) -> Any:
        if isinstance(op, UpdateOp):
            return _UpdateFrame(
                component=op.component, value=op.value, seq=persistent + 1
            )
        if isinstance(op, ScanOp):
            return _ScanFrame(seq=persistent)
        raise ProtocolViolation(f"{self.name} supports update/scan, got {op!r}")

    def pending(self, ictx: ImplContext, state: Any):
        bank = ictx.banks[0]
        if isinstance(state, _UpdateFrame):
            if state.written:
                return Return(response=None, persistent=state.seq)
            tag = self._tag(ictx, state.value, state.seq)
            return WriteOp(bank, state.component, tag)
        if isinstance(state, _ScanFrame):
            if state.cursor < self.components:
                return ReadOp(bank, state.cursor)
            # Full collect gathered; compare with the previous one.
            if state.previous is not None and state.previous == state.current:
                values = tuple(self._untag(e) for e in state.current)
                return Return(response=values, persistent=state.seq)
            raise ProtocolViolation(
                "scan frame polled in transient state"
            )  # pragma: no cover - pending/apply discipline prevents this
        raise ProtocolViolation(f"unknown frame state {state!r}")

    def apply(self, ictx: ImplContext, state: Any, response: Value):
        if isinstance(state, _UpdateFrame):
            return replace(state, written=True)
        if isinstance(state, _ScanFrame):
            current = state.current + (response,)
            if len(current) < self.components:
                return replace(state, cursor=state.cursor + 1, current=current)
            # Collect complete.
            if state.previous is not None and state.previous == current:
                # Stable: leave state so pending() returns the result.
                return replace(state, cursor=self.components, current=current)
            return _ScanFrame(seq=state.seq, cursor=0, current=(), previous=current)
        raise ProtocolViolation(f"unknown frame state {state!r}")


class AnonymousDoubleCollectSnapshot(DoubleCollectSnapshot):
    """Identifier-free tagging; see module docstring for the [7] note."""

    name = "anonymous-double-collect-snapshot"
    anonymous_tags = True
