"""Span-scoped statistical profiler: where the wall time actually went.

Spans say *that* ``explore.batch`` took 40% of the run; they cannot say
*which frames inside it* burned the time.  This module adds that second
axis without touching the per-step hot loop (the PR 5 constraint): a
daemon thread wakes every ``interval`` seconds, grabs the main thread's
current stack via ``sys._current_frames()`` — a single C-level dict read,
zero cost to the profiled code between samples — and attributes the
sample to the innermost open telemetry span by reading the active
session's open-span stack.  No ``sys.setprofile`` hook is ever installed,
so the interpreter runs at full speed and verdicts are bit-identical with
profiling on or off.

Output is the collapsed-stack ("folded") format flamegraph tooling eats::

    explore.batch;repro.explore.frontier:_expand_chunk_local;... 128

one line per distinct ``span;frame;frame...`` stack with its sample
count, root-first, sorted for stable diffs.  The first segment is the
span name (``(no span)`` outside any span), the rest are ``module:func``
frames with repro files rendered as dotted module paths.  ``repro
report`` renders the top-N table from ``profile.folded`` when present;
the profiler writes no events into the JSONL stream, so golden streams
are untouched.

Being statistical, counts are estimates: a frame with N samples at
interval ``i`` held the main thread for roughly ``N*i`` seconds.  The
profile is inherently volatile (it measures the host's clock), which is
why it lives in its own file and never in ``attrs``.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Default sampling period: 5ms ≈ 200Hz, coarse enough to be invisible,
#: fine enough to resolve batch-scale work.
DEFAULT_INTERVAL = 0.005

#: The span label for samples taken outside any open span.
NO_SPAN = "(no span)"


def frame_label(filename: str, funcname: str) -> str:
    """A stack frame as ``module:func``, with repro files dotted.

    ``.../src/repro/explore/frontier.py`` + ``_expand_one`` becomes
    ``repro.explore.frontier:_expand_one``; files outside the package
    keep their bare stem so stdlib frames stay short.
    """
    path = Path(filename)
    parts = path.with_suffix("").parts
    if "repro" in parts:
        module = ".".join(parts[parts.index("repro"):])
    else:
        module = path.stem
    return f"{module}:{funcname}"


class SpanProfiler:
    """Samples the main thread's stack, attributed to open span names.

    Usage::

        profiler = SpanProfiler()
        profiler.start()
        ...  # the run
        profiler.stop()
        profiler.write(run_dir / "profile.folded")

    ``start``/``stop`` are cheap and idempotent-safe in the intended
    one-shot lifecycle (the CLI dispatcher owns exactly one profiler per
    command).  The sampling thread is a daemon, so a crashed run never
    hangs on it.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        self.interval = interval
        self.samples: Dict[Tuple[str, ...], int] = {}
        self._target: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Begin sampling the calling thread from a background thread."""
        if self._thread is not None:
            return
        self._target = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampling thread and wait for it to exit."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def _span_label(self) -> str:
        from repro.telemetry import session

        active = session.active()
        if active is None:
            return NO_SPAN
        open_spans = active.open_spans()
        return open_spans[-1][1] if open_spans else NO_SPAN

    def _sample_once(self) -> None:
        frames = sys._current_frames()
        frame = frames.get(self._target) if self._target is not None else None
        if frame is None:
            return
        stack: List[str] = []
        while frame is not None:
            stack.append(
                frame_label(frame.f_code.co_filename, frame.f_code.co_name)
            )
            frame = frame.f_back
        stack.reverse()
        key = (self._span_label(), *stack)
        self.samples[key] = self.samples.get(key, 0) + 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample_once()

    def folded_lines(self) -> List[str]:
        """The collected samples as sorted collapsed-stack lines."""
        return [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.samples.items())
        ]

    def write(self, path) -> int:
        """Write ``profile.folded`` at *path*; returns the sample count."""
        lines = self.folded_lines()
        Path(path).write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
        )
        return sum(self.samples.values())


# ----------------------------------------------------------------- #
# Reading profiles back (the report side)
# ----------------------------------------------------------------- #


def read_folded(path) -> List[Tuple[Tuple[str, ...], int]]:
    """Parse a collapsed-stack file into ``(stack, count)`` pairs.

    Malformed lines (no count, non-integer count) are skipped rather
    than fatal, and a missing file reads as no samples — a profile is
    advisory, never load-bearing.
    """
    entries: List[Tuple[Tuple[str, ...], int]] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return entries
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_part, _, count_part = line.rpartition(" ")
        if not stack_part or not count_part.isdigit():
            continue
        entries.append((tuple(stack_part.split(";")), int(count_part)))
    return entries


def span_totals(
    entries: List[Tuple[Tuple[str, ...], int]]
) -> List[Tuple[str, int]]:
    """Cumulative samples per span name, heaviest first."""
    totals: Dict[str, int] = {}
    for stack, count in entries:
        totals[stack[0]] = totals.get(stack[0], 0) + count
    return sorted(totals.items(), key=lambda item: (-item[1], item[0]))


def top_frames(
    entries: List[Tuple[Tuple[str, ...], int]], limit: int = 12
) -> List[Tuple[str, str, int]]:
    """The hottest ``(span, leaf frame, self samples)`` rows.

    Self time goes to the leaf frame of each sampled stack — the frame
    that actually held the interpreter when the sample fired.
    """
    self_counts: Dict[Tuple[str, str], int] = {}
    for stack, count in entries:
        leaf = stack[-1] if len(stack) > 1 else "(unknown)"
        key = (stack[0], leaf)
        self_counts[key] = self_counts.get(key, 0) + count
    ranked = sorted(
        self_counts.items(), key=lambda item: (-item[1], item[0])
    )
    return [(span, frame, count) for (span, frame), count in ranked[:limit]]
