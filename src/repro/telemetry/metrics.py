"""The metrics registry: counters, gauges, histograms, and their merge.

Design constraints, in order:

* **Determinism** — metric *values* must be reproducible functions of the
  run's semantics wherever possible, because the JSONL export is pinned
  by golden-file tests (same seed ⇒ byte-identical stream modulo the
  normalized volatile section).  Every instrument therefore declares
  whether it is deterministic (``volatile=False``, the default: counts of
  semantic units — configurations, trials, journal records) or volatile
  (``volatile=True``: anything derived from wall clocks or the host —
  latencies, RSS).  Exports keep the two groups apart so normalization
  can strip the volatile side wholesale.

* **Fixed histogram buckets** — bucket bounds are part of the instrument's
  identity, chosen at creation and never adapted to the data, so two runs
  of the same workload bucket identically and their exports compare
  byte-for-byte.

* **Multiprocessing-safe aggregation by snapshot, not by sharing** — a
  registry is plain process-local state (no locks, no shared memory).
  Workers each populate their own registry and ship a picklable
  :class:`MetricsSnapshot` back with their results; the coordinator folds
  snapshots in at its deterministic merge point via
  :meth:`MetricsRegistry.merge`.  Counter and histogram merges are
  commutative sums, so worker count and scheduling cannot change the
  merged values; gauges are last-write-wins in merge order, which the
  exploration engine keeps deterministic by merging in submission order.

Zero dependencies; everything here is stdlib (plus the equally
stdlib-only :mod:`repro.telemetry.tracing` for the span record type that
snapshots carry across the pool boundary).
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.tracing import SpanRecord

Number = Union[int, float]

#: Default histogram bucket upper bounds for second-scale durations.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)

#: Default bucket bounds for unit counts (batch sizes, record counts).
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096
)


@dataclass
class Counter:
    """A monotonically increasing sum of non-negative increments."""

    name: str
    volatile: bool = False
    value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value; last write wins."""

    name: str
    volatile: bool = False
    value: Number = 0

    def set(self, value: Number) -> None:
        """Replace the gauge's value."""
        self.value = value


@dataclass
class Histogram:
    """Fixed-bound bucketed distribution: counts per bucket + sum + count.

    ``bounds`` are inclusive upper bounds; an observation larger than the
    last bound lands in the implicit overflow bucket.  Bounds are frozen
    at creation so the export shape is a pure function of the instrument,
    never of the data.
    """

    name: str
    bounds: Tuple[float, ...]
    volatile: bool = False
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError(f"histogram {self.name}: empty bucket bounds")
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(
                f"histogram {self.name}: bounds must be sorted, "
                f"got {self.bounds}"
            )
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """A picklable, mergeable copy of one registry's state.

    The unit that crosses the ``multiprocessing`` pool boundary: workers
    snapshot their local registry and the coordinator folds the snapshots
    into its own via :meth:`MetricsRegistry.merge`.

    ``spans`` piggybacks the worker's finished
    :class:`~repro.telemetry.tracing.SpanRecord` tuples on the same ride:
    the snapshot is already merged at exactly the deterministic point
    where a batch is *accepted*, so spans inherit the engine's atomic
    discard for free — a rebuilt or retried batch drops its partial
    snapshot, spans included, and never double-counts durations.
    """

    counters: Tuple[Tuple[str, bool, Number], ...]
    gauges: Tuple[Tuple[str, bool, Number], ...]
    histograms: Tuple[Tuple[str, bool, Tuple[float, ...],
                            Tuple[int, ...], float, int], ...]
    spans: Tuple[SpanRecord, ...] = ()

    @property
    def empty(self) -> bool:
        """True when the snapshot carries no instruments and no spans."""
        return not (self.counters or self.gauges or self.histograms
                    or self.spans)


class MetricsRegistry:
    """Process-local instrument store with get-or-create accessors.

    Instruments are identified by name; asking twice for the same name
    returns the same object, and asking with conflicting metadata
    (volatility, bucket bounds) raises — silent skew between two call
    sites would corrupt the export's determinism contract.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- #
    # Get-or-create accessors
    # ------------------------------------------------------------- #

    def counter(self, name: str, *, volatile: bool = False) -> Counter:
        """The counter *name*, created on first use."""
        existing = self._counters.get(name)
        if existing is not None:
            if existing.volatile != volatile:
                raise ValueError(
                    f"counter {name}: volatility skew across call sites"
                )
            return existing
        made = Counter(name=name, volatile=volatile)
        self._counters[name] = made
        return made

    def gauge(self, name: str, *, volatile: bool = False) -> Gauge:
        """The gauge *name*, created on first use."""
        existing = self._gauges.get(name)
        if existing is not None:
            if existing.volatile != volatile:
                raise ValueError(
                    f"gauge {name}: volatility skew across call sites"
                )
            return existing
        made = Gauge(name=name, volatile=volatile)
        self._gauges[name] = made
        return made

    def histogram(
        self,
        name: str,
        *,
        bounds: Sequence[float] = SECONDS_BUCKETS,
        volatile: bool = False,
    ) -> Histogram:
        """The histogram *name*, created on first use with *bounds*."""
        existing = self._histograms.get(name)
        if existing is not None:
            if existing.volatile != volatile or existing.bounds != tuple(bounds):
                raise ValueError(
                    f"histogram {name}: bounds/volatility skew across call sites"
                )
            return existing
        made = Histogram(name=name, bounds=tuple(bounds), volatile=volatile)
        self._histograms[name] = made
        return made

    # ------------------------------------------------------------- #
    # Snapshot / merge — the multiprocessing aggregation protocol
    # ------------------------------------------------------------- #

    def snapshot(self, spans: Sequence[SpanRecord] = ()) -> MetricsSnapshot:
        """A picklable copy of the current state, sorted by name.

        *spans* rides along untouched — the registry holds no span state
        of its own; workers pass the records they measured and the
        coordinating session re-emits them as events after the merge.
        """
        return MetricsSnapshot(
            spans=tuple(spans),
            counters=tuple(
                (c.name, c.volatile, c.value)
                for c in sorted(self._counters.values(), key=lambda c: c.name)
            ),
            gauges=tuple(
                (g.name, g.volatile, g.value)
                for g in sorted(self._gauges.values(), key=lambda g: g.name)
            ),
            histograms=tuple(
                (h.name, h.volatile, h.bounds, tuple(h.counts), h.total, h.count)
                for h in sorted(self._histograms.values(), key=lambda h: h.name)
            ),
        )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold one snapshot in: counters/histograms add, gauges overwrite.

        Counter and histogram merges are commutative, so any merge order
        yields the same sums; gauge merges are last-write-wins, which the
        caller keeps deterministic by merging in a deterministic order
        (the exploration engine merges in batch-submission order).

        ``snapshot.spans`` is deliberately not folded here: the registry
        keeps no span state.  The session-level merge helper re-emits the
        records as events; a bare registry merge simply ignores them.
        """
        for name, volatile, value in snapshot.counters:
            self.counter(name, volatile=volatile).inc(value)
        for name, volatile, value in snapshot.gauges:
            self.gauge(name, volatile=volatile).set(value)
        for name, volatile, bounds, counts, total, count in snapshot.histograms:
            histogram = self.histogram(name, bounds=bounds, volatile=volatile)
            for index, bucket in enumerate(counts):
                histogram.counts[index] += bucket
            histogram.total += total
            histogram.count += count

    def reset(self) -> None:
        """Drop every instrument (worker per-chunk reuse, test isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------- #
    # Export
    # ------------------------------------------------------------- #

    def export(self) -> Tuple[Dict, Dict]:
        """The registry as ``(deterministic, volatile)`` JSON-ready dicts.

        Each side maps kind -> name -> value (counters and gauges) or
        kind -> name -> ``{bounds, counts, total, count}`` (histograms),
        with names sorted so the serialization is stable.
        """
        deterministic: Dict = {"counters": {}, "gauges": {}, "histograms": {}}
        volatile: Dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._counters):
            counter = self._counters[name]
            side = volatile if counter.volatile else deterministic
            side["counters"][name] = counter.value
        for name in sorted(self._gauges):
            gauge = self._gauges[name]
            side = volatile if gauge.volatile else deterministic
            side["gauges"][name] = gauge.value
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            side = volatile if histogram.volatile else deterministic
            side["histograms"][name] = {
                "bounds": list(histogram.bounds),
                "counts": list(histogram.counts),
                "total": histogram.total,
                "count": histogram.count,
            }
        return deterministic, volatile

    def value(self, kind: str, name: str) -> Optional[Number]:
        """Convenience read: the current value of a counter or gauge."""
        if kind == "counter":
            counter = self._counters.get(name)
            return None if counter is None else counter.value
        if kind == "gauge":
            gauge = self._gauges.get(name)
            return None if gauge is None else gauge.value
        raise ValueError(f"unknown instrument kind {kind!r}")


# ----------------------------------------------------------------- #
# Prometheus text exposition
# ----------------------------------------------------------------- #

#: What a legal Prometheus sample line looks like (name, optional labels,
#: numeric value).  Used by :func:`validate_exposition`.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+-]+(?:[0-9])?$"
)


def prometheus_name(name: str, suffix: str = "") -> str:
    """A dotted instrument name as a legal Prometheus metric name.

    Dots and any other illegal characters become underscores, and every
    metric is namespaced under ``repro_`` so a shared scrape target can't
    collide with other exporters.  Counters conventionally pass
    ``suffix="_total"``.
    """
    body = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    return f"repro_{body}{suffix}"


def render_exposition(
    counters: Dict[str, Number],
    gauges: Dict[str, Number],
    histograms: Optional[Dict[str, Dict]] = None,
) -> str:
    """Render instrument values as Prometheus text exposition format.

    Input dicts map dotted instrument names to values (histograms to
    their ``{bounds, counts, total, count}`` export shape).  Output is
    the ``text/plain; version=0.0.4`` format: a ``# TYPE`` line per
    family, counters suffixed ``_total``, histograms expanded to
    cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
    Families are sorted by source name so the scrape is stable.
    """
    lines: List[str] = []
    for name in sorted(counters):
        metric = prometheus_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")
    for name in sorted(gauges):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauges[name]}")
    for name in sorted(histograms or {}):
        export = (histograms or {})[name]
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, bucket in zip(export["bounds"], export["counts"]):
            cumulative += bucket
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += export["counts"][len(export["bounds"])]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {export['total']}")
        lines.append(f"{metric}_count {export['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def validate_exposition(text: str) -> List[str]:
    """Lint a text exposition; returns problems (empty list = parses).

    Checks the subset of the format we emit: every non-comment line must
    be a well-formed sample, every sample's family must have been
    declared by a preceding ``# TYPE`` line, and counter samples must end
    in ``_total``.  CI's smoke jobs call this instead of shipping a real
    Prometheus parser into the container.
    """
    problems: List[str] = []
    declared: Dict[str, str] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                declared[parts[2]] = parts[3]
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {line_no}: malformed sample {line!r}")
            continue
        sample = line.split("{")[0].split()[0]
        family = next(
            (name for name in declared
             if sample == name or sample.startswith(name + "_")),
            None,
        )
        if family is None:
            problems.append(f"line {line_no}: sample {sample!r} has no # TYPE")
        elif declared[family] == "counter" and not sample.endswith("_total"):
            problems.append(
                f"line {line_no}: counter sample {sample!r} missing _total"
            )
    if not declared and not problems:
        problems.append("exposition is empty")
    return problems
