"""The telemetry session: the process-wide pipeline events flow through.

One :class:`TelemetrySession` is active per process at most (module-global,
like the watchdog registry in :mod:`repro.durable.watchdog`): the CLI opens
it around a command, instrumented subsystems reach it through the no-op-safe
module helpers (:func:`span`, :func:`counter`, :func:`gauge`,
:func:`observe`, :func:`merge`), and sinks (:mod:`repro.telemetry.sinks`)
receive every emitted event.

The cost model is the load-bearing part: with no session active every
helper is one module-global read and an early return, so instrumentation
can stay permanently in place on batch/trial/journal boundaries without
perturbing un-telemetered runs.  Nothing here is ever called from the
per-step hot loop — call sites are batch boundaries, campaign trials,
journal operations, and whole executions.

Events are dicts of a fixed shape (see :mod:`repro.telemetry.schema`)::

    {"seq": 7, "type": "span", "name": "explore.batch",
     "attrs": {...deterministic...}, "vol": {...wall-clock-derived...}}

Everything derived from a wall clock or the host (timestamps, durations,
RSS) lives under ``"vol"``; everything under ``"attrs"`` must be a
deterministic function of the run's semantics.  That split is what lets
the golden-file tests assert byte-identical streams after normalizing
``vol`` away.

Worker processes forked by the exploration pool must not inherit the
coordinator's session (their writes would interleave into its sinks);
:func:`reset` drops it, mirroring ``reset_active_watchdogs``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    SECONDS_BUCKETS,
)
from repro.telemetry.tracing import MAIN_LANE, SpanRecord, derive_trace_id

#: The session currently active in this process, if any.
_ACTIVE: Optional["TelemetrySession"] = None

#: Telemetry modes accepted by the CLI's ``--telemetry`` flag.
MODES = ("off", "live", "jsonl")


class TelemetrySession:
    """One run's telemetry pipeline: registry + sequenced event fan-out.

    Constructed via :func:`start` (which also installs it as the active
    session) and closed exactly once via :meth:`close`, which emits the
    final ``metrics`` and ``run_end`` events and releases the sinks.
    """

    def __init__(
        self,
        *,
        command: str,
        mode: str,
        sinks: Sequence[object],
        attrs: Optional[Dict] = None,
    ) -> None:
        self.command = command
        self.mode = mode
        self.registry = MetricsRegistry()
        self.sinks: List[object] = list(sinks)
        self.started = time.perf_counter()
        self.epoch = time.time()
        self.trace_id = derive_trace_id(command, attrs)
        self.closed = False
        self._seq = 0
        self._span_count = 0
        self._open_spans: List[Tuple[str, str]] = []
        run_attrs = dict(attrs or {})
        run_attrs["trace"] = self.trace_id
        self.emit(
            "run_start",
            command,
            attrs=run_attrs,
            vol={"ts": self.elapsed(), "epoch": self.epoch,
                 "pid": os.getpid()},
        )

    def elapsed(self) -> float:
        """Seconds since the session opened (volatile by definition)."""
        return time.perf_counter() - self.started

    def next_span_id(self) -> str:
        """Allocate the next main-lane span id (``main:<n>``, open order).

        Deterministic because spans on the coordinator open in program
        order; worker lanes never call this — their ids are pure
        functions of work coordinates (see :mod:`repro.telemetry.tracing`).
        """
        span_id = f"{MAIN_LANE}:{self._span_count}"
        self._span_count += 1
        return span_id

    def current_span_id(self) -> Optional[str]:
        """The innermost open main-lane span's id, or ``None`` at top level."""
        return self._open_spans[-1][0] if self._open_spans else None

    def open_spans(self) -> Tuple[Tuple[str, str], ...]:
        """The open-span stack as ``(span_id, name)`` pairs, root first.

        Returns a copy so the sampling profiler can read it from its own
        thread without holding a reference into live session state.
        """
        return tuple(self._open_spans)

    def emit_span_record(self, record: SpanRecord) -> None:
        """Re-emit a worker-measured span as an ordinary ``span`` event.

        The record's deterministic identity (span id, lane, parent,
        attrs) goes under ``attrs``; its clock and host facts (absolute
        start converted to a session-relative offset, duration, worker
        pid) go under ``vol`` where normalization strips them.
        """
        attrs = dict(record.attrs)
        attrs["span"] = record.span_id
        attrs["lane"] = record.lane
        if record.parent is not None:
            attrs["parent"] = record.parent
        self.emit(
            "span",
            record.name,
            attrs=attrs,
            vol={"ts": max(0.0, record.t0 - self.epoch),
                 "dur": record.dur, "pid": record.pid},
        )

    def emit(
        self,
        type_: str,
        name: str,
        *,
        attrs: Optional[Dict] = None,
        vol: Optional[Dict] = None,
    ) -> Dict:
        """Build, sequence, and fan one event out to every sink."""
        event = {
            "seq": self._seq,
            "type": type_,
            "name": name,
            "attrs": attrs or {},
            "vol": vol or {},
        }
        self._seq += 1
        for sink in self.sinks:
            sink.emit(event)
        return event

    def close(self, *, exit_code: Optional[int] = None,
              verdict: Optional[str] = None) -> None:
        """Emit the final ``metrics`` + ``run_end`` events, close the sinks.

        Idempotent: a second close is a no-op, so error paths can close
        defensively without double-emitting.
        """
        if self.closed:
            return
        self.closed = True
        deterministic, volatile = self.registry.export()
        self.emit("metrics", "metrics", attrs=deterministic, vol=volatile)
        self.emit(
            "run_end",
            self.command,
            attrs={"exit_code": exit_code, "verdict": verdict},
            vol={"ts": self.elapsed()},
        )
        for sink in self.sinks:
            sink.close()
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None


class _Span:
    """A live span: measures wall duration, emits one event on exit.

    On entry it allocates its deterministic main-lane ``span_id``,
    records the innermost open span as ``parent``, and pushes itself on
    the session's open-span stack (which is also what the sampling
    profiler and cross-process dispatchers read to attribute work).
    """

    __slots__ = ("_session", "name", "attrs", "_t0", "span_id", "parent")

    def __init__(self, session: TelemetrySession, name: str, attrs: Dict) -> None:
        self._session = session
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self.span_id: Optional[str] = None
        self.parent: Optional[str] = None

    def set(self, **attrs) -> None:
        """Attach deterministic attributes before the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._t0 = self._session.elapsed()
        self.span_id = self._session.next_span_id()
        self.parent = self._session.current_span_id()
        self._session._open_spans.append((self.span_id, self.name))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = self._session._open_spans
        if stack and stack[-1][0] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        attrs = dict(self.attrs)
        attrs["span"] = self.span_id
        attrs["lane"] = MAIN_LANE
        if self.parent is not None:
            attrs["parent"] = self.parent
        self._session.emit(
            "span",
            self.name,
            attrs=attrs,
            vol={"ts": self._t0, "dur": self._session.elapsed() - self._t0},
        )
        return False


class _NullSpan:
    """The span returned when no session is active: pure no-op."""

    __slots__ = ()

    #: Mirrors :class:`_Span` identity fields so dispatchers can read
    #: ``span.span_id`` unconditionally; always ``None`` when inactive.
    span_id: Optional[str] = None
    parent: Optional[str] = None

    def set(self, **attrs) -> None:
        """No-op (matches :meth:`_Span.set`)."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


# ----------------------------------------------------------------- #
# Module-level pipeline: the API instrumented subsystems call
# ----------------------------------------------------------------- #


def active() -> Optional[TelemetrySession]:
    """The active session, or ``None`` (telemetry off)."""
    return _ACTIVE


def start(
    *,
    command: str,
    mode: str,
    sinks: Sequence[object],
    attrs: Optional[Dict] = None,
) -> TelemetrySession:
    """Open a session and install it as the process's active pipeline."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            f"a telemetry session ({_ACTIVE.command}) is already active"
        )
    if mode not in MODES or mode == "off":
        raise ValueError(f"cannot start a session with mode {mode!r}")
    _ACTIVE = TelemetrySession(
        command=command, mode=mode, sinks=sinks, attrs=attrs
    )
    return _ACTIVE


def reset() -> None:
    """Drop the active session without closing it.

    For forked pool workers (which must not write into the coordinator's
    sinks) and test isolation — mirrors
    :func:`repro.durable.watchdog.reset_active_watchdogs`.
    """
    global _ACTIVE
    # The fork-divergence remedy itself: pool initializers call this so
    # forked children never write into the coordinator's sinks.
    _ACTIVE = None  # repro: allow(CONC001)


def span(name: str, **attrs):
    """A context manager timing one unit of work; no-op when inactive."""
    session = _ACTIVE
    if session is None:
        return _NULL_SPAN
    return _Span(session, name, attrs)


def mark(name: str, **attrs) -> None:
    """Emit one instantaneous event; no-op when inactive."""
    session = _ACTIVE
    if session is None:
        return
    session.emit("mark", name, attrs=attrs, vol={"ts": session.elapsed()})


def counter(name: str, amount: float = 1, *, volatile: bool = False) -> None:
    """Increment a counter on the active registry; no-op when inactive."""
    session = _ACTIVE
    if session is None:
        return
    session.registry.counter(name, volatile=volatile).inc(amount)


def gauge(name: str, value: float, *, volatile: bool = False) -> None:
    """Set a gauge on the active registry; no-op when inactive."""
    session = _ACTIVE
    if session is None:
        return
    session.registry.gauge(name, volatile=volatile).set(value)


def observe(
    name: str,
    value: float,
    *,
    bounds: Sequence[float] = SECONDS_BUCKETS,
    volatile: bool = False,
) -> None:
    """Record a histogram observation; no-op when inactive."""
    session = _ACTIVE
    if session is None:
        return
    session.registry.histogram(
        name, bounds=bounds, volatile=volatile
    ).observe(value)


def merge(snapshot: Optional[MetricsSnapshot]) -> None:
    """Fold a worker's :class:`MetricsSnapshot` in; no-op when inactive.

    Callers are responsible for merging in a deterministic order (the
    exploration engine merges chunk snapshots in submission order).
    Span records riding on the snapshot are re-emitted as events here,
    in the order the worker recorded them — the merge point is the
    deterministic stitch point for cross-process spans.
    """
    session = _ACTIVE
    if session is None or snapshot is None or snapshot.empty:
        return
    session.registry.merge(snapshot)
    for record in snapshot.spans:
        session.emit_span_record(record)


def emit_span(record: Optional[SpanRecord]) -> None:
    """Re-emit one worker-measured span record; no-op when inactive.

    For dispatchers whose worker results travel outside the snapshot
    protocol — the serve supervisor strips the record off the verdict
    payload (keeping fingerprints identical to untraced runs) and hands
    it here.
    """
    session = _ACTIVE
    if session is None or record is None:
        return
    session.emit_span_record(record)
