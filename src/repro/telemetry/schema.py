"""Schema and normalization for the telemetry event stream.

The JSONL stream is a public, machine-readable artifact (CI validates it,
``repro report`` renders it, golden tests pin it), so its shape is
versioned and checkable without any third-party schema library:

* :func:`validate_stream` / :func:`validate_lines` — structural check of
  a whole stream: every line parses, carries exactly the five event keys,
  sequences contiguously from 0, starts with ``run_start``, ends with
  ``run_end``, and keeps deterministic payloads out of ``vol`` (and
  vice-versa nothing but JSON scalars/objects inside either).
* :func:`normalize_line` / :func:`normalize_lines` — the golden-file
  projection: parse, replace the volatile section with ``{}``, re-dump
  canonically.  Two runs of the same seeded workload must normalize to
  byte-identical text; everything wall-clock- or host-derived therefore
  belongs in ``vol`` by construction.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

#: Bumped when the event shape changes; stamped into ``run_start.attrs``.
#: v2: span events carry deterministic trace identity (``span`` / ``lane``
#: in attrs, ``parent`` when nested) and ``run_start.attrs`` carries the
#: run's ``trace`` id.
SCHEMA_VERSION = 2

#: The exact key set of every event.
EVENT_KEYS = ("seq", "type", "name", "attrs", "vol")

#: Every event type the stream may contain.
EVENT_TYPES = ("run_start", "span", "mark", "metrics", "run_end")


def _check_event(event: Dict, problems: List[str], line_no: int) -> None:
    prefix = f"line {line_no}"
    if sorted(event.keys()) != sorted(EVENT_KEYS):
        problems.append(
            f"{prefix}: keys {sorted(event.keys())} != {sorted(EVENT_KEYS)}"
        )
        return
    if not isinstance(event["seq"], int):
        problems.append(f"{prefix}: seq is not an int")
    if event["type"] not in EVENT_TYPES:
        problems.append(f"{prefix}: unknown event type {event['type']!r}")
    if not isinstance(event["name"], str) or not event["name"]:
        problems.append(f"{prefix}: name must be a non-empty string")
    for section in ("attrs", "vol"):
        if not isinstance(event[section], dict):
            problems.append(f"{prefix}: {section} is not an object")
    if event["type"] == "metrics" and isinstance(event["attrs"], dict):
        for group in ("counters", "gauges", "histograms"):
            if group not in event["attrs"]:
                problems.append(f"{prefix}: metrics.attrs missing {group!r}")
    if event["type"] == "span" and isinstance(event["attrs"], dict):
        for key in ("span", "lane"):
            value = event["attrs"].get(key)
            if not isinstance(value, str) or not value:
                problems.append(
                    f"{prefix}: span.attrs.{key} must be a non-empty string "
                    "(trace identity is part of the v2 schema)"
                )


def validate_lines(lines: Iterable[str]) -> List[str]:
    """Structural problems in an event stream ([] means schema-valid)."""
    problems: List[str] = []
    events: List[Tuple[int, Dict]] = []
    for line_no, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except json.JSONDecodeError as exc:
            problems.append(f"line {line_no}: not JSON ({exc.msg})")
            continue
        if not isinstance(event, dict):
            problems.append(f"line {line_no}: not a JSON object")
            continue
        _check_event(event, problems, line_no)
        events.append((line_no, event))
    if not events:
        problems.append("stream is empty")
        return problems
    for position, (line_no, event) in enumerate(events):
        seq = event.get("seq")
        if isinstance(seq, int) and seq != position:
            problems.append(
                f"line {line_no}: seq {seq} != expected {position} "
                "(stream must sequence contiguously from 0)"
            )
    first, last = events[0][1], events[-1][1]
    if first.get("type") != "run_start":
        problems.append("stream does not start with run_start")
    elif first.get("attrs", {}).get("schema") != SCHEMA_VERSION:
        problems.append(
            f"run_start.attrs.schema != {SCHEMA_VERSION} "
            "(missing or version-skewed stream)"
        )
    if last.get("type") != "run_end":
        problems.append(
            "stream does not end with run_end (interrupted or truncated run)"
        )
    return problems


def validate_stream(path) -> List[str]:
    """Validate the ``events.jsonl`` at *path* (file or run directory)."""
    events_path = _events_path(path)
    if not events_path.exists():
        return [f"no event stream at {events_path}"]
    with open(events_path, "r", encoding="utf-8") as handle:
        return validate_lines(handle)


def normalize_line(raw: str) -> str:
    """One event line with its volatile section blanked, re-dumped canonically."""
    event = json.loads(raw)
    event["vol"] = {}
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def normalize_lines(lines: Iterable[str]) -> str:
    """A whole stream normalized for golden-file comparison."""
    normalized = [
        normalize_line(raw) for raw in (line.strip() for line in lines) if raw
    ]
    return "\n".join(normalized) + "\n"


def normalized_stream(path) -> str:
    """The normalized text of the stream at *path* (file or run directory)."""
    with open(_events_path(path), "r", encoding="utf-8") as handle:
        return normalize_lines(handle)


def _events_path(path) -> Path:
    """Resolve a run directory or direct file path to its events.jsonl."""
    from repro.telemetry.sinks import EVENTS_FILE

    candidate = Path(path)
    if candidate.is_dir():
        return candidate / EVENTS_FILE
    return candidate
