"""The shared heartbeat: one RSS poll feeding watchdogs and renderers.

Before telemetry existed, the RSS ceiling watchdog read ``/proc`` on every
poll and any progress display would have had to read it again.  This module
makes the measurement a single shared, throttled sample:

* :func:`rss_mb` returns the cached resident-set size, re-reading the OS
  only when the cache is older than ``max_age`` seconds;
* :func:`publish` pushes the heartbeat into the active telemetry session
  as the volatile gauges ``heartbeat.rss_mb`` / ``heartbeat.elapsed_s``,
  so the live renderer and the run report read the same numbers the
  watchdog acted on — instead of re-polling.

:class:`repro.durable.watchdog.Watchdog` calls both from ``poll()``; the
live sink only ever *reads* (with ``max_age`` relaxed) so an idle display
cannot turn into a /proc polling loop of its own.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.durable.watchdog import current_rss_mb

#: Default cache lifetime: well under the watchdog's poll cadence, well
#: over the cost of a /proc read.
DEFAULT_MAX_AGE = 0.5

_sampled_at: Optional[float] = None
_sampled_rss: float = 0.0


def rss_mb(max_age: float = DEFAULT_MAX_AGE) -> float:
    """This process's RSS in MiB, via the shared throttled cache."""
    global _sampled_at, _sampled_rss
    now = time.monotonic()
    if _sampled_at is None or now - _sampled_at > max_age:
        # Per-process throttle cache holding this process's own RSS;
        # divergence across workers is the point, and forked children
        # invalidate the inherited sample via reset() at pool init.
        _sampled_rss = current_rss_mb()  # repro: allow(CONC001)
        _sampled_at = now  # repro: allow(CONC001)
    return _sampled_rss


def publish(elapsed_s: Optional[float] = None,
            max_age: float = DEFAULT_MAX_AGE) -> float:
    """Sample the heartbeat and publish it as volatile gauges.

    Returns the RSS sample so callers (the watchdog) can act on the same
    number they published.  No-ops the gauge half when telemetry is off.
    """
    from repro.telemetry import session

    sample = rss_mb(max_age)
    session.gauge("heartbeat.rss_mb", sample, volatile=True)
    if elapsed_s is not None:
        session.gauge("heartbeat.elapsed_s", elapsed_s, volatile=True)
    return sample


def reset() -> None:
    """Invalidate the cache (test isolation, forked children)."""
    global _sampled_at, _sampled_rss
    # The fork-divergence remedy itself: pool initializers call this so
    # children drop the coordinator's inherited sample.
    _sampled_at = None  # repro: allow(CONC001)
    _sampled_rss = 0.0  # repro: allow(CONC001)
