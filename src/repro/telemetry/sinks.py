"""Event sinks: the JSONL stream, the Chrome trace, the live renderer.

A sink is anything with ``emit(event: dict)`` and ``close()``.  The
session fans every event to every sink; sinks never filter the registry —
metrics arrive as the final ``metrics`` event.

* :class:`JsonlSink` — the machine-readable record: one JSON object per
  line in ``<dir>/events.jsonl`` (sorted keys, compact separators, so the
  byte stream is a pure function of the event sequence), plus a Chrome
  trace (``<dir>/trace.json``, load it in ``chrome://tracing`` or
  Perfetto) derived from the span events at close.  Since schema v2 the
  trace is multi-lane: each trace *lane* (coordinator, pool slot, serve
  job) renders as its own process track under a synthetic deterministic
  pid, and cross-lane parent/child links render as flow arrows — the
  fork is no longer an opaque box.
* :class:`LiveSink` — the human-readable window: a single self-updating
  status line on a TTY, degrading to plain rate-limited log lines when
  stderr is a pipe (CI logs stay readable, no ``\\r`` garbage).  The
  paint mechanics live in :class:`StatusLine` so ``repro top`` (the serve
  daemon operator view) can reuse them without being a sink.

Neither sink is ever on the step-path: they see one event per batch /
trial / journal operation, by construction of the call sites.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, TextIO

#: File names inside a telemetry run directory.
EVENTS_FILE = "events.jsonl"
TRACE_FILE = "trace.json"
PROFILE_FILE = "profile.folded"

#: Minimum seconds between repaints (TTY) / log lines (pipe).
TTY_REFRESH = 0.1
PIPE_REFRESH = 2.0


def dump_event(event: Dict) -> str:
    """One event as its canonical JSONL line (sorted keys, compact)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def render_chrome_trace(spans: List[Dict], trace_id: str = "") -> Dict:
    """Span events as one multi-lane Chrome/Perfetto trace object.

    Lanes become process tracks: each distinct ``attrs.lane`` is assigned
    a synthetic pid in first-appearance order (deterministic because the
    event sequence is), named via a ``process_name`` metadata record —
    real OS pids are host accidents and stay in the JSONL ``vol``
    section.  Spans whose ``attrs.parent`` lives on a *different* lane
    get a flow arrow (``ph: s``/``f``) from the parent's lane to the
    span's start, which is what draws the causal edge across the fork.
    Same-lane nesting needs no arrows — Chrome infers it from slice
    containment.
    """
    lane_pids: Dict[str, int] = {"main": 0}
    span_lane: Dict[str, str] = {}
    for event in spans:
        lane = event["attrs"].get("lane", "main")
        if lane not in lane_pids:
            lane_pids[lane] = len(lane_pids)
        span_id = event["attrs"].get("span")
        if span_id:
            span_lane[span_id] = lane
    records: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": lane},
        }
        for lane, pid in lane_pids.items()
    ]
    flow_id = 0
    for event in spans:
        lane = event["attrs"].get("lane", "main")
        ts = round(event["vol"].get("ts", 0.0) * 1e6, 3)
        records.append(
            {
                "name": event["name"],
                "ph": "X",
                "pid": lane_pids[lane],
                "tid": 0,
                "ts": ts,
                "dur": round(event["vol"].get("dur", 0.0) * 1e6, 3),
                "args": event["attrs"],
            }
        )
        parent = event["attrs"].get("parent")
        parent_lane = span_lane.get(parent) if parent else None
        if parent_lane is not None and parent_lane != lane:
            arrow = {"name": "causal", "cat": "trace", "id": flow_id, "tid": 0}
            records.append(
                {**arrow, "ph": "s", "pid": lane_pids[parent_lane], "ts": ts}
            )
            records.append(
                {**arrow, "ph": "f", "bp": "e", "pid": lane_pids[lane],
                 "ts": ts}
            )
            flow_id += 1
    return {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": {"trace": trace_id},
    }


class JsonlSink:
    """Append events to ``events.jsonl``; derive ``trace.json`` at close."""

    def __init__(self, directory: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handle: TextIO = open(
            self.directory / EVENTS_FILE, "w", encoding="utf-8"
        )
        self._spans: List[Dict] = []
        self._trace_id = ""

    def emit(self, event: Dict) -> None:
        """Write one event line; remember spans for the Chrome trace."""
        self._handle.write(dump_event(event) + "\n")
        self._handle.flush()
        if event["type"] == "run_start":
            self._trace_id = event["attrs"].get("trace", "")
        if event["type"] == "span":
            self._spans.append(event)

    def close(self) -> None:
        """Close the stream and write the Chrome-trace rendition."""
        self._handle.close()
        trace = render_chrome_trace(self._spans, self._trace_id)
        (self.directory / TRACE_FILE).write_text(
            json.dumps(trace, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )


class StatusLine:
    """One self-repainting terminal line; plain log lines on a pipe.

    The paint mechanics shared by :class:`LiveSink` and ``repro top``:
    TTY detection, rate limiting, ``\\r``-clear repaints, and a clean
    final line.  Callers check :meth:`due` before doing any formatting
    work, then :meth:`paint` unconditionally.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self.refresh = TTY_REFRESH if self.tty else PIPE_REFRESH
        self._last_paint = 0.0
        self._painted = False

    def due(self) -> bool:
        """True when enough time has passed for another repaint."""
        return time.monotonic() - self._last_paint >= self.refresh

    def paint(self, line: str, *, final: bool = False) -> None:
        """Repaint the status line (or append it, on a pipe)."""
        self._last_paint = time.monotonic()
        if self.tty:
            self.stream.write("\r\x1b[2K" + line)
            if final:
                self.stream.write("\n")
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._painted = True

    def close(self) -> None:
        """Terminate the status line cleanly on a TTY."""
        if self.tty and self._painted:
            self.stream.write("\r\x1b[2K")
            self.stream.flush()


class LiveSink:
    """Progress renderer: rate / ETA / heartbeat, repainted per event.

    Reads the session's registry (installed via :meth:`attach`) for the
    generic progress contract — the deterministic gauges
    ``progress.done`` / ``progress.total`` any subsystem may publish —
    and the shared heartbeat for RSS.  Rate is measured over a sliding
    window of repaints, ETA extrapolates the remaining units at that
    rate.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._status = StatusLine(stream)
        self._session = None
        self._last_done: float = 0.0
        self._last_done_at: Optional[float] = None
        self._rate: float = 0.0

    def attach(self, session) -> None:
        """Give the sink registry access (called by the session opener)."""
        self._session = session

    # ------------------------------------------------------------- #

    def _progress(self) -> Dict[str, Optional[float]]:
        registry = self._session.registry if self._session else None
        if registry is None:
            return {"done": None, "total": None}
        return {
            "done": registry.value("gauge", "progress.done"),
            "total": registry.value("gauge", "progress.total"),
        }

    def _format_line(self, event: Dict) -> str:
        from repro.telemetry import heartbeat

        # Before attach() the only event in flight is run_start, whose
        # name is the command itself — so the label is right either way.
        command = self._session.command if self._session else event["name"]
        parts = [f"[{command}]"]
        progress = self._progress()
        done, total = progress["done"], progress["total"]
        now = time.monotonic()
        if done is not None:
            if self._last_done_at is not None and now > self._last_done_at:
                window_rate = (done - self._last_done) / (now - self._last_done_at)
                # Exponential smoothing keeps the display calm without
                # changing what is measured.
                self._rate = (
                    window_rate if self._rate == 0.0
                    else 0.7 * self._rate + 0.3 * window_rate
                )
            self._last_done, self._last_done_at = done, now
            if total:
                parts.append(f"{int(done)}/{int(total)}")
                if self._rate > 0 and total > done:
                    eta = (total - done) / self._rate
                    parts.append(f"eta {eta:.0f}s")
            else:
                parts.append(f"{int(done)} units")
            if self._rate > 0:
                parts.append(f"{self._rate:.0f}/s")
        parts.append(f"last {event['name']}")
        parts.append(f"rss {heartbeat.rss_mb(max_age=5.0):.0f}MiB")
        return " | ".join(parts)

    def emit(self, event: Dict) -> None:
        """Repaint (rate-limited); run_end always paints a final line."""
        final = event["type"] == "run_end"
        if not final and not self._status.due():
            return
        line = self._format_line(event)
        if final:
            verdict = event["attrs"].get("verdict")
            code = event["attrs"].get("exit_code")
            line = f"[{event['name']}] done: {verdict} (exit {code})"
        self._status.paint(line, final=final)

    def close(self) -> None:
        """Terminate the status line cleanly on a TTY."""
        self._status.close()
