"""Causal tracing: deterministic trace/span identity across processes.

PR 5's spans stopped at the fork: an explore batch fanning out to pool
workers, or a serve job crossing admission → supervisor → worker, rendered
as one opaque box in ``trace.json``.  This module is the identity layer
that lets spans *cross* process boundaries while staying inside the
golden-stream contract:

* a **trace id** is derived (:func:`derive_trace_id`) from the run's
  command and deterministic ``run_start`` attributes — same seeded
  workload, same trace id — so two runs of one workload produce
  byte-identical normalized streams, trace ids included;
* **span ids** are allocated per *lane*.  A lane is a logical execution
  track (``main`` for the coordinator, ``worker-<chunk>`` for an explore
  pool slot, ``job-<seq>`` for a serve worker) — never an OS pid, because
  pids are host accidents and belong in the volatile section.  Coordinator
  span ids are ``main:<n>`` in open order; worker-side ids are pure
  functions of the work's coordinates (``w<chunk>.b<batch>`` for an
  explore chunk), so no cross-process counter is needed;
* a :class:`SpanRecord` is the picklable unit a worker ships back —
  piggybacked on the :class:`~repro.telemetry.metrics.MetricsSnapshot`
  merge for explore chunks, attached to the verdict payload (and stripped
  before fingerprinting) for serve jobs.  The coordinator re-emits each
  record as an ordinary ``span`` event at its deterministic merge point,
  which is what stitches every lane into one stream and one multi-lane
  Chrome/Perfetto trace;
* a :class:`TraceContext` is the wire form of "who is my parent": the
  trace id, the parent span id, and the lane the receiver should record
  under.  It crosses the pool boundary inside chunk payloads
  (``explore/frontier.py``) and job dispatch arguments
  (``serve/supervisor.py``).

Determinism split: everything in a record except ``t0`` / ``dur`` /
``pid`` is a deterministic function of the run; those three are wall- or
host-derived and are emitted under the event's ``vol`` section, where
normalization strips them.  Clock stitching is epoch-based: workers stamp
``t0`` with ``time.time()`` and the session converts to session-relative
offsets against its own epoch — good to well under a millisecond on one
host, and volatile by construction either way.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: The lane of the coordinating process; every directly-emitted span
#: lives here.  Worker lanes are named by the subsystem that forks them.
MAIN_LANE = "main"


def derive_trace_id(command: str, attrs: Optional[Dict[str, Any]] = None) -> str:
    """Deterministic trace id: blake2b-128 of the run's identity.

    The identity is the command name plus the deterministic ``run_start``
    attributes (the CLI's scalar-argument echo), canonically serialized —
    the same recipe the serve protocol uses for job keys, so equal seeded
    workloads get equal trace ids and golden streams stay byte-identical.
    """
    body = json.dumps(
        {"command": command, "attrs": attrs or {}},
        sort_keys=True, separators=(",", ":"), ensure_ascii=True,
        default=str,
    ).encode("ascii")
    return hashlib.blake2b(body, digest_size=16).hexdigest()


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The causal coordinates handed to another process: picklable, tiny.

    ``parent`` is the span id the receiver's spans should hang under;
    ``lane`` is the track the receiver must record its spans on.  The
    receiver allocates its own span ids deterministically (from work
    coordinates, not counters), so no id state ever crosses back.
    """

    trace_id: str
    parent: Optional[str] = None
    lane: str = MAIN_LANE

    def to_wire(self) -> Dict[str, Any]:
        """The context as a plain dict (JSON- and pickle-friendly)."""
        return {"trace": self.trace_id, "parent": self.parent,
                "lane": self.lane}

    @classmethod
    def from_wire(cls, obj: Optional[Dict[str, Any]]) -> Optional["TraceContext"]:
        """Rebuild a context from :meth:`to_wire` output (``None`` passes)."""
        if obj is None:
            return None
        return cls(
            trace_id=str(obj.get("trace", "")),
            parent=obj.get("parent"),
            lane=str(obj.get("lane", MAIN_LANE)),
        )


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span, measured in another process, shipped back whole.

    Everything except ``t0`` / ``dur`` / ``pid`` is deterministic: the
    span id and lane are pure functions of the work's coordinates, and
    ``attrs`` must obey the same determinism rule as directly-emitted
    span attributes.  ``t0`` is an absolute ``time.time()`` stamp (the
    session converts it to a session-relative offset on emission),
    ``dur`` a ``perf_counter`` delta, ``pid`` the OS process that ran the
    span — all three land in the event's volatile section.
    """

    name: str
    span_id: str
    parent: Optional[str]
    lane: str
    attrs: Tuple[Tuple[str, Any], ...] = ()
    t0: float = 0.0
    dur: float = 0.0
    pid: int = 0


def chunk_span_id(batch: int, chunk: int) -> str:
    """The deterministic span id of one explore pool chunk.

    Keyed by (batch, chunk) coordinates — chunks are contiguous frontier
    slices submitted and merged in order, so the id is invariant across
    pool scheduling, retries, and the serial degraded path.
    """
    return f"w{chunk}.b{batch}"


def chunk_lane(chunk: int) -> str:
    """The lane an explore chunk records under (a pool slot, not a pid)."""
    return f"worker-{chunk}"


def job_span_id(seq: int) -> str:
    """The deterministic span id of one serve job's worker-side execution."""
    return f"job{seq}.exec"


def job_lane(seq: int) -> str:
    """The lane one serve job's worker-side execution records under."""
    return f"job-{seq}"
