"""``repro report``: render a Markdown run report from a telemetry stream.

The report is the post-hoc, human-auditable account of one telemetered
run, built entirely from ``events.jsonl`` (no live process needed):

* the **verdict** and exit code from ``run_end``;
* the run's **parameters** from ``run_start`` — the same echo that makes
  a printed violation reproducible from the transcript;
* the **register footprint** table — registers written vs provisioned,
  the exact quantity the paper's covering lower bound reasons about;
* **top spans** by total wall time (where the run actually went);
* **histogram summaries** and the retry / recovery counters.

Durations in the span and histogram sections come from the stream's
volatile section — they are real wall-clock numbers and are expected to
differ between runs; everything else in the report is deterministic.

When the run directory carries a ``profile.folded`` (a ``--profile``
run), the report adds a top-N table of the sampler's hottest frames; and
``repro report --bench`` renders the perf trend table from a
``BENCH_telemetry.json`` aggregate instead of an event stream.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.telemetry.schema import EVENT_KEYS, _events_path


class TruncatedStream(ReproError):
    """An event stream that exists but cannot be rendered.

    Raised for empty files and mid-write-truncated or otherwise mangled
    lines — the cases ``repro report`` must answer with a one-line
    diagnostic and exit code 1 (a bad artifact), distinct from exit 2
    (no artifact at all, plain :class:`~repro.errors.ReproError`).
    """


def load_events(path) -> List[Dict]:
    """Parse the event stream at *path* (run directory or file).

    Raises a plain :class:`~repro.errors.ReproError` when no stream
    exists, and :class:`TruncatedStream` when one exists but is empty,
    unparseable, or carries events without the required keys — a
    mid-write kill leaves exactly these artifacts, and the renderer must
    diagnose them in one line rather than traceback on a ``KeyError``.
    """
    events_path = _events_path(path)
    if not events_path.exists():
        raise ReproError(
            f"no telemetry stream at {events_path} — run a command with "
            "--telemetry=jsonl first"
        )
    events: List[Dict] = []
    with open(events_path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise TruncatedStream(
                    f"{events_path}:{line_no}: unparseable event ({exc.msg})"
                ) from exc
            if (not isinstance(event, dict)
                    or any(key not in event for key in EVENT_KEYS)):
                raise TruncatedStream(
                    f"{events_path}:{line_no}: malformed event "
                    f"(expected keys {list(EVENT_KEYS)})"
                )
            events.append(event)
    if not events:
        raise TruncatedStream(f"{events_path} is empty")
    return events


def _first(events: List[Dict], type_: str) -> Optional[Dict]:
    for event in events:
        if event["type"] == type_:
            return event
    return None


def _md_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def _span_aggregate(events: List[Dict]) -> List[Dict]:
    """Spans grouped by name: count, total / mean / max duration."""
    grouped: Dict[str, Dict] = {}
    for event in events:
        if event["type"] != "span":
            continue
        dur = float(event["vol"].get("dur", 0.0))
        agg = grouped.setdefault(
            event["name"], {"name": event["name"], "count": 0,
                            "total": 0.0, "max": 0.0}
        )
        agg["count"] += 1
        agg["total"] += dur
        agg["max"] = max(agg["max"], dur)
    return sorted(grouped.values(), key=lambda a: -a["total"])


def _metric(metrics: Optional[Dict], group: str, name: str,
            default=None):
    """Look *name* up across the deterministic and volatile sides."""
    if metrics is None:
        return default
    for side in ("attrs", "vol"):
        value = metrics.get(side, {}).get(group, {}).get(name)
        if value is not None:
            return value
    return default


def render_report(path) -> str:
    """The Markdown run report for the stream at *path*."""
    events = load_events(path)
    start = _first(events, "run_start")
    end = _first(events, "run_end")
    metrics = _first(events, "metrics")
    command = start["name"] if start else "unknown"
    lines: List[str] = [f"# Run report — `repro {command}`", ""]

    # Verdict ------------------------------------------------------ #
    if end is not None:
        verdict = end["attrs"].get("verdict") or "unknown"
        code = end["attrs"].get("exit_code")
        wall = end["vol"].get("ts")
        wall_text = f", {wall:.2f}s wall" if isinstance(wall, (int, float)) else ""
        lines += [f"**Verdict:** {verdict} (exit code {code}{wall_text})", ""]
    else:
        lines += ["**Verdict:** stream has no `run_end` — the run was "
                  "interrupted before closing its telemetry session.", ""]

    # Parameters --------------------------------------------------- #
    if start is not None and start["attrs"]:
        lines += ["## Parameters", ""]
        rows = [
            [f"`{key}`", repr(value)]
            for key, value in sorted(start["attrs"].items())
        ]
        lines += _md_table(["parameter", "value"], rows) + [""]

    # Register footprint ------------------------------------------- #
    written = _metric(metrics, "gauges", "footprint.registers_written")
    provisioned = _metric(metrics, "gauges", "footprint.registers_provisioned")
    memory_steps = _metric(metrics, "counters", "footprint.memory_steps")
    write_steps = _metric(metrics, "counters", "footprint.write_steps")
    if written is not None or provisioned is not None:
        lines += [
            "## Register footprint",
            "",
            "Registers *written* is the run's actual space use — the "
            "quantity the Figure 1 covering argument bounds; *provisioned* "
            "is the layout's static allocation.",
            "",
        ]
        rows = []
        if provisioned is not None:
            rows.append(["registers provisioned", int(provisioned)])
        if written is not None:
            rows.append(["registers written", int(written)])
        if provisioned and written is not None:
            rows.append(
                ["utilization", f"{100.0 * written / provisioned:.0f}%"]
            )
        if memory_steps is not None:
            rows.append(["memory steps", int(memory_steps)])
        if write_steps is not None:
            rows.append(["write steps", int(write_steps)])
        lines += _md_table(["measure", "value"], rows) + [""]

    # Top spans ---------------------------------------------------- #
    aggregates = _span_aggregate(events)
    if aggregates:
        lines += ["## Top spans (by total wall time)", ""]
        rows = [
            [f"`{agg['name']}`", agg["count"], f"{agg['total']:.3f}s",
             f"{agg['total'] / agg['count']:.4f}s", f"{agg['max']:.4f}s"]
            for agg in aggregates[:12]
        ]
        lines += _md_table(
            ["span", "count", "total", "mean", "max"], rows
        ) + [""]

    # Profile ------------------------------------------------------ #
    lines += _profile_section(path)

    # Histograms --------------------------------------------------- #
    histogram_rows = []
    if metrics is not None:
        for side in ("attrs", "vol"):
            for name, data in sorted(
                metrics.get(side, {}).get("histograms", {}).items()
            ):
                count = data.get("count", 0)
                mean = data.get("total", 0.0) / count if count else 0.0
                histogram_rows.append(
                    [f"`{name}`", count, f"{mean:.4f}",
                     "volatile" if side == "vol" else "deterministic"]
                )
    if histogram_rows:
        lines += ["## Histograms", ""]
        lines += _md_table(
            ["histogram", "count", "mean", "kind"], histogram_rows
        ) + [""]

    # Resilience counters ------------------------------------------ #
    resilience = [
        ("worker retries", "explore.worker_retries"),
        ("campaign retries", "faults.retries"),
        ("journal appends", "durable.appends"),
        ("journal checkpoints", "durable.checkpoints"),
        ("journal recoveries", "durable.recoveries"),
        ("journal records recovered", "durable.records_recovered"),
    ]
    rows = []
    for label, name in resilience:
        value = _metric(metrics, "counters", name)
        if value is not None:
            rows.append([label, int(value)])
    if rows:
        lines += ["## Retries and recovery", ""]
        lines += _md_table(["counter", "value"], rows) + [""]

    lines += [
        "---",
        f"_Rendered from `{Path(_events_path(path))}` "
        f"({len(events)} events)._",
        "",
    ]
    return "\n".join(lines)


def _profile_section(path) -> List[str]:
    """The sampler's top-N table, when the run directory has a profile."""
    from repro.telemetry.profile import read_folded, span_totals, top_frames
    from repro.telemetry.sinks import PROFILE_FILE

    profile_path = Path(_events_path(path)).parent / PROFILE_FILE
    if not profile_path.exists():
        return []
    try:
        entries = read_folded(profile_path)
    except OSError:  # pragma: no cover — unreadable profile is advisory
        return []
    if not entries:
        return []
    total = sum(count for _, count in entries)
    lines = [
        "## Profile (statistical, by sampled stack)",
        "",
        f"{total} samples from `{profile_path.name}`; self time goes to "
        "the leaf frame, attributed to the innermost open span.",
        "",
    ]
    rows = [
        [f"`{span}`", f"`{frame}`", count, f"{100.0 * count / total:.1f}%"]
        for span, frame, count in top_frames(entries)
    ]
    lines += _md_table(["span", "frame", "self samples", "share"], rows) + [""]
    span_rows = [
        [f"`{span}`", count, f"{100.0 * count / total:.1f}%"]
        for span, count in span_totals(entries)[:8]
    ]
    lines += ["### Cumulative samples per span", ""]
    lines += _md_table(["span", "samples", "share"], span_rows) + [""]
    return lines


def render_bench_report(path) -> str:
    """The Markdown perf-trend table for a ``BENCH_telemetry.json``.

    The aggregate's records carry provenance since schema 2 (git commit,
    host fingerprint); the table groups records by name so the trajectory
    of one benchmark across commits reads top to bottom.
    """
    aggregate_path = Path(path)
    if aggregate_path.is_dir():
        aggregate_path = aggregate_path / "BENCH_telemetry.json"
    if not aggregate_path.exists():
        raise ReproError(
            f"no benchmark aggregate at {aggregate_path} — run the "
            "benchmarks suite first"
        )
    try:
        aggregate = json.loads(aggregate_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise TruncatedStream(
            f"{aggregate_path}: unreadable benchmark aggregate ({exc})"
        ) from exc
    records = aggregate.get("records") if isinstance(aggregate, dict) else None
    if isinstance(records, dict):  # the aggregate keys records by name
        records = list(records.values())
    if not isinstance(records, list) or not records:
        raise TruncatedStream(f"{aggregate_path}: no benchmark records")
    lines = [
        "# Benchmark trend report",
        "",
        f"Schema {aggregate.get('schema')}, {len(records)} records from "
        f"`{aggregate_path}`.",
        "",
    ]
    rows = []
    for record in sorted(
        records, key=lambda r: (str(r.get("name", "")), str(r.get("commit", "")))
    ):
        if not isinstance(record, dict):
            continue
        host = record.get("host") or {}
        host_text = (
            f"{host.get('platform', '?')}/{host.get('cpus', '?')}cpu"
            if isinstance(host, dict) else "?"
        )
        wall = record.get("wall_s")
        rss = record.get("peak_rss_mb")
        rows.append([
            f"`{record.get('name', '?')}`",
            record.get("commit", "?"),
            f"{wall:.3f}s" if isinstance(wall, (int, float)) else "?",
            f"{rss:.0f}MiB" if isinstance(rss, (int, float)) else "?",
            host_text,
        ])
    lines += _md_table(
        ["benchmark", "commit", "wall", "peak rss", "host"], rows
    ) + [""]
    return "\n".join(lines)
