"""``repro report``: render a Markdown run report from a telemetry stream.

The report is the post-hoc, human-auditable account of one telemetered
run, built entirely from ``events.jsonl`` (no live process needed):

* the **verdict** and exit code from ``run_end``;
* the run's **parameters** from ``run_start`` — the same echo that makes
  a printed violation reproducible from the transcript;
* the **register footprint** table — registers written vs provisioned,
  the exact quantity the paper's covering lower bound reasons about;
* **top spans** by total wall time (where the run actually went);
* **histogram summaries** and the retry / recovery counters.

Durations in the span and histogram sections come from the stream's
volatile section — they are real wall-clock numbers and are expected to
differ between runs; everything else in the report is deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.telemetry.schema import _events_path


def load_events(path) -> List[Dict]:
    """Parse the event stream at *path* (run directory or file)."""
    events_path = _events_path(path)
    if not events_path.exists():
        raise ReproError(
            f"no telemetry stream at {events_path} — run a command with "
            "--telemetry=jsonl first"
        )
    events: List[Dict] = []
    with open(events_path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                events.append(json.loads(raw))
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{events_path}:{line_no}: unparseable event ({exc.msg})"
                ) from exc
    if not events:
        raise ReproError(f"{events_path} is empty")
    return events


def _first(events: List[Dict], type_: str) -> Optional[Dict]:
    for event in events:
        if event["type"] == type_:
            return event
    return None


def _md_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def _span_aggregate(events: List[Dict]) -> List[Dict]:
    """Spans grouped by name: count, total / mean / max duration."""
    grouped: Dict[str, Dict] = {}
    for event in events:
        if event["type"] != "span":
            continue
        dur = float(event["vol"].get("dur", 0.0))
        agg = grouped.setdefault(
            event["name"], {"name": event["name"], "count": 0,
                            "total": 0.0, "max": 0.0}
        )
        agg["count"] += 1
        agg["total"] += dur
        agg["max"] = max(agg["max"], dur)
    return sorted(grouped.values(), key=lambda a: -a["total"])


def _metric(metrics: Optional[Dict], group: str, name: str,
            default=None):
    """Look *name* up across the deterministic and volatile sides."""
    if metrics is None:
        return default
    for side in ("attrs", "vol"):
        value = metrics.get(side, {}).get(group, {}).get(name)
        if value is not None:
            return value
    return default


def render_report(path) -> str:
    """The Markdown run report for the stream at *path*."""
    events = load_events(path)
    start = _first(events, "run_start")
    end = _first(events, "run_end")
    metrics = _first(events, "metrics")
    command = start["name"] if start else "unknown"
    lines: List[str] = [f"# Run report — `repro {command}`", ""]

    # Verdict ------------------------------------------------------ #
    if end is not None:
        verdict = end["attrs"].get("verdict") or "unknown"
        code = end["attrs"].get("exit_code")
        wall = end["vol"].get("ts")
        wall_text = f", {wall:.2f}s wall" if isinstance(wall, (int, float)) else ""
        lines += [f"**Verdict:** {verdict} (exit code {code}{wall_text})", ""]
    else:
        lines += ["**Verdict:** stream has no `run_end` — the run was "
                  "interrupted before closing its telemetry session.", ""]

    # Parameters --------------------------------------------------- #
    if start is not None and start["attrs"]:
        lines += ["## Parameters", ""]
        rows = [
            [f"`{key}`", repr(value)]
            for key, value in sorted(start["attrs"].items())
        ]
        lines += _md_table(["parameter", "value"], rows) + [""]

    # Register footprint ------------------------------------------- #
    written = _metric(metrics, "gauges", "footprint.registers_written")
    provisioned = _metric(metrics, "gauges", "footprint.registers_provisioned")
    memory_steps = _metric(metrics, "counters", "footprint.memory_steps")
    write_steps = _metric(metrics, "counters", "footprint.write_steps")
    if written is not None or provisioned is not None:
        lines += [
            "## Register footprint",
            "",
            "Registers *written* is the run's actual space use — the "
            "quantity the Figure 1 covering argument bounds; *provisioned* "
            "is the layout's static allocation.",
            "",
        ]
        rows = []
        if provisioned is not None:
            rows.append(["registers provisioned", int(provisioned)])
        if written is not None:
            rows.append(["registers written", int(written)])
        if provisioned and written is not None:
            rows.append(
                ["utilization", f"{100.0 * written / provisioned:.0f}%"]
            )
        if memory_steps is not None:
            rows.append(["memory steps", int(memory_steps)])
        if write_steps is not None:
            rows.append(["write steps", int(write_steps)])
        lines += _md_table(["measure", "value"], rows) + [""]

    # Top spans ---------------------------------------------------- #
    aggregates = _span_aggregate(events)
    if aggregates:
        lines += ["## Top spans (by total wall time)", ""]
        rows = [
            [f"`{agg['name']}`", agg["count"], f"{agg['total']:.3f}s",
             f"{agg['total'] / agg['count']:.4f}s", f"{agg['max']:.4f}s"]
            for agg in aggregates[:12]
        ]
        lines += _md_table(
            ["span", "count", "total", "mean", "max"], rows
        ) + [""]

    # Histograms --------------------------------------------------- #
    histogram_rows = []
    if metrics is not None:
        for side in ("attrs", "vol"):
            for name, data in sorted(
                metrics.get(side, {}).get("histograms", {}).items()
            ):
                count = data.get("count", 0)
                mean = data.get("total", 0.0) / count if count else 0.0
                histogram_rows.append(
                    [f"`{name}`", count, f"{mean:.4f}",
                     "volatile" if side == "vol" else "deterministic"]
                )
    if histogram_rows:
        lines += ["## Histograms", ""]
        lines += _md_table(
            ["histogram", "count", "mean", "kind"], histogram_rows
        ) + [""]

    # Resilience counters ------------------------------------------ #
    resilience = [
        ("worker retries", "explore.worker_retries"),
        ("campaign retries", "faults.retries"),
        ("journal appends", "durable.appends"),
        ("journal checkpoints", "durable.checkpoints"),
        ("journal recoveries", "durable.recoveries"),
        ("journal records recovered", "durable.records_recovered"),
    ]
    rows = []
    for label, name in resilience:
        value = _metric(metrics, "counters", name)
        if value is not None:
            rows.append([label, int(value)])
    if rows:
        lines += ["## Retries and recovery", ""]
        lines += _md_table(["counter", "value"], rows) + [""]

    lines += [
        "---",
        f"_Rendered from `{Path(_events_path(path))}` "
        f"({len(events)} events)._",
        "",
    ]
    return "\n".join(lines)
