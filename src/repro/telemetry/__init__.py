"""Telemetry: run-wide metrics, span tracing, live progress, run reports.

The observability layer for every long-running subsystem — exploration
batches, fault-campaign trials, durable-journal operations, whole
executions.  Zero third-party dependencies; nothing here is ever called
from the per-step hot loop, and nothing here may perturb a verdict
(enforced by the telemetry-on/off bit-identity tests).

The package splits five ways:

* :mod:`repro.telemetry.metrics` — the instrument store: deterministic /
  volatile counters, gauges, fixed-bucket histograms, and the picklable
  snapshot-merge protocol that aggregates worker registries at the
  exploration engine's deterministic merge point;
* :mod:`repro.telemetry.session` — the process-wide pipeline: the active
  session, span tracing, and the no-op-safe helpers instrumented code
  calls (:func:`span`, :func:`counter`, :func:`gauge`, :func:`observe`,
  :func:`merge`, :func:`mark`);
* :mod:`repro.telemetry.sinks` — the JSONL event stream + Chrome trace,
  and the TTY-aware live progress renderer;
* :mod:`repro.telemetry.schema` — stream validation and the golden-file
  normalization (volatile section stripped);
* :mod:`repro.telemetry.report` — the ``repro report`` Markdown renderer.

See ``docs/observability.md`` for the metric catalogue, the span
taxonomy, and the report format.
"""

from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    SECONDS_BUCKETS,
)
from repro.telemetry.session import (
    MODES,
    TelemetrySession,
    active,
    counter,
    gauge,
    mark,
    merge,
    observe,
    reset,
    span,
    start,
)

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MODES",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SECONDS_BUCKETS",
    "TelemetrySession",
    "active",
    "counter",
    "gauge",
    "mark",
    "merge",
    "observe",
    "reset",
    "span",
    "start",
]
