"""Telemetry: run-wide metrics, span tracing, live progress, run reports.

The observability layer for every long-running subsystem — exploration
batches, fault-campaign trials, durable-journal operations, whole
executions.  Zero third-party dependencies; nothing here is ever called
from the per-step hot loop, and nothing here may perturb a verdict
(enforced by the telemetry-on/off bit-identity tests).

The package splits seven ways:

* :mod:`repro.telemetry.metrics` — the instrument store: deterministic /
  volatile counters, gauges, fixed-bucket histograms, the picklable
  snapshot-merge protocol that aggregates worker registries at the
  exploration engine's deterministic merge point, and the Prometheus
  text-exposition renderer the serve daemon's ``metrics`` op uses;
* :mod:`repro.telemetry.tracing` — cross-process causal identity:
  deterministic trace ids, per-lane span ids, the picklable
  :class:`~repro.telemetry.tracing.SpanRecord` workers ship back, and
  the :class:`~repro.telemetry.tracing.TraceContext` that crosses pool
  and daemon boundaries;
* :mod:`repro.telemetry.session` — the process-wide pipeline: the active
  session, span tracing, and the no-op-safe helpers instrumented code
  calls (:func:`span`, :func:`counter`, :func:`gauge`, :func:`observe`,
  :func:`merge`, :func:`mark`, :func:`emit_span`);
* :mod:`repro.telemetry.profile` — the span-scoped statistical sampler
  behind ``--profile`` and its collapsed-stack output;
* :mod:`repro.telemetry.sinks` — the JSONL event stream + multi-lane
  Chrome trace, and the TTY-aware live progress renderer;
* :mod:`repro.telemetry.schema` — stream validation and the golden-file
  normalization (volatile section stripped);
* :mod:`repro.telemetry.report` — the ``repro report`` Markdown renderer.

See ``docs/observability.md`` for the metric catalogue, the span
taxonomy, and the report format.
"""

from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    SECONDS_BUCKETS,
    render_exposition,
    validate_exposition,
)
from repro.telemetry.session import (
    MODES,
    TelemetrySession,
    active,
    counter,
    emit_span,
    gauge,
    mark,
    merge,
    observe,
    reset,
    span,
    start,
)
from repro.telemetry.tracing import SpanRecord, TraceContext, derive_trace_id

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MODES",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SECONDS_BUCKETS",
    "SpanRecord",
    "TelemetrySession",
    "TraceContext",
    "active",
    "counter",
    "derive_trace_id",
    "emit_span",
    "gauge",
    "mark",
    "merge",
    "observe",
    "render_exposition",
    "reset",
    "span",
    "start",
    "validate_exposition",
]
