"""Core type aliases and small frozen helpers shared across the library.

The whole runtime is purely functional: configurations, local states and
memory contents are immutable, hashable values.  This module centralizes the
conventions that make that work:

* ``ProcessId`` is a dense integer index ``0..n-1``.
* ``Value`` is any hashable Python object; algorithms never require more.
* ``BOT`` is the distinguished "empty register" value (the paper's ⊥).
* ``Params`` is an immutable mapping used to carry per-protocol parameters
  (``n``, ``m``, ``k``, component counts, ...) inside frozen dataclasses.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping, Tuple

ProcessId = int
Value = Hashable
Schedule = Tuple[ProcessId, ...]


class _Bot:
    """Singleton sentinel for the initial register value ⊥ (the paper's ``⊥``).

    ``None`` is a plausible user value, so the library reserves a dedicated
    sentinel instead.  There is exactly one instance, :data:`BOT`.
    """

    _instance: "_Bot | None" = None

    def __new__(cls) -> "_Bot":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):
        return (_Bot, ())


BOT = _Bot()


def is_bot(value: Any) -> bool:
    """Return ``True`` iff *value* is the ⊥ sentinel."""
    return value is BOT


class Params(Mapping[str, Any]):
    """A small immutable, hashable mapping for protocol parameters.

    Frozen dataclasses that embed parameters need a hashable mapping;
    ``dict`` is not hashable and ``types.MappingProxyType`` is not either.
    ``Params`` stores items as a sorted tuple of pairs.

    >>> p = Params(n=4, m=1, k=2)
    >>> p["n"], p["k"]
    (4, 2)
    >>> Params(n=4, m=1, k=2) == Params(k=2, m=1, n=4)
    True
    """

    __slots__ = ("_items",)

    def __init__(self, *args: Mapping[str, Any], **kwargs: Any) -> None:
        merged: dict[str, Any] = {}
        for mapping in args:
            merged.update(mapping)
        merged.update(kwargs)
        object.__setattr__(self, "_items", tuple(sorted(merged.items())))

    def __getitem__(self, key: str) -> Any:
        for name, value in self._items:
            if name == key:
                return value
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Params):
            return self._items == other._items
        return Mapping.__eq__(self, other)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in self._items)
        return f"Params({inner})"

    def updated(self, **kwargs: Any) -> "Params":
        """Return a new :class:`Params` with *kwargs* merged in."""
        return Params(dict(self._items), **kwargs)


def freeze_sequence(values: Iterable[Any]) -> Tuple[Any, ...]:
    """Return *values* as a tuple (identity for tuples)."""
    if isinstance(values, tuple):
        return values
    return tuple(values)
