"""Configurations and the pure step function of the simulated system.

A :class:`System` is the immutable description of a run setup: one
:class:`~repro.runtime.automaton.ProtocolAutomaton` shared by ``n``
processes, one input *workload* per process (the sequence of values it will
propose), and a :class:`~repro.memory.layout.MemoryLayout`.

A :class:`Configuration` is a value: the local state of every process plus
the contents of every register (paper §2).  :meth:`System.step` is a pure
function ``(configuration, pid) -> (configuration, event)``; an execution is
nothing but the fold of a schedule over it.  This purity is load-bearing:

* replays are exact, so the lower-bound constructions can *splice* execution
  fragments and then certify the result by re-running the spliced schedule;
* configurations are hashable, so exhaustive exploration and fragment search
  (:mod:`repro.lowerbounds.fragments`) can maintain visited sets;
* "poised" steps — a central notion in covering arguments — are inspectable
  via :meth:`System.peek`, which computes a step without committing it.

One step performs exactly one of: an operation invocation, one atomic
shared-memory access, or an operation response (decision).  Frame opening /
closing and local computation are folded into the same step as the access
they surround, bounded by :data:`MAX_INTERNAL_TRANSITIONS` to catch
non-productive automata.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, replace
from typing import Any, Iterable, Optional, Sequence, Tuple

from repro._types import BOT, Value
from repro.errors import (
    ConfigurationError,
    NotEnabledError,
    ProtocolViolation,
)
from repro.memory.layout import (
    ImplementedBinding,
    MemoryLayout,
    MemoryState,
    PrimitiveBinding,
)
from repro.memory.ops import ReadOp, WriteOp
from repro.runtime.automaton import Context, Decide, ProtocolAutomaton
from repro.runtime.events import DecideEvent, Event, InvokeEvent, MemoryEvent
from repro.runtime.frames import Frame, ImplContext, Return

#: Cap on frame-open/return/local transitions folded into a single step.
MAX_INTERNAL_TRANSITIONS = 64


@dataclass(frozen=True, slots=True)
class Slot:
    """One operation-local thread: its state and (optionally) a live frame."""

    thread: int
    state: Any
    frame: Optional[Frame] = None


@dataclass(frozen=True, slots=True)
class ActiveOp:
    """An in-flight ``Propose``: its threads and whose turn it is.

    Threads of one operation are interleaved round-robin at the granularity
    of single atomic accesses — a fair deterministic sub-schedule, which is
    one of the legal interleavings the paper's model allows and preserves
    the starvation-rescue behaviour Figure 5's second thread exists for.
    """

    invocation: int
    input: Value
    slots: Tuple[Slot, ...]
    turn: int = 0


@dataclass(frozen=True, slots=True)
class ProcState:
    """Complete local state of one process.

    ``obj_persistent`` carries per-implemented-object cross-operation state
    (e.g. snapshot sequence numbers) as a name-sorted tuple of pairs so the
    whole record stays hashable.
    """

    persistent: Any
    obj_persistent: Tuple[Tuple[str, Any], ...]
    active: Optional[ActiveOp]
    next_input: int
    outputs: Tuple[Value, ...]

    def object_state(self, obj: str) -> Any:
        """This process's persistent state for implemented object *obj*."""
        for name, state in self.obj_persistent:
            if name == obj:
                return state
        raise ProtocolViolation(f"no persistent state for object {obj!r}")

    def with_object_state(self, obj: str, state: Any) -> "ProcState":
        """Copy of this record with *obj*'s persistent state replaced."""
        updated = tuple(
            (name, state if name == obj else old)
            for name, old in self.obj_persistent
        )
        return replace(self, obj_persistent=updated)


@dataclass(frozen=True, slots=True)
class Configuration:
    """Global state: every process's local state + every register's value."""

    procs: Tuple[ProcState, ...]
    memory: MemoryState

    @property
    def n(self) -> int:
        return len(self.procs)


@dataclass(frozen=True, slots=True)
class StepResult:
    config: Configuration
    event: Event


# System crosses the pool boundary only via the fork start method (the
# spawn path default-pickles it, which is correct: automaton, workloads
# and layout are all plain immutable values with no fds, locks, or memo
# state — there is nothing a custom reduction would need to drop).
class System:  # repro: allow(CONC002)
    """A fixed protocol + workload + memory layout; pure step semantics."""

    def __init__(
        self,
        automaton: ProtocolAutomaton,
        workloads: Optional[Sequence[Sequence[Value]]] = None,
        layout: Optional[MemoryLayout] = None,
        *,
        n: Optional[int] = None,
        workload_fn=None,
    ) -> None:
        """Fix the protocol, the proposals, and the memory.

        Proposals come either from static ``workloads`` (one value sequence
        per process) or from a *dynamic* ``workload_fn(pid, invocation,
        outputs) -> value | None`` — called at invocation time with the
        process's outputs so far; ``None`` means the process is done.  The
        function must be deterministic and pure (it is consulted from
        ``enabled`` too), which keeps executions replayable.  Dynamic
        workloads power adaptive clients such as the universal
        construction's re-proposal loop.
        """
        if (workloads is None) == (workload_fn is None):
            raise ConfigurationError(
                "provide exactly one of workloads / workload_fn"
            )
        self.automaton = automaton
        if workload_fn is not None:
            if n is None:
                raise ConfigurationError("workload_fn requires explicit n")
            self.workloads = None
            self.workload_fn = workload_fn
            self.n = n
        else:
            if not workloads:
                raise ConfigurationError("a system needs at least one process")
            self.workloads: Tuple[Tuple[Value, ...], ...] = tuple(
                tuple(w) for w in workloads
            )
            self.workload_fn = None
            self.n = len(self.workloads)
        self.layout = layout if layout is not None else automaton.default_layout()
        self._contexts = tuple(
            Context(
                pid=pid,
                n=self.n,
                params=automaton.params,
                anonymous=automaton.anonymous,
            )
            for pid in range(self.n)
        )
        self._implemented = tuple(
            sorted(
                name
                for name in self.layout.object_names
                if isinstance(self.layout.binding(name), ImplementedBinding)
            )
        )
        self._impl_contexts = {
            (pid, name): ImplContext(
                pid=pid,
                n=self.n,
                params=self.layout.binding(name).impl.params,
                banks=self.layout.binding(name).banks,
                anonymous=automaton.anonymous,
            )
            for pid in range(self.n)
            for name in self._implemented
        }

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def context(self, pid: int) -> Context:
        """The per-process execution context handed to the automaton."""
        return self._contexts[pid]

    def initial_configuration(self) -> Configuration:
        """The configuration all executions start from (paper §2)."""
        procs = []
        for pid in range(self.n):
            ctx = self._contexts[pid]
            obj_persistent = tuple(
                (
                    name,
                    self.layout.binding(name).impl.initial_persistent(
                        self._impl_contexts[(pid, name)]
                    ),
                )
                for name in self._implemented
            )
            procs.append(
                ProcState(
                    persistent=self.automaton.initial_persistent(ctx),
                    obj_persistent=obj_persistent,
                    active=None,
                    next_input=0,
                    outputs=(),
                )
            )
        return Configuration(procs=tuple(procs), memory=self.layout.initial_memory())

    # ------------------------------------------------------------------ #
    # Enabledness
    # ------------------------------------------------------------------ #

    def _next_value(self, proc: ProcState, pid: int):
        """The process's next proposal, or ``None`` when it is done."""
        if self.workload_fn is not None:
            return self.workload_fn(pid, proc.next_input + 1, proc.outputs)
        workload = self.workloads[pid]
        if proc.next_input < len(workload):
            return workload[proc.next_input]
        return None

    def enabled(self, config: Configuration, pid: int) -> bool:
        """A process is enabled unless it has completed its whole workload."""
        proc = config.procs[pid]
        if proc.active is not None:
            return True
        return self._next_value(proc, pid) is not None

    def enabled_pids(self, config: Configuration) -> Tuple[int, ...]:
        """All processes with an enabled step in *config*."""
        return tuple(pid for pid in range(self.n) if self.enabled(config, pid))

    def all_halted(self, config: Configuration) -> bool:
        """True iff no process has a step left (workloads exhausted)."""
        return not self.enabled_pids(config)

    def decided_all(self, config: Configuration, pids: Iterable[int]) -> bool:
        """True iff every pid in *pids* completed every workload invocation."""
        return all(
            config.procs[pid].active is None
            and self._next_value(config.procs[pid], pid) is None
            for pid in pids
        )

    # ------------------------------------------------------------------ #
    # The step function
    # ------------------------------------------------------------------ #

    def step(self, config: Configuration, pid: int) -> StepResult:
        """Perform process *pid*'s unique next step.  Pure.

        Raises :class:`~repro.errors.NotEnabledError` if *pid* has no step.
        """
        if pid < 0 or pid >= self.n:
            raise NotEnabledError(f"no process with id {pid}")
        proc = config.procs[pid]
        if proc.active is None:
            return self._invoke(config, pid, proc)
        return self._advance(config, pid, proc)

    def peek(self, config: Configuration, pid: int) -> Event:
        """The event process *pid*'s next step would produce (no commit).

        Requires a pure-state automaton; procedural protocols (whose state
        advances generators in place) reject peeking.
        """
        if not getattr(self.automaton, "supports_peek", True):
            raise ProtocolViolation(
                f"{self.automaton.name} does not support peek (its states "
                "are not forkable); use a frozen-state automaton"
            )
        return self.step(config, pid).event

    def _invoke(
        self, config: Configuration, pid: int, proc: ProcState
    ) -> StepResult:
        value = self._next_value(proc, pid)
        if value is None:
            raise NotEnabledError(f"process {pid} has completed its workload")
        ctx = self._contexts[pid]
        invocation = proc.next_input + 1
        thread_states = self.automaton.begin(ctx, proc.persistent, value, invocation)
        if len(thread_states) != self.automaton.n_threads:
            raise ProtocolViolation(
                f"{self.automaton.name}: begin returned {len(thread_states)} "
                f"thread states, expected {self.automaton.n_threads}"
            )
        slots = tuple(
            Slot(thread=i, state=state) for i, state in enumerate(thread_states)
        )
        new_proc = replace(
            proc,
            active=ActiveOp(invocation=invocation, input=value, slots=slots),
            next_input=proc.next_input + 1,
        )
        new_config = _replace_proc(config, pid, new_proc)
        return StepResult(new_config, InvokeEvent(pid, invocation, value))

    def _advance(
        self, config: Configuration, pid: int, proc: ProcState
    ) -> StepResult:
        ctx = self._contexts[pid]
        active = proc.active
        assert active is not None
        idx = active.turn
        slot = active.slots[idx]
        next_turn = (idx + 1) % len(active.slots)
        memory = config.memory

        for _ in range(MAX_INTERNAL_TRANSITIONS):
            if slot.frame is None:
                action = self.automaton.pending(ctx, slot.thread, slot.state)
                if isinstance(action, Decide):
                    thread_states = tuple(
                        s.state if s.thread != slot.thread else slot.state
                        for s in active.slots
                    )
                    persistent = self.automaton.finalize_persistent(
                        ctx, action, thread_states
                    )
                    new_proc = ProcState(
                        persistent=persistent,
                        obj_persistent=proc.obj_persistent,
                        active=None,
                        next_input=proc.next_input,
                        outputs=proc.outputs + (action.output,),
                    )
                    event: Event = DecideEvent(
                        pid, active.invocation, action.output, slot.thread
                    )
                    return StepResult(_replace_proc(config, pid, new_proc), event)
                op = action
                binding = self.layout.binding(op.obj)
                if isinstance(binding, PrimitiveBinding):
                    memory, response = self.layout.apply_primitive(memory, op)
                    new_state = self.automaton.apply(
                        ctx, slot.thread, slot.state, response
                    )
                    slot = Slot(slot.thread, new_state, None)
                    event = MemoryEvent(
                        pid, active.invocation, op, response, slot.thread
                    )
                    return self._commit(config, pid, proc, active, idx, slot,
                                        next_turn, memory, event)
                # Implemented object: open a frame (free) and keep going.
                impl = binding.impl
                ictx = self._impl_contexts[(pid, op.obj)]
                frame_state = impl.begin(ictx, proc.object_state(op.obj), op)
                slot = Slot(slot.thread, slot.state, Frame(op.obj, frame_state))
                continue

            # A frame is live: advance it.
            frame = slot.frame
            binding = self.layout.binding(frame.obj)
            impl = binding.impl
            ictx = self._impl_contexts[(pid, frame.obj)]
            frame_action = impl.pending(ictx, frame.state)
            if isinstance(frame_action, Return):
                proc = proc.with_object_state(frame.obj, frame_action.persistent)
                new_state = self.automaton.apply(
                    ctx, slot.thread, slot.state, frame_action.response
                )
                slot = Slot(slot.thread, new_state, None)
                continue
            reg_op = frame_action
            if not isinstance(reg_op, (ReadOp, WriteOp)):
                raise ProtocolViolation(
                    f"{impl.name}: frames may only issue register reads/writes, "
                    f"got {reg_op!r}"
                )
            if reg_op.obj not in ictx.banks:
                raise ProtocolViolation(
                    f"{impl.name}: access to bank {reg_op.obj!r} outside its "
                    f"banks {ictx.banks}"
                )
            memory, response = self.layout.apply_primitive(memory, reg_op)
            new_frame_state = impl.apply(ictx, frame.state, response)
            slot = Slot(slot.thread, slot.state, Frame(frame.obj, new_frame_state))
            event = MemoryEvent(
                pid, active.invocation, reg_op, response, slot.thread, in_frame=True
            )
            return self._commit(config, pid, proc, active, idx, slot,
                                next_turn, memory, event)

        raise ProtocolViolation(
            f"{self.automaton.name}: exceeded {MAX_INTERNAL_TRANSITIONS} internal "
            "transitions without a shared-memory access or decision"
        )

    def _commit(
        self,
        config: Configuration,
        pid: int,
        proc: ProcState,
        active: ActiveOp,
        idx: int,
        slot: Slot,
        next_turn: int,
        memory: MemoryState,
        event: Event,
    ) -> StepResult:
        new_slots = active.slots[:idx] + (slot,) + active.slots[idx + 1 :]
        new_active = replace(active, slots=new_slots, turn=next_turn)
        new_proc = replace(proc, active=new_active)
        new_config = Configuration(
            procs=_replace_in_tuple(config.procs, pid, new_proc), memory=memory
        )
        return StepResult(new_config, event)

    # ------------------------------------------------------------------ #
    # Observations
    # ------------------------------------------------------------------ #

    def outputs(self, config: Configuration) -> Tuple[Tuple[Value, ...], ...]:
        """Per-process tuples of outputs produced so far."""
        return tuple(proc.outputs for proc in config.procs)

    def instance_outputs(self, config: Configuration, instance: int) -> Tuple[Value, ...]:
        """Outputs produced for repeated-agreement *instance* (1-based)."""
        return tuple(
            proc.outputs[instance - 1]
            for proc in config.procs
            if len(proc.outputs) >= instance
        )


def _replace_proc(
    config: Configuration, pid: int, proc: ProcState
) -> Configuration:
    return Configuration(
        procs=_replace_in_tuple(config.procs, pid, proc), memory=config.memory
    )


def _replace_in_tuple(items: Tuple[Any, ...], index: int, item: Any) -> Tuple[Any, ...]:
    return items[:index] + (item,) + items[index + 1 :]


# ---------------------------------------------------------------------- #
# Stable fingerprints
#
# These are the *definitional* fingerprints: a recursive, type-tagged
# hash over the frozen-dataclass graph.  The exploration hot path keys
# its visited sets with the packed codec instead
# (:mod:`repro.explore.packed` hashes an invertible byte encoding, which
# is both faster and checkpoint-stable); stable_fingerprint remains the
# oracle that anything may fall back on, and the legacy benchmark
# backend still measures the engine with it end-to-end.
# ---------------------------------------------------------------------- #

def _feed_fingerprint(h, value: Any) -> None:
    """Feed a canonical, type-tagged encoding of *value* into hash *h*.

    The encoding must be identical across interpreter processes — Python's
    built-in ``hash`` is salted per process (``PYTHONHASHSEED``), so it
    cannot key a visited set that is shared between exploration workers or
    persisted to disk.  Every composite is length- and type-tagged so that
    distinct structures cannot collide by concatenation.
    """
    if value is None:
        h.update(b"N;")
    elif value is BOT:
        h.update(b"B;")
    elif isinstance(value, bool):
        h.update(b"b1;" if value else b"b0;")
    elif isinstance(value, int):
        data = str(value).encode()
        h.update(b"i%d:" % len(data) + data)
    elif isinstance(value, float):
        data = value.hex().encode()
        h.update(b"f%d:" % len(data) + data)
    elif isinstance(value, str):
        data = value.encode()
        h.update(b"s%d:" % len(data) + data)
    elif isinstance(value, bytes):
        h.update(b"y%d:" % len(value) + value)
    elif isinstance(value, (tuple, list)):
        h.update(b"t%d:" % len(value))
        for item in value:
            _feed_fingerprint(h, item)
    elif isinstance(value, (set, frozenset)):
        # Hash elements independently and combine order-insensitively.
        digests = sorted(
            hashlib.blake2b(_encode_once(item), digest_size=16).digest()
            for item in value
        )
        h.update(b"e%d:" % len(digests))
        for digest in digests:
            h.update(digest)
    elif isinstance(value, dict):
        items = sorted(
            (hashlib.blake2b(_encode_once(key), digest_size=16).digest(), key, val)
            for key, val in value.items()
        )
        h.update(b"d%d:" % len(items))
        for _, key, val in items:
            _feed_fingerprint(h, key)
            _feed_fingerprint(h, val)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__qualname__.encode()
        fields = dataclasses.fields(value)
        h.update(b"D%d:" % len(name) + name + b"%d:" % len(fields))
        for field_ in fields:
            _feed_fingerprint(h, field_.name)
            _feed_fingerprint(h, getattr(value, field_.name))
    else:
        # Fallback for exotic hashable values: require a stable repr.
        data = repr(value).encode()
        h.update(b"r%d:" % len(data) + data)


def _encode_once(value: Any) -> bytes:
    buffer = hashlib.blake2b(digest_size=16)
    _feed_fingerprint(buffer, value)
    return buffer.digest()


def stable_fingerprint(value: Any) -> str:
    """A process- and run-stable hex fingerprint of an immutable value.

    Unlike ``hash()``, the result does not depend on ``PYTHONHASHSEED`` or
    object identity, so fingerprints computed by different worker processes
    (or in a previous run, for the persistent exploration cache) agree.
    Covers the value vocabulary of the runtime: primitives, ⊥, tuples,
    frozen dataclasses, and the occasional dict/set; anything else must
    have a deterministic ``repr``.
    """
    h = hashlib.blake2b(digest_size=16)
    _feed_fingerprint(h, value)
    return h.hexdigest()


def configuration_fingerprint(config: Configuration) -> str:
    """Stable fingerprint of a :class:`Configuration` (see :func:`stable_fingerprint`)."""
    return stable_fingerprint(config)
