"""Event records: what each atomic step of an execution did.

The paper's model distinguishes four step kinds (§2): operation invocation,
a shared-memory access, local computation, and an operation response.  Local
computation is folded into transitions (see :mod:`repro.runtime.automaton`),
so an execution is a sequence of three event kinds:

* :class:`InvokeEvent` — a ``Propose(value)`` began;
* :class:`MemoryEvent` — one atomic register / snapshot access;
* :class:`DecideEvent` — a ``Propose`` returned an output.

Events are frozen and hashable; property checkers (:mod:`repro.spec`)
consume them, and benchmarks aggregate them into step counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro._types import Value
from repro.memory.ops import Op


@dataclass(frozen=True)
class InvokeEvent:
    """Process ``pid`` invoked its ``invocation``-th ``Propose(value)``."""

    pid: int
    invocation: int
    value: Value

    kind = "invoke"

    def __repr__(self) -> str:
        return f"p{self.pid}: invoke #{self.invocation} Propose({self.value!r})"


@dataclass(frozen=True)
class MemoryEvent:
    """Process ``pid`` performed one atomic shared-memory access.

    ``thread`` is the operation-local thread that took the step (0 except in
    multi-threaded protocols such as Figure 5).  ``in_frame`` marks register
    accesses performed inside an object-implementation frame, so substrate
    ablations can separate high-level from register-level steps.
    """

    pid: int
    invocation: int
    op: Op
    response: Value
    thread: int = 0
    in_frame: bool = False

    kind = "memory"

    def __repr__(self) -> str:
        frame = " [frame]" if self.in_frame else ""
        return f"p{self.pid}: {self.op!r} -> {self.response!r}{frame}"


@dataclass(frozen=True)
class DecideEvent:
    """Process ``pid`` completed its ``invocation``-th ``Propose``, outputting ``output``."""

    pid: int
    invocation: int
    output: Value
    thread: int = 0

    kind = "decide"

    def __repr__(self) -> str:
        return f"p{self.pid}: decide #{self.invocation} -> {self.output!r}"


Event = Union[InvokeEvent, MemoryEvent, DecideEvent]


def decided_value(event: Event) -> Optional[Value]:
    """The output carried by *event* if it is a decision, else ``None``."""
    if isinstance(event, DecideEvent):
        return event.output
    return None
