"""The protocol-automaton interface: algorithms as explicit state machines.

Every algorithm in the library — the paper's Figures 3, 4 and 5, the
baselines, the trivial algorithms — is written as a *deterministic state
machine over frozen local states*, not as Python threads.  This is the
design decision that makes the rest of the reproduction possible:

* local states are immutable and hashable, so whole configurations are
  values: they can be stored in visited sets (model checking), compared
  (covering constructions) and branched from (what-if exploration) without
  deep copies of interpreter frames;
* the next shared-memory access of a process is *inspectable* ("poised"
  steps in the paper's proofs) without running it.

An automaton describes how one process executes a (possibly repeated)
sequence of ``Propose`` operations:

* :meth:`ProtocolAutomaton.initial_persistent` — local variables that
  survive across invocations (the paper's persistent ``i``/``t``/``history``
  in Figures 4 and 5);
* :meth:`ProtocolAutomaton.begin` — start one ``Propose(v)``, returning the
  initial state of each of the operation's *threads* (Figure 5 runs two
  threads per operation; everything else runs one);
* :meth:`ProtocolAutomaton.pending` — the thread's next action: a shared
  memory operation (:mod:`repro.memory.ops`) or a :class:`Decide`;
* :meth:`ProtocolAutomaton.apply` — the thread's state transition on the
  response of its pending operation.

Local computation between shared-memory accesses is folded into
:meth:`apply` — the standard reduction for interleaving models, sound here
because every bound in the paper concerns registers, not local work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Tuple, Union

from repro._types import Params, Value
from repro.errors import AnonymityViolation
from repro.memory.layout import MemoryLayout
from repro.memory.ops import Op


@dataclass(frozen=True)
class Context:
    """Per-process execution context handed to every automaton callback.

    ``pid`` is the runtime's process index.  Anonymous algorithms (paper §5,
    §6) must not consult it: they access identity only through
    :attr:`identifier`, which raises for anonymous automata, so an accidental
    identity leak fails loudly instead of silently breaking the anonymity
    assumptions of the clone-based lower bound.
    """

    pid: int
    n: int
    params: Params
    anonymous: bool = False

    @property
    def identifier(self) -> int:
        """The process identifier, for identifier-based (eponymous) algorithms."""
        if self.anonymous:
            raise AnonymityViolation(
                "anonymous automaton attempted to read its process identifier"
            )
        return self.pid


@dataclass(frozen=True)
class Decide:
    """Terminal action of a ``Propose``: output a value, update persistence.

    ``persistent`` is the new cross-invocation local state; for one-shot
    protocols it is conventionally the old persistent state.
    """

    output: Value
    persistent: Any


Action = Union[Op, Decide]


class ProtocolAutomaton(ABC):
    """Deterministic per-process program for (repeated) set agreement.

    Subclasses are constructed with their parameters (``n``, ``m``, ``k``,
    register counts…) and expose them via :attr:`params`.  The same automaton
    object is shared by all processes; per-process data lives exclusively in
    the states it returns.
    """

    #: human-readable protocol name (used in reports and benchmarks)
    name: str = "protocol"
    #: whether processes are anonymous (identifier access then raises)
    anonymous: bool = False
    #: number of concurrent threads per operation (Figure 5 uses 2)
    n_threads: int = 1

    def __init__(self, params: Params) -> None:
        self.params = params

    # ------------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------------ #

    @abstractmethod
    def default_layout(self) -> MemoryLayout:
        """The memory layout this protocol expects (object names + sizes).

        Systems may substitute a different layout exposing the same object
        names — e.g. replacing a primitive snapshot with a register-level
        implementation — which is how the substrate ablations run.
        """

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def initial_persistent(self, ctx: Context) -> Any:
        """Cross-invocation local state; default: no persistent state."""
        return None

    @abstractmethod
    def begin(
        self, ctx: Context, persistent: Any, value: Value, invocation: int
    ) -> Tuple[Any, ...]:
        """Start ``Propose(value)``; return initial state for each thread.

        ``invocation`` is the 1-based count of this process's invocations,
        i.e. the instance number of repeated agreement the operation targets.
        """

    @abstractmethod
    def pending(self, ctx: Context, thread: int, state: Any) -> Action:
        """The thread's next action given its current *state*."""

    @abstractmethod
    def apply(self, ctx: Context, thread: int, state: Any, response: Value) -> Any:
        """Transition on the response to the thread's pending operation."""

    def finalize_persistent(
        self, ctx: Context, decide: Decide, thread_states: Tuple[Any, ...]
    ) -> Any:
        """Reconcile persistent state when one thread decides.

        Multi-threaded protocols whose persistent variables are owned by a
        thread other than the deciding one (Figure 5's location counter ``i``
        lives in thread 1 while thread 2 may produce the output) override
        this to merge ``decide.persistent`` with the surviving thread
        states.  Default: ``decide.persistent`` unchanged.
        """
        return decide.persistent
