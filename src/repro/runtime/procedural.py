"""Procedural adapter: write protocols as generator functions.

The core automaton interface (explicit frozen-state machines) is what makes
replay, splicing and model checking possible — but it is verbose for quick
experiments.  This adapter lets a user write a process as a plain generator::

    def racer(ctx, value):
        for i in range(3):
            yield UpdateOp("A", i, (value, ctx.pid))
        s = yield ScanOp("A")
        return s[0][0]          # the returned value is the decision

and run it under any scheduler::

    protocol = ProceduralProtocol(racer, layout=snapshot_layout("A", 3))
    execution = run(System(protocol, workloads=[["a"], ["b"]]),
                    RoundRobinScheduler())

**Constraints** (enforced, not just documented): generator state lives in a
mutable box, so configurations containing procedural states are *linear* —
each may be stepped onward exactly once.  Forking a configuration (stepping
the same one twice), exhaustive exploration, and :meth:`System.peek` (hence
the :class:`~repro.sched.adversarial.WriterPriorityScheduler`) are rejected
with :class:`~repro.errors.ProtocolViolation`.  Determinstic replay *from
the initial configuration* works: a fresh run of the same schedule.  For
anything that needs configuration forking, write a frozen-state automaton.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro._types import Params, Value
from repro.errors import ProtocolViolation
from repro.memory.layout import MemoryLayout
from repro.memory.ops import Op
from repro.runtime.automaton import Context, Decide, ProtocolAutomaton

ProcedureFn = Callable[..., Generator[Op, Value, Value]]


class _GeneratorBox:
    """Identity-hashed holder of a live generator plus a linearity guard."""

    __slots__ = ("generator", "version")

    def __init__(self, generator: Generator) -> None:
        self.generator = generator
        self.version = 0

    def __hash__(self) -> int:  # identity: fine for linear runs
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass(frozen=True)
class ProceduralState:
    """One step of a procedural process: the box plus its pending action.

    ``pending`` is precomputed at each advance, so reading it is pure; only
    :meth:`ProceduralProtocol.apply` advances the generator, and the
    ``version`` check makes accidental configuration forking loud.
    """

    box: _GeneratorBox
    version: int
    pending_action: Any  # Op | Decide


class ProceduralProtocol(ProtocolAutomaton):
    """Wrap a generator function into a (linear-run-only) protocol."""

    name = "procedural"
    n_threads = 1
    supports_peek = False

    def __init__(
        self,
        procedure: ProcedureFn,
        layout: MemoryLayout,
        *,
        params: Optional[Params] = None,
        anonymous: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(params if params is not None else Params())
        self.procedure = procedure
        self._layout = layout
        self.anonymous = anonymous
        if name is not None:
            self.name = name

    def default_layout(self) -> MemoryLayout:
        return self._layout

    # ------------------------------------------------------------------ #

    def begin(self, ctx: Context, persistent: Any, value: Value, invocation: int):
        generator = self.procedure(ctx, value)
        box = _GeneratorBox(generator)
        action = self._advance(box, None, first=True)
        return (ProceduralState(box=box, version=0, pending_action=action),)

    def pending(self, ctx: Context, thread: int, state: ProceduralState):
        return state.pending_action

    def apply(self, ctx: Context, thread: int, state: ProceduralState, response):
        box = state.box
        if box.version != state.version:
            raise ProtocolViolation(
                "procedural configuration was forked: a ProceduralProtocol "
                "run is linear (no peek, no exploration, no re-stepping an "
                "old configuration); use a frozen-state automaton instead"
            )
        box.version += 1
        action = self._advance(box, response, first=False)
        return ProceduralState(
            box=box, version=box.version, pending_action=action
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _advance(box: _GeneratorBox, response: Value, *, first: bool):
        try:
            if first:
                op = next(box.generator)
            else:
                op = box.generator.send(response)
        except StopIteration as stop:
            return Decide(output=stop.value, persistent=None)
        if not isinstance(op, tuple(Op.__args__)):  # type: ignore[attr-defined]
            raise ProtocolViolation(
                f"procedural process yielded {op!r}; generators must yield "
                "memory operations and return their decision"
            )
        return op
