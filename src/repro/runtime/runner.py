"""Run loops: fold schedules or schedulers over the pure step function.

An :class:`Execution` packages everything needed to reason about a run —
the system, the schedule actually taken, the event trace, and the initial /
final configurations.  Because :meth:`repro.runtime.system.System.step` is
pure, ``replay(system, execution.schedule)`` reproduces the execution
exactly; the lower-bound constructions lean on this to certify spliced
schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro._types import Value
from repro.errors import NotEnabledError, StepLimitExceeded
from repro.runtime.events import DecideEvent, Event, MemoryEvent
from repro.runtime.system import Configuration, System

StopCondition = Callable[[Configuration, List[Event]], bool]
#: A monitor observes each (configuration, event) pair after every step and
#: raises (typically SpecificationViolation) when an invariant breaks.
Monitor = Callable[[Configuration, Event], None]


@dataclass
class Execution:
    """A finite execution: schedule, events and end-point configurations."""

    system: System
    initial: Configuration
    schedule: List[int] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)
    config: Configuration = None  # type: ignore[assignment]
    hit_step_limit: bool = False

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = self.initial

    # ---------------------------------------------------------------- #
    # Observations
    # ---------------------------------------------------------------- #

    @property
    def steps(self) -> int:
        return len(self.schedule)

    @property
    def decisions(self) -> List[DecideEvent]:
        return [e for e in self.events if isinstance(e, DecideEvent)]

    @property
    def memory_events(self) -> List[MemoryEvent]:
        return [e for e in self.events if isinstance(e, MemoryEvent)]

    def outputs(self) -> Tuple[Tuple[Value, ...], ...]:
        """Per-process output tuples at the final configuration."""
        return self.system.outputs(self.config)

    def instance_outputs(self, instance: int) -> Tuple[Value, ...]:
        """Outputs produced for repeated-agreement *instance* (1-based)."""
        return self.system.instance_outputs(self.config, instance)

    def process_steps(self, pid: int) -> int:
        """Number of steps *pid* took in this execution."""
        return sum(1 for chosen in self.schedule if chosen == pid)

    def append_step(self, pid: int) -> Event:
        """Take one step by *pid*, recording it.  Mutates this execution."""
        result = self.system.step(self.config, pid)
        self.config = result.config
        self.schedule.append(pid)
        self.events.append(result.event)
        return result.event


def run(
    system: System,
    scheduler,
    *,
    max_steps: int = 100_000,
    initial: Optional[Configuration] = None,
    stop: Optional[StopCondition] = None,
    on_limit: str = "raise",
    monitors: Optional[Sequence[Monitor]] = None,
    telemetry_span: Optional[str] = None,
    telemetry_attrs: Optional[Dict] = None,
) -> Execution:
    """Run *system* under *scheduler* until quiescence, *stop*, or the budget.

    The run ends when every process has halted (completed its workload), when
    *stop* returns true, or when the scheduler returns ``None``.  Hitting
    ``max_steps`` raises :class:`~repro.errors.StepLimitExceeded` unless
    ``on_limit="return"``, in which case the partial execution is returned
    with :attr:`Execution.hit_step_limit` set.

    ``monitors`` are invoked after every step with the new configuration and
    the event taken; they raise to abort the run — the way per-step
    invariants (e.g. the paper's Lemma 3, :mod:`repro.spec.invariants`)
    are enforced online.

    ``telemetry_span`` names the telemetry span to wrap the whole run in
    (e.g. ``"runtime.run"`` from the CLI, ``"faults.attempt"`` from a
    campaign trial).  It is opt-in per call site because ``run`` is also
    the inner engine of exploration oracles, where a span per call would
    flood the event stream; the ``runtime.runs`` / ``runtime.steps``
    counters are recorded regardless, and no instrumentation ever runs
    inside the per-step loop.  ``telemetry_attrs`` adds deterministic
    attributes to that span — the fault campaign stamps the retry
    attempt index this way, so a retried attempt is distinguishable from
    its predecessor in the stitched trace.
    """
    if on_limit not in ("raise", "return"):
        raise ValueError(f"on_limit must be 'raise' or 'return', got {on_limit!r}")
    start = initial if initial is not None else system.initial_configuration()
    execution = Execution(system=system, initial=start)
    if hasattr(scheduler, "reset"):
        scheduler.reset()
    if telemetry_span is None:
        return _drive(system, scheduler, execution, max_steps, stop,
                      on_limit, monitors)
    with telemetry.span(
        telemetry_span, protocol=system.automaton.name, n=system.n,
        **(telemetry_attrs or {}),
    ) as sp:
        _drive(system, scheduler, execution, max_steps, stop, on_limit, monitors)
        sp.set(steps=execution.steps, hit_step_limit=execution.hit_step_limit)
    return execution


def _drive(
    system: System,
    scheduler,
    execution: Execution,
    max_steps: int,
    stop: Optional[StopCondition],
    on_limit: str,
    monitors: Optional[Sequence[Monitor]],
) -> Execution:
    """The scheduler-driven step loop behind :func:`run`.

    The ``finally`` clause records the run-level counters on every exit
    path — quiescence, stop conditions, budget raises, monitor raises —
    so ``runtime.steps`` accounts for work that ended in an exception too.
    """
    try:
        while True:
            if stop is not None and stop(execution.config, execution.events):
                return execution
            enabled = system.enabled_pids(execution.config)
            if not enabled:
                return execution
            if execution.steps >= max_steps:
                if on_limit == "return":
                    execution.hit_step_limit = True
                    return execution
                raise StepLimitExceeded(
                    f"run exceeded {max_steps} steps without terminating "
                    f"({system.automaton.name}, n={system.n})"
                )
            pid = scheduler.choose(
                execution.config, system, enabled, execution.steps
            )
            if pid is None:
                return execution
            if pid not in enabled:
                raise NotEnabledError(
                    f"scheduler chose disabled process {pid} (enabled: {enabled})"
                )
            event = execution.append_step(pid)
            if monitors:
                for monitor in monitors:
                    monitor(execution.config, event)
    finally:
        telemetry.counter("runtime.runs")
        telemetry.counter("runtime.steps", execution.steps)


def replay(
    system: System,
    schedule: Sequence[int],
    *,
    initial: Optional[Configuration] = None,
) -> Execution:
    """Re-execute *schedule* exactly; raises if any chosen pid is disabled."""
    start = initial if initial is not None else system.initial_configuration()
    execution = Execution(system=system, initial=start)
    for pid in schedule:
        execution.append_step(pid)
    return execution


def run_until_quiescent(
    system: System,
    scheduler,
    *,
    max_steps: int = 100_000,
    initial: Optional[Configuration] = None,
) -> Execution:
    """Run until every process has completed its entire workload."""
    return run(system, scheduler, max_steps=max_steps, initial=initial)


def run_solo(
    system: System,
    pid: int,
    *,
    initial: Optional[Configuration] = None,
    max_steps: int = 100_000,
    until_decisions: Optional[int] = None,
) -> Execution:
    """Run only process *pid* until it halts (or completes *until_decisions*).

    Solo runs are the obstruction-free regime with ``|P| = 1`` and the basic
    building block of the covering construction (Theorem 2's γ fragments for
    ``m = 1``).
    """
    start = initial if initial is not None else system.initial_configuration()
    execution = Execution(system=system, initial=start)
    while system.enabled(execution.config, pid):
        if until_decisions is not None:
            if len(execution.config.procs[pid].outputs) >= until_decisions:
                return execution
        if execution.steps >= max_steps:
            raise StepLimitExceeded(
                f"solo run of process {pid} exceeded {max_steps} steps; the "
                "protocol may not be obstruction-free at this register count"
            )
        execution.append_step(pid)
    return execution


def schedule_of(events_or_execution) -> List[int]:
    """Extract the pid schedule from an execution (convenience)."""
    if isinstance(events_or_execution, Execution):
        return list(events_or_execution.schedule)
    return [e.pid for e in events_or_execution]
