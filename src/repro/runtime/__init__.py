"""Deterministic simulation runtime for asynchronous shared memory.

The runtime realizes the paper's interleaving model (§2) as pure functions:

* a :class:`~repro.runtime.system.Configuration` is an immutable value
  holding every process's local state and the contents of every register;
* :meth:`~repro.runtime.system.System.step` maps ``(configuration, pid)`` to
  the next configuration plus an :mod:`event <repro.runtime.events>`
  describing the atomic step taken.

Because steps are pure, executions are fully determined by their schedule
(the sequence of chosen process ids); they can be replayed, spliced and
explored exhaustively — which is exactly what the paper's lower-bound
constructions require.
"""

from repro.runtime.automaton import Context, Decide, ProtocolAutomaton
from repro.runtime.frames import ImplContext, ObjectImplementation, Return
from repro.runtime.system import (
    ActiveOp,
    Configuration,
    ProcState,
    Slot,
    System,
)
from repro.runtime.events import DecideEvent, Event, InvokeEvent, MemoryEvent
from repro.runtime.runner import Execution, replay, run, run_until_quiescent

__all__ = [
    "Context",
    "Decide",
    "ProtocolAutomaton",
    "ImplContext",
    "ObjectImplementation",
    "Return",
    "ActiveOp",
    "Configuration",
    "ProcState",
    "Slot",
    "System",
    "Event",
    "InvokeEvent",
    "MemoryEvent",
    "DecideEvent",
    "Execution",
    "run",
    "replay",
    "run_until_quiescent",
]
