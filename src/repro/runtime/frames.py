"""Frames: executing object operations as sequences of register steps.

The paper's algorithms are written against snapshot objects, but all of its
space bounds count *registers*.  The bridge is a register-level *object
implementation*: a deterministic state machine that, given one high-level
operation (say ``scan()``), performs a sequence of atomic register accesses
and eventually returns the operation's response.

When a :class:`~repro.memory.layout.MemoryLayout` binds an object to an
:class:`ObjectImplementation`, the runtime opens a *frame* for each
high-level operation issued against it and advances the frame one register
access per process step.  The algorithm above is oblivious: it sees only the
final response.  This yields the correct step granularity — a scan that is
implemented from registers is interruptible between register reads, exactly
the regime in which the non-blocking anonymous snapshot of [7] can starve
(and which the paper's Figure 5 handles with its second thread).

Implementations may keep *persistent* per-process state across operations
(e.g. sequence numbers in the Afek-et-al. snapshot); the runtime threads it
through :class:`Return`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Tuple, Union

from repro._types import Params, Value
from repro.memory.layout import BankSpec
from repro.memory.ops import Op


@dataclass(frozen=True, slots=True)
class ImplContext:
    """Context for an object implementation: which process, which banks.

    ``banks`` are the names of the register banks the implementation owns
    (in the order it declared them); all its operations must target those.
    """

    pid: int
    n: int
    params: Params
    banks: Tuple[str, ...]
    anonymous: bool = False


@dataclass(frozen=True, slots=True)
class Return:
    """Terminal action of a frame: the operation's response.

    ``persistent`` is the implementation's new cross-operation state for
    this process.
    """

    response: Value
    persistent: Any


FrameAction = Union[Op, Return]


class ObjectImplementation(ABC):
    """Register-level implementation of a shared object.

    Subclasses declare the register banks they need (:meth:`bank_specs`) and
    implement a state machine with the same pending/apply discipline as
    protocol automata.  Frame states must be immutable and hashable.
    """

    #: human-readable implementation name
    name: str = "object-impl"

    def __init__(self, params: Params) -> None:
        self.params = params

    @abstractmethod
    def bank_specs(self, prefix: str) -> Tuple[BankSpec, ...]:
        """Banks this implementation needs, with names under *prefix*."""

    def initial_persistent(self, ictx: ImplContext) -> Any:
        """Cross-operation per-process state; default: none."""
        return None

    @abstractmethod
    def begin(self, ictx: ImplContext, persistent: Any, op: Op) -> Any:
        """Open a frame for high-level operation *op*; return frame state."""

    @abstractmethod
    def pending(self, ictx: ImplContext, state: Any) -> FrameAction:
        """The frame's next register access, or :class:`Return`."""

    @abstractmethod
    def apply(self, ictx: ImplContext, state: Any, response: Value) -> Any:
        """Frame transition on the response of its pending register access."""


@dataclass(frozen=True, slots=True)
class Frame:
    """A live frame: the object being operated on and the impl's state.

    Part of the packed codec's fixed skeleton
    (:mod:`repro.explore.packed` assigns it a one-byte class index), so
    adding, removing, or reordering fields is a serialization format
    change: bump :data:`repro.explore.cache.CACHE_VERSION` alongside.
    """

    obj: str
    state: Any
