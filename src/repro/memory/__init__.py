"""Shared-memory model: operations, register banks, snapshots and layouts."""

from repro.memory.ops import (
    Op,
    ReadOp,
    WriteOp,
    UpdateOp,
    ScanOp,
    is_write_access,
    written_register,
)
from repro.memory.layout import (
    BankSpec,
    MemoryLayout,
    PrimitiveBinding,
    ImplementedBinding,
    RegisterCoord,
)

__all__ = [
    "Op",
    "ReadOp",
    "WriteOp",
    "UpdateOp",
    "ScanOp",
    "is_write_access",
    "written_register",
    "BankSpec",
    "MemoryLayout",
    "PrimitiveBinding",
    "ImplementedBinding",
    "RegisterCoord",
]
