"""Pure semantics of the atomic multi-writer snapshot object [1].

A snapshot object with ``r`` components supports two atomic operations
(paper §2): ``update(i, v)`` writes ``v`` to component ``i`` and ``scan()``
returns the vector of the most recently written values of all components.

Here the object is a *primitive*: each operation is one atomic step.  The
paper charges a primitive snapshot with ``r`` components exactly ``r``
registers, because it can be implemented from that many registers when
``r ≤ n`` ([5]; Theorem 7's accounting).  Register-level implementations that
make that accounting concrete live in :mod:`repro.objects`.

The component tuple representation is shared with register banks, so a
snapshot's state *is* a bank; ``update`` delegates to the register write and
``scan`` returns the whole bank.
"""

from __future__ import annotations

from typing import Tuple

from repro._types import Value
from repro.memory import register

Components = Tuple[Value, ...]


def update(components: Components, index: int, value: Value) -> Components:
    """Return new component vector with component *index* set to *value*."""
    return register.write(components, index, value)


def scan(components: Components) -> Components:
    """Return the full component vector (atomically, as one step)."""
    return components
