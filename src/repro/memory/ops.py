"""The operation ADT: atomic shared-memory accesses issued by automata.

Four operation kinds cover everything the paper's algorithms need:

* :class:`ReadOp` / :class:`WriteOp` — accesses to a single register of a
  register bank (multi-writer multi-reader, per the paper's model §2).
* :class:`UpdateOp` / :class:`ScanOp` — accesses to a snapshot object [1]:
  ``update(i, v)`` writes value ``v`` to component ``i`` and ``scan()``
  returns the vector of all components.

Operations name their target *object*; a :class:`~repro.memory.layout.MemoryLayout`
resolves the name either to a primitive (atomic) object or to a register-level
implementation executed step-by-step (see :mod:`repro.runtime.frames`).

All operation classes are frozen dataclasses, hence hashable: executions and
events containing them can be stored in sets and compared structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro._types import Value


@dataclass(frozen=True)
class ReadOp:
    """Atomically read register ``index`` of register bank ``obj``."""

    obj: str
    index: int

    def __repr__(self) -> str:
        return f"read({self.obj}[{self.index}])"


@dataclass(frozen=True)
class WriteOp:
    """Atomically write ``value`` to register ``index`` of bank ``obj``."""

    obj: str
    index: int
    value: Value

    def __repr__(self) -> str:
        return f"write({self.obj}[{self.index}] := {self.value!r})"


@dataclass(frozen=True)
class UpdateOp:
    """Atomically write ``value`` to component ``component`` of snapshot ``obj``."""

    obj: str
    component: int
    value: Value

    def __repr__(self) -> str:
        return f"update({self.obj}[{self.component}] := {self.value!r})"


@dataclass(frozen=True)
class ScanOp:
    """Atomically read all components of snapshot object ``obj``."""

    obj: str

    def __repr__(self) -> str:
        return f"scan({self.obj})"


Op = Union[ReadOp, WriteOp, UpdateOp, ScanOp]


def is_write_access(op: Op) -> bool:
    """Return ``True`` iff *op* modifies shared memory.

    The space lower bounds in the paper only track *writes* (covering
    arguments erase written registers with block writes; reads are free), so
    several constructions key off this predicate.
    """
    return isinstance(op, (WriteOp, UpdateOp))


def written_register(op: Op) -> Optional[tuple[str, int]]:
    """Return the ``(object, index)`` pair written by *op*, or ``None``.

    Snapshot updates count as writes to the single component they modify:
    treating components as registers only *strengthens* covering arguments
    (a scan reads all components in one step but writes nothing), and it is
    exactly the accounting the paper uses when it charges a snapshot object
    with ``r`` components ``r`` registers (Theorem 7).
    """
    if isinstance(op, WriteOp):
        return (op.obj, op.index)
    if isinstance(op, UpdateOp):
        return (op.obj, op.component)
    return None
