"""Pure semantics of multi-writer multi-reader register banks.

A *bank* is an immutable tuple of register values.  These helpers implement
the two atomic register operations of the paper's model (§2): a read returns
the current value of one register and a write replaces it.  Both are pure
functions over tuples so the runtime can keep whole configurations immutable
and hashable.

The module also provides the *fault-aware* variants of the two operations
used by the chaos campaigns (:mod:`repro.faults`): a lost write, a read
against a stuck-at register, and a spurious reset.  The paper's model
assumes registers are **reliable** — its algorithms tolerate arbitrary
process crashes but provably cannot tolerate register corruption — so
these variants exist to *demonstrate* that boundary, never to run under a
correctness claim.  Each is as pure as its healthy counterpart: which
occurrence of an access a fault hits is decided by the caller (the fault
clock lives in the memory state, see :mod:`repro.faults.layout`), keeping
corrupted executions exactly as replayable as healthy ones.
"""

from __future__ import annotations

from typing import Tuple

from repro._types import Value
from repro.errors import MemoryError_

Bank = Tuple[Value, ...]


def read(bank: Bank, index: int) -> Value:
    """Return the value of register *index* in *bank*.

    Raises :class:`~repro.errors.MemoryError_` on an out-of-range index so a
    buggy automaton fails loudly rather than wrapping around (negative Python
    indices would otherwise silently alias the end of the bank).
    """
    _check_index(bank, index)
    return bank[index]


def write(bank: Bank, index: int, value: Value) -> Bank:
    """Return a new bank equal to *bank* with register *index* set to *value*."""
    _check_index(bank, index)
    return bank[:index] + (value,) + bank[index + 1 :]


def lost_write(bank: Bank, index: int, value: Value) -> Bank:
    """A write that the register silently drops (omission fault).

    The writer observes a normal completion; the bank is unchanged.  The
    *value* and *index* are still validated — a fault injector must not
    mask genuine protocol bugs such as out-of-range accesses.
    """
    _check_index(bank, index)
    return bank


def stuck_read(bank: Bank, index: int, stuck_value: Value) -> Value:
    """A read against a register stuck at *stuck_value*.

    The stored content is ignored; every read observes the stuck value
    (writes to a stuck register are dropped by the injector, so the two
    halves together model a stuck-at register).
    """
    _check_index(bank, index)
    return stuck_value


def spurious_reset(bank: Bank, index: int, initial: Value) -> Bank:
    """Register *index* spontaneously reverts to its initial value.

    Models a transient hardware upset: the register forgets every write it
    absorbed and reports *initial* (the bank's declared starting value,
    typically ⊥) until written again.
    """
    _check_index(bank, index)
    return write(bank, index, initial)


def _check_index(bank: Bank, index: int) -> None:
    if not isinstance(index, int) or index < 0 or index >= len(bank):
        raise MemoryError_(
            f"register index {index!r} out of range for bank of size {len(bank)}"
        )
