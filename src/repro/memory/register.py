"""Pure semantics of multi-writer multi-reader register banks.

A *bank* is an immutable tuple of register values.  These helpers implement
the two atomic register operations of the paper's model (§2): a read returns
the current value of one register and a write replaces it.  Both are pure
functions over tuples so the runtime can keep whole configurations immutable
and hashable.
"""

from __future__ import annotations

from typing import Tuple

from repro._types import Value
from repro.errors import MemoryError_

Bank = Tuple[Value, ...]


def read(bank: Bank, index: int) -> Value:
    """Return the value of register *index* in *bank*.

    Raises :class:`~repro.errors.MemoryError_` on an out-of-range index so a
    buggy automaton fails loudly rather than wrapping around (negative Python
    indices would otherwise silently alias the end of the bank).
    """
    _check_index(bank, index)
    return bank[index]


def write(bank: Bank, index: int, value: Value) -> Bank:
    """Return a new bank equal to *bank* with register *index* set to *value*."""
    _check_index(bank, index)
    return bank[:index] + (value,) + bank[index + 1 :]


def _check_index(bank: Bank, index: int) -> None:
    if not isinstance(index, int) or index < 0 or index >= len(bank):
        raise MemoryError_(
            f"register index {index!r} out of range for bank of size {len(bank)}"
        )
