"""Memory layouts: named shared objects resolved onto register banks.

Algorithms issue operations against *named objects* ("A", "H", ...).  A
:class:`MemoryLayout` declares, for each object, either:

* a :class:`PrimitiveBinding` — the object is atomic; its state lives in one
  register bank and every operation on it completes in a single step; or
* an :class:`ImplementedBinding` — the object is implemented from registers
  by an :class:`~repro.runtime.frames.ObjectImplementation`; operations
  expand into sequences of register steps on the banks the implementation
  owns (this is how the paper's snapshot-from-registers constructions are
  exercised, see :mod:`repro.objects`).

The layout also owns the library's *space accounting*: the total number of
registers a system uses — the quantity all of the paper's bounds are about —
is the sum of bank sizes (:meth:`MemoryLayout.register_count`).  A primitive
snapshot with ``r`` components therefore costs ``r`` registers, matching the
paper's accounting (Theorem 7, [5]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro._types import BOT, Value
from repro.errors import ConfigurationError, MemoryError_, ProtocolViolation
from repro.memory import register as register_sem
from repro.memory.ops import Op, ReadOp, ScanOp, UpdateOp, WriteOp

MemoryState = Tuple[Tuple[Value, ...], ...]


@dataclass(frozen=True, slots=True)
class RegisterCoord:
    """Global coordinates of one register: (bank position, index in bank)."""

    bank: int
    index: int

    def __repr__(self) -> str:
        return f"r[{self.bank}.{self.index}]"


@dataclass(frozen=True)
class BankSpec:
    """Declaration of one register bank.

    ``initial`` is the value every register of the bank starts with; the
    paper's algorithms initialize everything to ⊥.
    """

    name: str
    size: int
    initial: Value = BOT

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(f"bank {self.name!r} must have size >= 1")

    def initial_bank(self) -> Tuple[Value, ...]:
        """The bank's initial contents (every register at ``initial``)."""
        return (self.initial,) * self.size


@dataclass(frozen=True)
class PrimitiveBinding:
    """Bind an object name to an atomic bank.

    ``kind`` is ``"registers"`` (accepts :class:`ReadOp`/:class:`WriteOp`) or
    ``"snapshot"`` (accepts :class:`UpdateOp`/:class:`ScanOp`).
    """

    kind: str
    bank: str

    def __post_init__(self) -> None:
        if self.kind not in ("registers", "snapshot"):
            raise ConfigurationError(f"unknown primitive kind {self.kind!r}")


@dataclass(frozen=True)
class ImplementedBinding:
    """Bind an object name to a register-level implementation.

    ``impl`` is an :class:`~repro.runtime.frames.ObjectImplementation`; it is
    given the listed banks to work with.  The layout stays agnostic of the
    implementation's internals — the runtime drives it through frames.
    """

    impl: Any
    banks: Tuple[str, ...]


Binding = Any  # PrimitiveBinding | ImplementedBinding


class MemoryLayout:
    """An immutable description of a system's shared memory.

    Build one with :meth:`builder` or the convenience constructors in
    protocol modules; afterwards it only answers pure queries and applies
    primitive operations functionally.
    """

    def __init__(
        self,
        banks: Tuple[BankSpec, ...],
        objects: Mapping[str, Binding],
    ) -> None:
        names = [bank.name for bank in banks]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate bank names in {names}")
        self._banks = banks
        self._bank_index: Dict[str, int] = {b.name: i for i, b in enumerate(banks)}
        self._objects: Dict[str, Binding] = dict(objects)
        # Every bank is implicitly addressable as a plain register object
        # under its own name; object implementations rely on this to issue
        # register accesses against the banks they own.
        for bank in banks:
            self._objects.setdefault(
                bank.name, PrimitiveBinding("registers", bank.name)
            )
        for obj_name, binding in self._objects.items():
            for bank_name in self._banks_of(binding):
                if bank_name not in self._bank_index:
                    raise ConfigurationError(
                        f"object {obj_name!r} refers to unknown bank {bank_name!r}"
                    )

    @staticmethod
    def _banks_of(binding: Binding) -> Tuple[str, ...]:
        if isinstance(binding, PrimitiveBinding):
            return (binding.bank,)
        if isinstance(binding, ImplementedBinding):
            return binding.banks
        raise ConfigurationError(f"unknown binding type {type(binding).__name__}")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def banks(self) -> Tuple[BankSpec, ...]:
        return self._banks

    @property
    def object_names(self) -> Tuple[str, ...]:
        return tuple(self._objects)

    def binding(self, obj: str) -> Binding:
        """The binding of object *obj* (raises on unknown names)."""
        try:
            return self._objects[obj]
        except KeyError:
            raise ProtocolViolation(f"operation on unknown object {obj!r}") from None

    def bank_index(self, name: str) -> int:
        """Position of bank *name* in the memory-state tuple."""
        try:
            return self._bank_index[name]
        except KeyError:
            raise MemoryError_(f"unknown bank {name!r}") from None

    def bank_size(self, name: str) -> int:
        """Number of registers in bank *name*."""
        return self._banks[self.bank_index(name)].size

    def register_count(self) -> int:
        """Total registers used by the system — the paper's space measure."""
        return sum(bank.size for bank in self._banks)

    def coord(self, bank_name: str, index: int) -> RegisterCoord:
        """Global coordinates of register *index* of bank *bank_name*."""
        bank = self.bank_index(bank_name)
        if index < 0 or index >= self._banks[bank].size:
            raise MemoryError_(
                f"index {index} out of range for bank {bank_name!r} "
                f"of size {self._banks[bank].size}"
            )
        return RegisterCoord(bank, index)

    def op_coord(self, op: Op) -> Optional[RegisterCoord]:
        """Global coordinates of the register written by *op*, or ``None``.

        Only meaningful for ops that target primitive-bound objects (after
        frame expansion every write is one); used by covering constructions.
        """
        binding = self.binding(op.obj)
        if isinstance(op, WriteOp):
            return self.coord(_primitive_bank(binding, op), op.index)
        if isinstance(op, UpdateOp):
            return self.coord(_primitive_bank(binding, op), op.component)
        return None

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    def initial_memory(self) -> MemoryState:
        """The initial contents of every bank, as the state tuple."""
        return tuple(bank.initial_bank() for bank in self._banks)

    def apply_primitive(
        self, memory: MemoryState, op: Op
    ) -> Tuple[MemoryState, Value]:
        """Apply *op* (which must target a primitive binding) atomically.

        Returns ``(new_memory, response)``.  Reads and scans leave memory
        unchanged; writes and updates return ``None`` as their response, per
        the operation signatures in the paper's model.
        """
        binding = self.binding(op.obj)
        bank_name = _primitive_bank(binding, op)
        bank_pos = self.bank_index(bank_name)
        bank = memory[bank_pos]
        if isinstance(op, ReadOp):
            _require_kind(binding, "registers", op)
            return memory, register_sem.read(bank, op.index)
        if isinstance(op, WriteOp):
            _require_kind(binding, "registers", op)
            new_bank = register_sem.write(bank, op.index, op.value)
            return _replace_bank(memory, bank_pos, new_bank), None
        if isinstance(op, ScanOp):
            _require_kind(binding, "snapshot", op)
            return memory, bank
        if isinstance(op, UpdateOp):
            _require_kind(binding, "snapshot", op)
            new_bank = register_sem.write(bank, op.component, op.value)
            return _replace_bank(memory, bank_pos, new_bank), None
        raise ProtocolViolation(f"unknown operation {op!r}")

    # ------------------------------------------------------------------ #
    # Construction helper
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, *entries: Tuple[str, Binding, BankSpec]) -> "MemoryLayout":
        """Build a layout from ``(object_name, binding, *bank_specs)`` rows.

        Convenience for the common one-bank-per-object case; richer layouts
        can call the constructor directly.
        """
        banks: list[BankSpec] = []
        objects: dict[str, Binding] = {}
        for name, binding, *bank_specs in entries:  # type: ignore[misc]
            objects[name] = binding
            banks.extend(bank_specs)  # type: ignore[arg-type]
        return cls(tuple(banks), objects)


def _primitive_bank(binding: Binding, op: Op) -> str:
    if isinstance(binding, PrimitiveBinding):
        return binding.bank
    raise ProtocolViolation(
        f"operation {op!r} targets an implemented object; it must be expanded "
        "through a frame, not applied atomically"
    )


def _require_kind(binding: PrimitiveBinding, kind: str, op: Op) -> None:
    if binding.kind != kind:
        raise ProtocolViolation(
            f"operation {op!r} is not valid on a {binding.kind!r} object"
        )


def _replace_bank(
    memory: MemoryState, position: int, bank: Tuple[Value, ...]
) -> MemoryState:
    return memory[:position] + (bank,) + memory[position + 1 :]


def snapshot_layout(name: str, components: int, *, initial: Value = BOT) -> MemoryLayout:
    """Layout with a single primitive snapshot object *name* of ``components``."""
    bank = BankSpec(name=f"{name}__bank", size=components, initial=initial)
    return MemoryLayout((bank,), {name: PrimitiveBinding("snapshot", bank.name)})


def register_layout(name: str, size: int, *, initial: Value = BOT) -> MemoryLayout:
    """Layout with a single primitive register bank *name* of ``size``."""
    bank = BankSpec(name=f"{name}__bank", size=size, initial=initial)
    return MemoryLayout((bank,), {name: PrimitiveBinding("registers", bank.name)})


def merge_layouts(*layouts: MemoryLayout) -> MemoryLayout:
    """Combine several layouts into one (names must not collide)."""
    banks: list[BankSpec] = []
    objects: dict[str, Binding] = {}
    for layout in layouts:
        banks.extend(layout.banks)
        for obj in layout.object_names:
            if obj in objects:
                raise ConfigurationError(f"duplicate object name {obj!r} in merge")
            objects[obj] = layout.binding(obj)
    return MemoryLayout(tuple(banks), objects)
