"""Input workload generators for benchmarks and stress tests.

Set agreement's difficulty depends on the input *pattern*: all-distinct
inputs maximize the number of candidate outputs (the regime the lower
bounds reason about), clustered inputs let decisions happen early, and
near-unanimous inputs probe the validity corner.  Every generator returns
one input sequence per process, globally unique strings unless stated
otherwise, so outputs can be traced back to their proposer.
"""

from __future__ import annotations

from typing import List

from repro._types import Value


def distinct_inputs(n: int, instances: int = 1, prefix: str = "v") -> List[List[Value]]:
    """Globally distinct inputs: process i proposes ``{prefix}{i}.{t}``."""
    return [[f"{prefix}{i}.{t}" for t in range(instances)] for i in range(n)]


def clustered_inputs(
    n: int, clusters: int, instances: int = 1, prefix: str = "c"
) -> List[List[Value]]:
    """Only *clusters* distinct values per instance, round-robin assigned.

    With ``clusters <= k`` every execution trivially satisfies k-agreement;
    with ``clusters = k+1`` the algorithm must actually eliminate a value —
    benchmarks use both sides of that line.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    return [
        [f"{prefix}{i % clusters}.{t}" for t in range(instances)]
        for i in range(n)
    ]


def adversarial_inputs(
    n: int, instances: int = 1, prefix: str = "a"
) -> List[List[Value]]:
    """One dissenting process, everyone else unanimous per instance.

    The dissenter rotates across instances, so repeated runs exercise the
    preference-adoption machinery from every position.
    """
    workloads: List[List[Value]] = [[] for _ in range(n)]
    for t in range(instances):
        dissenter = t % n
        for i in range(n):
            if i == dissenter:
                workloads[i].append(f"{prefix}-dissent.{t}")
            else:
                workloads[i].append(f"{prefix}-common.{t}")
    return workloads
