"""Benchmark harness utilities: workloads, sweeps and paper-style tables."""

from repro.bench.workloads import (
    adversarial_inputs,
    clustered_inputs,
    distinct_inputs,
)
from repro.bench.sweep import SweepRow, bounded_adversary_run, sweep_protocol
from repro.bench.tables import format_table

__all__ = [
    "distinct_inputs",
    "clustered_inputs",
    "adversarial_inputs",
    "SweepRow",
    "bounded_adversary_run",
    "sweep_protocol",
    "format_table",
]
