"""Plain-text tables in the style the paper's Figure 1 uses.

No external dependencies: benchmarks print through ``format_table`` so the
rows the paper reports and the rows we measure line up visually in
``bench_output.txt`` and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned ASCII table; numbers are right-aligned."""
    materialized: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
