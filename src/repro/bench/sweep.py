"""Parameter sweeps: run a protocol across (n, m, k) grids and collect rows.

The benchmark files in ``benchmarks/`` are thin: they call these helpers
with the experiment's grid and print the resulting table.  One *run* means:
build a fresh system, schedule a contended random prelude, then let an
m-bounded survivor set finish — the canonical m-obstruction-free episode —
and record step/space metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.bench.workloads import distinct_inputs
from repro.runtime.runner import Execution, run
from repro.runtime.system import System
from repro.sched.bounded import EventuallyBoundedScheduler
from repro.sched.random_walk import RandomScheduler
from repro.spec.properties import assert_execution_safe
from repro.spec.stats import execution_stats


@dataclass(frozen=True)
class SweepRow:
    """One (n, m, k) sweep point with its aggregate measurements."""

    n: int
    m: int
    k: int
    registers: int
    runs: int
    mean_steps: float
    max_steps: int
    mean_memory_steps: float
    distinct_outputs: int  # max over runs of per-run distinct instance-1 outputs


def bounded_adversary_run(
    system: System,
    survivors: Sequence[int],
    *,
    seed: int,
    prelude_steps: int = 60,
    max_steps: int = 400_000,
) -> Execution:
    """One m-obstruction-free episode: random prelude, then only survivors."""
    scheduler = EventuallyBoundedScheduler(
        survivors=survivors,
        prelude_steps=prelude_steps,
        prelude=RandomScheduler(seed=seed),
    )
    return run(system, scheduler, max_steps=max_steps)


def sweep_protocol(
    protocol_factory: Callable[[int, int, int], object],
    grid: Sequence[Tuple[int, int, int]],
    *,
    seeds: Sequence[int] = (1, 2, 3),
    instances: int = 1,
    layout_factory: Optional[Callable[[object], object]] = None,
    prelude_steps: int = 60,
    max_steps: int = 400_000,
    check_safety: bool = True,
) -> List[SweepRow]:
    """Run ``protocol_factory(n, m, k)`` over *grid* × *seeds*; collect rows.

    Safety is asserted on every run (a benchmark that silently measured an
    unsafe execution would be worse than useless); survivors are the first
    ``m`` processes — rotating them is the job of the progress tests, not
    the timing benches.
    """
    rows: List[SweepRow] = []
    for n, m, k in grid:
        total_steps = 0
        total_memory = 0
        peak = 0
        worst_distinct = 0
        registers = 0
        for seed in seeds:
            protocol = protocol_factory(n, m, k)
            layout = layout_factory(protocol) if layout_factory else None
            system = System(
                protocol,
                workloads=distinct_inputs(n, instances=instances),
                layout=layout,
            )
            registers = system.layout.register_count()
            execution = bounded_adversary_run(
                system,
                survivors=list(range(m)),
                seed=seed,
                prelude_steps=prelude_steps,
                max_steps=max_steps,
            )
            if check_safety:
                assert_execution_safe(execution, k=k)
            stats = execution_stats(execution)
            total_steps += stats.total_steps
            total_memory += stats.memory_steps
            peak = max(peak, stats.total_steps)
            worst_distinct = max(
                worst_distinct, len(set(execution.instance_outputs(1)))
            )
        rows.append(
            SweepRow(
                n=n,
                m=m,
                k=k,
                registers=registers,
                runs=len(seeds),
                mean_steps=total_steps / len(seeds),
                max_steps=peak,
                mean_memory_steps=total_memory / len(seeds),
                distinct_outputs=worst_distinct,
            )
        )
    return rows
