"""A contention-maximizing heuristic adversary.

Obstruction-free algorithms make progress only without interference; this
adversary manufactures interference.  Each step it prefers a process whose
*next* access is a write (inspected via :meth:`System.peek` — legal for an
adaptive adversary in the standard model, which sees internal states), so
written registers keep changing under everyone's feet and preference-
adoption loops (Figures 3–5) are stressed maximally.  Among writers it
round-robins, which empirically keeps all preferences circulating.

Used by the adversary-ablation benchmark (E8) and by liveness stress tests:
the paper's algorithms must *still* decide once the adversary is m-bounded,
and must never violate safety meanwhile.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.memory.ops import is_write_access
from repro.runtime.events import MemoryEvent
from repro.sched.base import Scheduler


class WriterPriorityScheduler(Scheduler):
    """Prefer processes poised to write; round-robin within each class."""

    def __init__(self, subset: Optional[Iterable[int]] = None) -> None:
        self._subset = tuple(sorted(set(subset))) if subset is not None else None
        self._cursor = 0

    def choose(self, config, system, enabled, step_index):
        candidates = (
            [pid for pid in self._subset if pid in enabled]
            if self._subset is not None
            else list(enabled)
        )
        if not candidates:
            return None
        writers = []
        for pid in candidates:
            event = system.peek(config, pid)
            if isinstance(event, MemoryEvent) and is_write_access(event.op):
                writers.append(pid)
        pool = writers if writers else candidates
        pid = pool[self._cursor % len(pool)]
        self._cursor += 1
        return pid

    def reset(self) -> None:
        self._cursor = 0
