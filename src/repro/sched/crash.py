"""Crash-failure adversary: processes stop taking steps — maybe forever.

A crashed process is indistinguishable, to the others, from a very slow one
— the fundamental fact of asynchrony.  Crashing all but ``m`` processes
turns any base scheduler into an m-bounded one, so this adversary doubles
as a failure-injection tool for the progress benchmarks and the fault
campaigns (:mod:`repro.faults`).

Two failure models are covered:

* **crash-stop** — ``crashes`` alone: a crashed process never steps again;
* **crash-recovery** — ``restarts`` additionally names the step at which a
  crashed process resumes.  In the paper's model all state a process needs
  lives in its local state and the (reliable) registers, both of which
  survive the crash, so recovery is simply "gets scheduled again": the
  process continues from the exact point it stopped — including mid-
  operation, e.g. between a collect and the write it was poised to take.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import ConfigurationError, NotEnabledError
from repro.sched.base import Scheduler
from repro.sched.round_robin import RoundRobinScheduler


class CrashScheduler(Scheduler):
    """Wrap *base*, excluding pids while they are crashed.

    ``crashes`` maps pid -> global step index at which the process crashes
    (it takes no step at or after that index).  ``restarts`` optionally
    maps pid -> step index at which it recovers; a restart must not precede
    its crash.  When every live process is done but some crashed process
    still has a pending restart, the adversary fast-forwards: it schedules
    the earliest-restarting such process immediately (idling until the
    nominal restart step would change no one's view, since only steps
    advance the clock).
    """

    def __init__(
        self,
        crashes: Mapping[int, int],
        base: Optional[Scheduler] = None,
        restarts: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.crashes = dict(crashes)
        self.restarts = dict(restarts or {})
        for pid, at_step in self.restarts.items():
            if pid not in self.crashes:
                raise ConfigurationError(
                    f"restart for pid {pid} without a matching crash"
                )
            if at_step < self.crashes[pid]:
                raise ConfigurationError(
                    f"pid {pid} restarts at step {at_step}, before its "
                    f"crash at step {self.crashes[pid]}"
                )
        self._base = base if base is not None else RoundRobinScheduler()

    def _is_alive(self, pid: int, step_index: int) -> bool:
        if pid not in self.crashes or step_index < self.crashes[pid]:
            return True
        return pid in self.restarts and step_index >= self.restarts[pid]

    def _alive(self, enabled, step_index):
        return tuple(
            pid for pid in enabled if self._is_alive(pid, step_index)
        )

    def choose(self, config, system, enabled, step_index):
        alive = self._alive(enabled, step_index)
        if not alive:
            # Fast-forward to the earliest pending restart, if any.
            pending = [
                pid
                for pid in enabled
                if pid in self.restarts and step_index < self.restarts[pid]
            ]
            if not pending:
                return None
            return min(pending, key=lambda pid: (self.restarts[pid], pid))
        # The base scheduler only ever sees live processes, so re-asking it
        # on a bad answer could never help (a deterministic base would just
        # repeat itself); a pid outside the offered set is a broken base
        # scheduler and fails loudly instead.
        pid = self._base.choose(config, system, alive, step_index)
        if pid is not None and pid not in alive:
            raise NotEnabledError(
                f"base scheduler chose pid {pid} outside the offered "
                f"live set {alive}"
            )
        return pid

    def reset(self) -> None:
        self._base.reset()
