"""Crash-failure adversary: processes stop taking steps forever.

A crashed process is indistinguishable, to the others, from a very slow one
— the fundamental fact of asynchrony.  Crashing all but ``m`` processes
turns any base scheduler into an m-bounded one, so this adversary doubles
as a failure-injection tool for the progress benchmarks.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.sched.base import Scheduler
from repro.sched.round_robin import RoundRobinScheduler


class CrashScheduler(Scheduler):
    """Wrap *base*, permanently excluding pids once their crash step passes.

    ``crashes`` maps pid -> global step index at which the process crashes
    (it takes no step at or after that index).
    """

    def __init__(
        self, crashes: Mapping[int, int], base: Optional[Scheduler] = None
    ) -> None:
        self.crashes = dict(crashes)
        self._base = base if base is not None else RoundRobinScheduler()

    def _alive(self, enabled, step_index):
        return tuple(
            pid
            for pid in enabled
            if pid not in self.crashes or step_index < self.crashes[pid]
        )

    def choose(self, config, system, enabled, step_index):
        alive = self._alive(enabled, step_index)
        if not alive:
            return None
        # Re-ask the base scheduler until it proposes a live process; a base
        # scheduler that insists on a crashed pid forever ends the run.
        for _ in range(len(enabled) + 1):
            pid = self._base.choose(config, system, alive, step_index)
            if pid is None:
                return None
            if pid in alive:
                return pid
        return None

    def reset(self) -> None:
        self._base.reset()
