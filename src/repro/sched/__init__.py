"""Schedulers (adversaries) controlling interleavings of the simulated system.

In the asynchronous model, progress properties quantify over the adversary's
choices of which process steps next.  Each scheduler here is a deterministic
or seeded strategy; the runner records the schedule actually taken so any
run can be replayed exactly.

The family spans the paper's regimes:

* :class:`~repro.sched.solo.SoloScheduler` — solo runs (obstruction-freedom);
* :class:`~repro.sched.bounded.EventuallyBoundedScheduler` — executions in
  which eventually at most ``m`` processes take steps (the m-obstruction-free
  progress condition, Taubenfeld [12]);
* :class:`~repro.sched.round_robin.RoundRobinScheduler`,
  :class:`~repro.sched.random_walk.RandomScheduler` — generic fair and
  randomized adversaries for safety stress;
* :class:`~repro.sched.crash.CrashScheduler` — crash failures;
* :class:`~repro.sched.adversarial.WriterPriorityScheduler` — a contention
  heuristic that maximizes overwriting.
"""

from repro.sched.base import FixedSchedule, Scheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sched.solo import SoloScheduler
from repro.sched.random_walk import RandomScheduler
from repro.sched.bounded import EventuallyBoundedScheduler
from repro.sched.crash import CrashScheduler
from repro.sched.adversarial import WriterPriorityScheduler
from repro.sched.cyclic import CyclicScheduler, phases
from repro.sched.composed import InterleavedScheduler, PhasedScheduler

#: The adversaries nameable from the CLI and the serve wire protocol.
NAMED_SCHEDULERS = ("round-robin", "random", "writer-priority", "bounded")


def build_scheduler(name: str, *, seed: int = 1, m: int = 1) -> Scheduler:
    """Factory for the named adversary families (CLI ``--scheduler`` and
    serve run-mode jobs share this, so both sides mean the same thing by
    ``"bounded"``).  ``seed`` feeds the randomized families; ``m`` sizes
    the eventually-bounded survivor set."""
    if name == "round-robin":
        return RoundRobinScheduler()
    if name == "random":
        return RandomScheduler(seed=seed)
    if name == "writer-priority":
        return WriterPriorityScheduler()
    if name == "bounded":
        return EventuallyBoundedScheduler(
            survivors=list(range(m)),
            prelude_steps=60,
            prelude=RandomScheduler(seed=seed),
        )
    raise ValueError(
        f"unknown scheduler {name!r}; expected one of {NAMED_SCHEDULERS}"
    )


__all__ = [
    "NAMED_SCHEDULERS",
    "PhasedScheduler",
    "InterleavedScheduler",
    "build_scheduler",
    "Scheduler",
    "FixedSchedule",
    "RoundRobinScheduler",
    "SoloScheduler",
    "RandomScheduler",
    "EventuallyBoundedScheduler",
    "CrashScheduler",
    "WriterPriorityScheduler",
    "CyclicScheduler",
    "phases",
]
