"""Scheduler protocol and the fixed-schedule replayer."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

from repro.runtime.system import Configuration, System


class Scheduler(ABC):
    """Strategy choosing which enabled process takes the next step.

    ``choose`` may return ``None`` to end the run (an adversary is never
    obliged to keep scheduling).  Schedulers may be stateful; ``reset`` is
    called at the start of every run.
    """

    @abstractmethod
    def choose(
        self,
        config: Configuration,
        system: System,
        enabled: Tuple[int, ...],
        step_index: int,
    ) -> Optional[int]:
        """Return the pid to step next (must be in *enabled*), or ``None``."""

    def reset(self) -> None:  # pragma: no cover - trivial default
        """Reinitialize internal state before a run."""


class FixedSchedule(Scheduler):
    """Replay a predetermined sequence of pids, then stop.

    Choosing a disabled pid is an error surfaced by the runner — a fixed
    schedule is a claim about a concrete execution, so silently skipping
    would hide construction bugs.
    """

    def __init__(self, schedule: Sequence[int]) -> None:
        self._schedule = tuple(schedule)
        self._position = 0

    def choose(self, config, system, enabled, step_index):
        if self._position >= len(self._schedule):
            return None
        pid = self._schedule[self._position]
        self._position += 1
        return pid

    def reset(self) -> None:
        self._position = 0
