"""Fair round-robin scheduling over all (or a subset of) processes."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sched.base import Scheduler


class RoundRobinScheduler(Scheduler):
    """Cycle through processes in pid order, skipping disabled ones.

    With ``subset`` given, only those processes are scheduled — a simple way
    to realize the paper's executions "in which only processes in Q take
    steps".
    """

    def __init__(self, subset: Optional[Iterable[int]] = None) -> None:
        self._subset = tuple(sorted(set(subset))) if subset is not None else None
        self._cursor = 0

    def choose(self, config, system, enabled, step_index):
        candidates = (
            [pid for pid in self._subset if pid in enabled]
            if self._subset is not None
            else list(enabled)
        )
        if not candidates:
            return None
        pid = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return pid

    def reset(self) -> None:
        self._cursor = 0
