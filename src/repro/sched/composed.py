"""Scheduler combinators: build complex adversaries from simple ones.

:class:`PhasedScheduler` runs a sequence of (steps, scheduler) phases —
the general form of which :class:`~repro.sched.bounded.EventuallyBoundedScheduler`
is the two-phase special case.  :class:`InterleavedScheduler` alternates
several schedulers step by step, which composes e.g. a crash pattern with
a writer-priority heuristic without writing a new class.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.sched.base import Scheduler


class PhasedScheduler(Scheduler):
    """Run each ``(steps, scheduler)`` phase in order; the last runs forever.

    A phase's scheduler returning ``None`` advances to the next phase early
    (an adversary done with its agenda hands over).  The final phase's
    ``None`` ends the run.
    """

    def __init__(self, phases: Sequence[Tuple[int, Scheduler]]) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        self.phases: List[Tuple[int, Scheduler]] = list(phases)
        self._index = 0
        self._spent = 0

    def choose(self, config, system, enabled, step_index):
        while self._index < len(self.phases):
            budget, scheduler = self.phases[self._index]
            is_last = self._index == len(self.phases) - 1
            if not is_last and self._spent >= budget:
                self._advance()
                continue
            pid = scheduler.choose(config, system, enabled, step_index)
            if pid is None:
                if is_last:
                    return None
                self._advance()
                continue
            self._spent += 1
            return pid
        return None

    def _advance(self) -> None:
        self._index += 1
        self._spent = 0

    def reset(self) -> None:
        self._index = 0
        self._spent = 0
        for _, scheduler in self.phases:
            scheduler.reset()


class InterleavedScheduler(Scheduler):
    """Alternate between schedulers, one step each, round-robin.

    A constituent returning ``None`` is skipped for that turn; the run ends
    only when *all* constituents decline in one full rotation.
    """

    def __init__(self, schedulers: Sequence[Scheduler]) -> None:
        if not schedulers:
            raise ValueError("need at least one scheduler")
        self.schedulers = list(schedulers)
        self._turn = 0

    def choose(self, config, system, enabled, step_index):
        for _ in range(len(self.schedulers)):
            scheduler = self.schedulers[self._turn % len(self.schedulers)]
            self._turn += 1
            pid = scheduler.choose(config, system, enabled, step_index)
            if pid is not None:
                return pid
        return None

    def reset(self) -> None:
        self._turn = 0
        for scheduler in self.schedulers:
            scheduler.reset()
