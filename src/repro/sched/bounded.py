"""Eventually-m-bounded adversaries: the m-obstruction-free regime.

m-obstruction-freedom (paper §2.1) requires every correct process to
complete its operations in executions where *at most m processes take
infinitely many steps*.  The finite analogue realized here: an arbitrary
"prelude" interleaving involving everyone, after which only a chosen set
``P`` with ``|P| ≤ m`` is scheduled.  An algorithm is m-obstruction-free in
practice iff, for every such adversary, the processes of ``P`` decide within
a bounded number of post-prelude steps — which is exactly what the progress
checker (:mod:`repro.spec.progress`) asserts.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sched.base import Scheduler
from repro.sched.round_robin import RoundRobinScheduler


class EventuallyBoundedScheduler(Scheduler):
    """Run *prelude* for ``prelude_steps`` steps, then only ``survivors``.

    ``prelude`` defaults to fair round-robin over all processes.  After the
    switch, survivors run round-robin — fair among themselves, as required
    for them to count as "taking infinitely many steps".
    """

    def __init__(
        self,
        survivors: Iterable[int],
        prelude_steps: int,
        prelude: Optional[Scheduler] = None,
    ) -> None:
        self.survivors = tuple(sorted(set(survivors)))
        if not self.survivors:
            raise ValueError("survivor set must be non-empty")
        self.prelude_steps = prelude_steps
        self._prelude = prelude if prelude is not None else RoundRobinScheduler()
        self._tail = RoundRobinScheduler(subset=self.survivors)

    def choose(self, config, system, enabled, step_index):
        if step_index < self.prelude_steps:
            pid = self._prelude.choose(config, system, enabled, step_index)
            if pid is not None:
                return pid
            # Prelude has nothing to schedule; fall through to survivors.
        return self._tail.choose(config, system, enabled, step_index)

    def reset(self) -> None:
        self._prelude.reset()
        self._tail.reset()
