"""Solo scheduling: one process runs alone (the obstruction-free regime)."""

from __future__ import annotations

from repro.sched.base import Scheduler


class SoloScheduler(Scheduler):
    """Schedule only process ``pid``; stop when it halts.

    Obstruction-freedom (m = 1) demands termination exactly under such
    schedules, once the process runs without interference.
    """

    def __init__(self, pid: int) -> None:
        self.pid = pid

    def choose(self, config, system, enabled, step_index):
        return self.pid if self.pid in enabled else None
