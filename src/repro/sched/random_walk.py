"""Seeded random scheduling for safety stress testing.

Safety (Validity, k-Agreement) must hold in *every* execution, so random
interleavings are a cheap probe of the execution space; hypothesis-based
property tests drive this scheduler with many seeds.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from repro.sched.base import Scheduler


class RandomScheduler(Scheduler):
    """Pick a uniformly random enabled process each step (seeded).

    ``weights`` optionally biases selection per pid (unnormalized); biased
    schedules are useful to approximate regimes where some processes are
    slow without silencing them entirely.
    """

    def __init__(
        self,
        seed: int,
        subset: Optional[Iterable[int]] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        self._seed = seed
        self._subset = tuple(sorted(set(subset))) if subset is not None else None
        self._weights = tuple(weights) if weights is not None else None
        self._rng = random.Random(seed)

    def choose(self, config, system, enabled, step_index):
        candidates = (
            [pid for pid in self._subset if pid in enabled]
            if self._subset is not None
            else list(enabled)
        )
        if not candidates:
            return None
        if self._weights is None:
            return self._rng.choice(candidates)
        weights = [self._weights[pid] for pid in candidates]
        if sum(weights) <= 0:
            return self._rng.choice(candidates)
        return self._rng.choices(candidates, weights=weights, k=1)[0]

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
