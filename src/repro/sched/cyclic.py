"""Cyclic (phased) scheduling: repeat a fixed pid pattern.

Useful for crafting asymmetric regimes — e.g. "q gets 200 consecutive steps,
then p gets 4" — which is how the Figure 5 starvation-rescue experiment
(E6) manufactures a perpetual writer and a starving scanner.  Disabled pids
in the pattern are skipped; the run ends when a full cycle finds nobody to
schedule.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sched.base import Scheduler


def phases(*groups: Sequence[int]) -> tuple:
    """Flatten ``([q]*200, [p]*4)``-style phase groups into one pattern."""
    pattern = []
    for group in groups:
        pattern.extend(group)
    return tuple(pattern)


class CyclicScheduler(Scheduler):
    """Repeat *pattern* forever, skipping entries that are disabled."""

    def __init__(self, pattern: Iterable[int]) -> None:
        self.pattern = tuple(pattern)
        if not self.pattern:
            raise ValueError("pattern must be non-empty")
        self._cursor = 0

    def choose(self, config, system, enabled, step_index):
        for _ in range(len(self.pattern)):
            pid = self.pattern[self._cursor % len(self.pattern)]
            self._cursor += 1
            if pid in enabled:
                return pid
        return None

    def reset(self) -> None:
        self._cursor = 0
