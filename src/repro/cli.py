"""Command-line interface: run, explore, and reproduce from the shell.

Installed as ``python -m repro``.  Sub-commands mirror the library's main
entry points:

* ``bounds``    — print the Figure 1 table for one (n, m, k);
* ``run``       — run a protocol under a chosen adversary and report
  outputs, step counts and (optionally) a space-time diagram;
* ``explore``   — exhaustively model-check a small instance;
* ``covering``  — run the Theorem 2 covering construction against an
  under-provisioned Figure 4 and print the certified violation;
* ``glue``      — run the Lemma 9 clone construction against the anonymous
  one-shot algorithm;
* ``faults``    — run a seeded chaos campaign (process crashes, register
  corruption) and report replay-certified outcomes;
* ``analyze``   — static analysis of the reproduction itself: the
  determinism/purity lint, the symbolic register-footprint checker, and
  (with ``--sanitize``) sanitized smoke runs; the CI gate;
* ``serve``     — the supervised verification daemon (see
  :mod:`repro.serve` and ``docs/serving.md``);
* ``top``       — live operator view of a running daemon: polls its
  ``status`` op and repaints a one-line summary, the LiveSink renderer
  turned outward;
* ``report``    — render a Markdown run report from a telemetry stream
  written by ``--telemetry=jsonl`` (see :mod:`repro.telemetry`), or —
  with ``--bench`` — the perf trend table from a benchmark aggregate.

``run``, ``explore``, ``faults`` and ``serve`` accept ``--telemetry``
(``off`` / ``live`` / ``jsonl``): ``live`` paints a progress line on
stderr, ``jsonl`` writes the machine-readable event stream + multi-lane
Chrome trace under ``--telemetry-dir``.  They also accept ``--profile``,
which statistically samples the main thread off-loop and writes a
collapsed-stack ``profile.folded`` next to the stream.  The session
wraps the whole command — the dispatch wrapper closes it with the final
exit code and verdict — and neither telemetry nor profiling can ever
change an exit code or a verdict (enforced by the on/off bit-identity
tests).

Every command prints plain text and exits non-zero on failure, so the CLI
can anchor shell-based regression checks.  The exit-code discipline is
uniform across commands (enforced by one dispatch wrapper): **0** — the
command ran and the checked claim held; **1** — a genuine, certified
refutation (violation witness, failed construction) — never an error;
**2** — configuration or engine error (bad arguments, a crashed worker,
any :class:`~repro.errors.ReproError`), reported on stderr; **3** — the
run hit a watchdog limit (``--deadline``, ``--max-rss``), checkpointed,
and exited incomplete (rerun with ``--resume`` to continue); **130** —
interrupted by Ctrl-C, with worker pools torn down, never hung; **143**
— stopped by SIGTERM, checkpointing first when a journaled run was in
flight (the dispatcher installs the graceful handler from
:mod:`repro.durable.watchdog` for every command).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional, Tuple

from repro import (
    AnonymousRepeatedSetAgreement,
    OneShotSetAgreement,
    RepeatedSetAgreement,
    System,
    run,
)
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.explore import explore_safety
from repro.lowerbounds import covering_construction, figure1_table
from repro.lowerbounds.cloning import lemma9_glue
from repro.objects import implemented_snapshot_layout
from repro.sched import NAMED_SCHEDULERS, build_scheduler
from repro.spec import check_safety, execution_stats, publish_stats
from repro.trace import space_time_diagram

PROTOCOLS = {
    "oneshot": OneShotSetAgreement,
    "repeated": RepeatedSetAgreement,
    "anonymous": AnonymousRepeatedSetAgreement,
    "anonymous-oneshot": AnonymousOneShotSetAgreement,
}

SCHEDULERS = NAMED_SCHEDULERS


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Space Complexity of Set Agreement' "
            "(PODC 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bounds = sub.add_parser("bounds", help="print the Figure 1 bounds table")
    _add_nmk(bounds)

    runner = sub.add_parser("run", help="run a protocol under an adversary")
    runner.add_argument("--protocol", choices=sorted(PROTOCOLS), default="oneshot")
    _add_nmk(runner)
    runner.add_argument("--instances", type=int, default=1)
    runner.add_argument("--components", type=int, default=None,
                        help="override the snapshot component count")
    runner.add_argument("--scheduler", choices=SCHEDULERS, default="bounded")
    runner.add_argument("--seed", type=int, default=1)
    runner.add_argument("--substrate", default="atomic",
                        help="snapshot substrate (atomic, double-collect, "
                             "wait-free, swmr, anonymous-double-collect)")
    runner.add_argument("--max-steps", type=int, default=200_000)
    runner.add_argument("--diagram", action="store_true",
                        help="print a space-time diagram of the run")
    runner.add_argument("--sanitize", action="store_true",
                        help="run under the register-access sanitizer: "
                             "purity checks on every step plus trace-time "
                             "covering/torn-read diagnostics")
    _add_telemetry_flags(runner)

    explorer = sub.add_parser("explore", help="exhaustive safety check")
    explorer.add_argument("--protocol", choices=sorted(PROTOCOLS),
                          default="oneshot")
    _add_nmk(explorer)
    explorer.add_argument("--components", type=int, default=None)
    explorer.add_argument("--max-configs", type=int, default=200_000)
    explorer.add_argument("--workers", type=int, default=1,
                          help="shard frontier expansion across this many "
                               "processes (verdicts are identical for every "
                               "worker count)")
    explorer.add_argument("--backend", choices=["reference", "packed"],
                          default="reference",
                          help="exploration hot-path representation: "
                               "'reference' walks dataclass configurations, "
                               "'packed' walks compact byte encodings and "
                               "ships bytes across the worker pool; "
                               "verdicts, footprints, and checkpoints are "
                               "bit-identical (see docs/performance.md)")
    explorer.add_argument("--canonicalize", action="store_true",
                          help="quotient the visited set by process-identity "
                               "orbits (anonymous protocols with symmetric "
                               "workloads only; inert otherwise)")
    explorer.add_argument("--resume", action="store_true",
                          help="persist/resume exploration state under the "
                               "cache directory instead of restarting")
    explorer.add_argument("--cache-dir", default=".repro-cache",
                          help="cache directory used by --resume")
    explorer.add_argument("--reduction", choices=["none", "local-first"],
                          default="none",
                          help="sound partial-order reduction to apply")
    explorer.add_argument("--cluster-inputs", type=int, default=None,
                          metavar="CLUSTERS",
                          help="propose only CLUSTERS distinct values "
                               "(round-robin) instead of globally distinct "
                               "inputs — this is what gives --canonicalize "
                               "orbits to quotient")
    explorer.add_argument("--batch-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="bound the wait for any one worker batch; on "
                               "timeout the pool is rebuilt and the batch "
                               "resubmitted (verdicts unchanged); default "
                               "waits forever")
    explorer.add_argument("--max-retries", type=int, default=2,
                          help="pool rebuilds to attempt before degrading "
                               "to serial in-process expansion")
    explorer.add_argument("--checkpoint-every", type=int, default=64,
                          metavar="BATCHES",
                          help="with --resume, compact the durable run "
                               "journal into a sealed checkpoint every "
                               "this many merged batches")
    explorer.add_argument("--sanitize", action="store_true",
                          help="explore with per-step purity checks "
                               "(mutation-after-freeze, nondeterministic "
                               "step); forces --workers 1 because the "
                               "sanitizer's collector is in-process state")
    _add_watchdog_flags(explorer)
    _add_telemetry_flags(explorer)

    faults = sub.add_parser(
        "faults", help="seeded chaos campaign with replay-certified verdicts"
    )
    faults.add_argument("--protocol", choices=sorted(PROTOCOLS),
                        default="oneshot")
    _add_nmk(faults)
    faults.add_argument("--instances", type=int, default=1)
    faults.add_argument("--plan-family", choices=("crashes", "corruption"),
                        default="crashes",
                        help="'crashes' stays inside the paper's fault model "
                             "(must stay safe); 'corruption' leaves it "
                             "(expected to yield certified violations)")
    faults.add_argument("--trials", type=int, default=12,
                        help="number of seeded plans to run")
    faults.add_argument("--seed", type=int, default=1,
                        help="seed for the plan family (same seed, same "
                             "plans, same verdicts)")
    faults.add_argument("--budget", type=int, default=20_000,
                        help="step budget for the first attempt of each "
                             "trial")
    faults.add_argument("--retry-budget", type=int, default=3,
                        help="extra attempts (with exponentially doubled "
                             "step budgets) before a trial is declared "
                             "inconclusive")
    faults.add_argument("--resume", action="store_true",
                        help="persist/resume campaign progress (a durable "
                             "per-trial journal) under the cache directory "
                             "instead of restarting")
    faults.add_argument("--cache-dir", default=".repro-cache",
                        help="cache directory used by --resume")
    faults.add_argument("--checkpoint-every", type=int, default=8,
                        metavar="TRIALS",
                        help="with --resume, compact the durable run "
                             "journal into a sealed checkpoint every "
                             "this many completed trials")
    _add_watchdog_flags(faults)
    _add_telemetry_flags(faults)

    covering = sub.add_parser(
        "covering", help="Theorem 2 construction vs under-provisioned Fig. 4"
    )
    _add_nmk(covering)
    covering.add_argument("--registers", type=int, default=None,
                          help="registers to attack (default n+m-k-1)")
    covering.add_argument("--instances", type=int, default=12)
    covering.add_argument("--save-certificate", metavar="PATH", default=None,
                          help="archive the violation as a re-checkable "
                               "JSON certificate")

    glue = sub.add_parser(
        "glue", help="Lemma 9 clone construction vs the anonymous algorithm"
    )
    glue.add_argument("--k", type=int, default=1)
    glue.add_argument("--registers", type=int, default=2)

    verify = sub.add_parser(
        "verify", help="re-check a saved violation certificate"
    )
    verify.add_argument("certificate", help="path to a certificate JSON")

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: determinism lint, footprint check, simsan",
    )
    analyze.add_argument("paths", nargs="*", default=["src/repro"],
                         help="files or directories to lint "
                              "(default: src/repro)")
    analyze.add_argument("--strict", action="store_true",
                         help="exit 1 on warnings too, not just errors "
                              "(the CI gate)")
    analyze.add_argument("--all-rules", action="store_true",
                         help="apply every lint rule to every given path, "
                              "ignoring the step-path scope tables (used "
                              "to exercise the known-bad fixtures)")
    analyze.add_argument("--json", action="store_true",
                         help="emit the report as JSON (the CI artifact)")
    analyze.add_argument("--no-footprint", action="store_true",
                         help="skip the symbolic Figure 1 footprint pass")
    analyze.add_argument("--concurrency", action="store_true",
                         help="also run the concurrency-safety pass "
                              "(CONC* rules: fork-shared state, pickle "
                              "boundary, file-write protocol, signal "
                              "handlers, stale allows); implied by "
                              "--strict")
    analyze.add_argument("--sanitize", action="store_true",
                         help="also run one sanitized smoke execution per "
                              "algorithm family and fold SAN* findings "
                              "into the report")
    analyze.add_argument("--rules", action="store_true",
                         help="print the rule catalog and exit")

    server = sub.add_parser(
        "serve",
        help="verification daemon: verify jobs over a JSON socket, "
             "memoized verdicts, crash-safe queue",
    )
    server.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default loopback)")
    server.add_argument("--port", type=int, default=0,
                        help="TCP port; 0 picks an ephemeral port, printed "
                             "on startup and written to the data dir's "
                             "endpoint file")
    server.add_argument("--data-dir", default=".repro-serve",
                        help="daemon state: content-addressed verdict "
                             "store, write-ahead job journal, endpoint "
                             "file; restarting on the same directory "
                             "resumes journaled jobs")
    server.add_argument("--queue-capacity", type=int, default=64,
                        help="bound on queued + running jobs; past it, "
                             "submissions get an explicit busy response "
                             "with a retry-after hint instead of "
                             "unbounded buffering")
    server.add_argument("--workers", type=int, default=1,
                        help="supervised worker processes; the pool is "
                             "rebuilt on failure and degrades to serial "
                             "in-process execution after repeated "
                             "incidents")
    server.add_argument("--retry-after", type=float, default=1.0,
                        metavar="SECONDS",
                        help="hint returned with busy responses")
    server.add_argument("--max-jobs", type=int, default=None,
                        help="exit 0 after completing this many jobs "
                             "(smoke tests and CI)")
    server.add_argument("--job-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget, enforced by an "
                             "in-worker watchdog; an over-deadline job "
                             "reports incomplete and is never cached")
    server.add_argument("--job-max-rss", type=float, default=None,
                        metavar="MB",
                        help="per-job resident-set ceiling in MiB "
                             "(in-worker watchdog, like --job-deadline)")
    _add_telemetry_flags(server)

    reporter = sub.add_parser(
        "report", help="render a Markdown run report from a telemetry stream"
    )
    reporter.add_argument("run_dir",
                          help="telemetry directory (or events.jsonl path) "
                               "written by a --telemetry=jsonl run; with "
                               "--bench, a BENCH_telemetry.json aggregate "
                               "(or the directory holding one)")
    reporter.add_argument("--check", action="store_true",
                          help="validate the event stream against the "
                               "telemetry schema first; schema problems "
                               "print to stderr (naming the first bad "
                               "seq) and exit 1")
    reporter.add_argument("--bench", action="store_true",
                          help="render the benchmark trend table from a "
                               "BENCH_telemetry.json aggregate instead of "
                               "an event stream")

    top = sub.add_parser(
        "top", help="live operator view of a running serve daemon"
    )
    top.add_argument("endpoint",
                     help="daemon endpoint as host:port, or the daemon's "
                          "--data-dir (its endpoint file is read)")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="seconds between status polls (default 2)")
    top.add_argument("--count", type=int, default=0, metavar="N",
                     help="stop after N polls (default 0: poll until "
                          "Ctrl-C)")
    top.add_argument("--timeout", type=float, default=5.0,
                     metavar="SECONDS",
                     help="per-request socket timeout (default 5)")

    return parser


def _add_nmk(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--m", type=int, default=1)
    parser.add_argument("--k", type=int, default=1)


def _add_watchdog_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget for the run; on expiry it "
                             "checkpoints (with --resume) and exits 3 — "
                             "rerun with --resume to continue")
    parser.add_argument("--max-rss", type=float, default=None, metavar="MB",
                        help="resident-set ceiling in MiB; on reaching it "
                             "the run checkpoints (with --resume) and "
                             "exits 3")


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry", choices=("off", "live", "jsonl"),
                        default="off",
                        help="observability for the run: 'live' paints a "
                             "progress line (rate, ETA, RSS heartbeat) on "
                             "stderr; 'jsonl' writes the machine-readable "
                             "event stream + Chrome trace under "
                             "--telemetry-dir (render it with 'repro "
                             "report'); never changes verdicts or exit "
                             "codes")
    parser.add_argument("--telemetry-dir", default=".repro-telemetry",
                        metavar="DIR",
                        help="directory for --telemetry=jsonl artifacts "
                             "(events.jsonl, trace.json, profile.folded)")
    parser.add_argument("--profile", action="store_true",
                        help="statistically sample the main thread "
                             "(~200Hz, off the per-step loop) and write "
                             "a collapsed-stack profile.folded under "
                             "--telemetry-dir, with samples attributed "
                             "to open telemetry spans; never changes "
                             "verdicts or exit codes")


def _open_telemetry(args) -> Optional[object]:
    """Open the command's telemetry session per ``--telemetry``, if any.

    The ``run_start`` event echoes every scalar argument of the command
    (seed, scheduler, n/m/k, budgets …), which is what makes a stream —
    and the report rendered from it — reproducible from the transcript
    alone.
    """
    mode = getattr(args, "telemetry", "off")
    if mode == "off":
        return None
    from repro import telemetry
    from repro.telemetry.schema import SCHEMA_VERSION
    from repro.telemetry.sinks import JsonlSink, LiveSink

    sink = (JsonlSink(args.telemetry_dir) if mode == "jsonl"
            else LiveSink())
    attrs = {"schema": SCHEMA_VERSION}
    for key, value in sorted(vars(args).items()):
        # Observability knobs are not run parameters: the stream (and the
        # trace id derived from these attrs) must not depend on whether
        # the run was profiled.
        if key in ("command", "telemetry", "telemetry_dir", "profile"):
            continue
        if value is None or isinstance(value, (bool, int, float, str)):
            attrs[key] = value
    session = telemetry.start(
        command=args.command, mode=mode, sinks=[sink], attrs=attrs
    )
    if isinstance(sink, LiveSink):
        sink.attach(session)
    return session


def _start_profiler(args) -> Optional[object]:
    """Start the span-scoped sampling profiler when ``--profile`` was given.

    Runs whether or not a telemetry session is open — without one the
    samples are attributed to ``(no span)``, which is still a usable
    flat profile.
    """
    if not getattr(args, "profile", False):
        return None
    from repro.telemetry.profile import SpanProfiler

    profiler = SpanProfiler()
    profiler.start()
    return profiler


def _finish_profiler(profiler, args) -> None:
    """Stop the sampler and write ``profile.folded``; never raises.

    Profiling is observability: like telemetry, a failure here prints a
    note to stderr and cannot change the command's exit code.
    """
    from pathlib import Path

    try:
        profiler.stop()
        from repro.telemetry.sinks import PROFILE_FILE

        directory = Path(getattr(args, "telemetry_dir", ".repro-telemetry"))
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / PROFILE_FILE
        samples = profiler.write(target)
        print(f"profile: {samples} samples -> {target}", file=sys.stderr)
    except Exception as exc:  # noqa: BLE001 — profiling must not mask the code
        print(f"profile: failed: {exc}", file=sys.stderr)


#: Exit code → run_end verdict, for the telemetry stream and live line.
_VERDICTS = {
    0: "ok",
    1: "refuted",
    2: "error",
    3: "checkpointed",
    130: "interrupted",
    141: "broken-pipe",
    143: "terminated",
}


def _build_watchdog(args) -> Tuple[Optional[object], Optional[str]]:
    """The command's watchdog (or ``None``), plus a usage error if any."""
    if args.deadline is not None and args.deadline <= 0:
        return None, f"--deadline must be positive, got {args.deadline}"
    if args.max_rss is not None and args.max_rss <= 0:
        return None, f"--max-rss must be positive, got {args.max_rss}"
    if args.checkpoint_every < 1:
        return None, (
            f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )
    if args.deadline is None and args.max_rss is None:
        return None, None
    from repro.durable.watchdog import Watchdog

    return Watchdog(deadline=args.deadline, max_rss_mb=args.max_rss), None


def cmd_bounds(args) -> int:
    """Print the Figure 1 bounds table at (n, m, k)."""
    table = figure1_table(args.n, args.m, args.k)
    rows = [(cell, str(bound)) for cell, bound in table.items()]
    print(format_table(
        ["cell", "bound"], rows,
        title=f"Figure 1 at n={args.n}, m={args.m}, k={args.k}",
    ))
    return 0


def _make_scheduler(args, n, m):
    return build_scheduler(args.scheduler, seed=args.seed, m=m)


def cmd_run(args) -> int:
    """Run a protocol under the chosen adversary and report outcomes."""
    protocol_cls = PROTOCOLS[args.protocol]
    kwargs = dict(n=args.n, m=args.m, k=args.k)
    if args.components is not None:
        kwargs["components"] = args.components
    protocol = protocol_cls(**kwargs)
    layout = implemented_snapshot_layout(protocol, args.substrate)
    system = System(
        protocol,
        workloads=distinct_inputs(args.n, instances=args.instances),
        layout=layout,
    )
    scheduler = _make_scheduler(args, args.n, args.m)
    sanitizer = None
    monitors = None
    if args.sanitize:
        from repro.analysis.sanitizer import (
            RegisterSanitizer,
            SanitizedSystem,
            SanitizerCollector,
        )

        collector = SanitizerCollector()
        system = SanitizedSystem(system, collector)
        sanitizer = RegisterSanitizer(system, collector)
        monitors = [sanitizer]
    execution = run(system, scheduler, max_steps=args.max_steps,
                    on_limit="return", monitors=monitors,
                    telemetry_span="runtime.run")

    stats = execution_stats(execution)
    publish_stats(stats)
    print(f"protocol:  {protocol.describe()} on {args.substrate}")
    print(f"scheduler: {args.scheduler} (seed {args.seed}, "
          f"max-steps {args.max_steps}, instances {args.instances})")
    print(f"registers: {system.layout.register_count()}")
    print(f"steps:     {stats.total_steps} "
          f"({stats.memory_steps} memory, {stats.decisions} decisions)")
    for instance in range(1, args.instances + 1):
        outputs = sorted(set(execution.instance_outputs(instance)), key=repr)
        print(f"instance {instance}: outputs {outputs}")
    violations = check_safety(execution, args.k)
    for violation in violations:
        print(f"VIOLATION: {violation}")
    if args.diagram:
        print()
        print(space_time_diagram(execution, length=min(execution.steps, 72)))
    if sanitizer is not None:
        report = sanitizer.report()
        print()
        print(report.render())
        if not report.ok:
            return 1
    return 1 if violations else 0


def cmd_explore(args) -> int:
    """Exhaustively model-check a small instance.

    Exit codes: 0 — explored without violations; 1 — a violation was found
    (witness schedule printed); 2 — invalid arguments, or an exploration
    worker failed (the structured failure is printed and the pool is torn
    down, never hung); 3 — a watchdog (--deadline / --max-rss) fired and
    the run checkpointed incomplete; 143 — SIGTERM arrived and the run
    checkpointed before exiting.  Exit 1 always means a refutation, never
    an error.
    """
    from repro.errors import ExplorationEngineError

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.cluster_inputs is not None and args.cluster_inputs < 1:
        print(f"error: --cluster-inputs must be >= 1, got "
              f"{args.cluster_inputs}", file=sys.stderr)
        return 2
    watchdog, usage_error = _build_watchdog(args)
    if usage_error is not None:
        print(f"error: {usage_error}", file=sys.stderr)
        return 2
    protocol_cls = PROTOCOLS[args.protocol]
    kwargs = dict(n=args.n, m=args.m, k=args.k)
    if args.components is not None:
        kwargs["components"] = args.components
    protocol = protocol_cls(**kwargs)
    if args.cluster_inputs is not None:
        from repro.bench.workloads import clustered_inputs

        workloads = clustered_inputs(args.n, args.cluster_inputs)
    else:
        workloads = distinct_inputs(args.n)
    system = System(protocol, workloads=workloads)
    collector = None
    if args.sanitize:
        from repro.analysis.sanitizer import SanitizedSystem, SanitizerCollector

        if args.workers > 1:
            print("note: --sanitize forces --workers 1 (the sanitizer "
                  "collector is in-process state)", file=sys.stderr)
            args.workers = 1
        collector = SanitizerCollector()
        system = SanitizedSystem(system, collector)
    try:
        result = explore_safety(
            system,
            k=args.k,
            max_configs=args.max_configs,
            reduction=args.reduction,
            workers=args.workers,
            canonicalize=args.canonicalize,
            cache_dir=args.cache_dir if args.resume else None,
            batch_timeout=args.batch_timeout,
            max_retries=args.max_retries,
            journal_dir=args.cache_dir if args.resume else None,
            checkpoint_every=args.checkpoint_every,
            watchdog=watchdog,
            backend=args.backend,
        )
    except ExplorationEngineError as exc:
        print(f"ENGINE FAILURE: {exc}")
        print(exc.failure.traceback, end="")
        return 2
    if result.recovery is not None:
        print(result.recovery.describe())
    print(result.summary())
    print(f"  {result.footprint_summary()} "
          f"(layout provisions {system.layout.register_count()})")
    if args.canonicalize:
        print(f"  distinct states visited: {result.configs_discovered} "
              "(orbit representatives)")
    for violation in result.safety_violations:
        print(f"  witness schedule ({len(violation.schedule)} steps): "
              f"{list(violation.schedule)}")
        print(f"  {violation.detail}")
    if collector is not None:
        sanitizer_report = collector.report()
        print(sanitizer_report.render())
        if not sanitizer_report.ok:
            return 1
    if result.safety_violations:
        return 1
    if result.interrupted == "sigterm":
        return 143
    if result.interrupted is not None:
        return 3
    return 0


def cmd_faults(args) -> int:
    """Run a seeded fault-injection campaign and print certified verdicts.

    Exit codes follow the shared discipline: 0 — every trial safe (or
    inconclusive, which is a budget statement, not a verdict); 1 — at least
    one replay-certified violation (expected for ``--plan-family
    corruption``, a refutation of the fault model's boundary for
    ``crashes``); 2 — configuration or engine error; 3 — a watchdog
    (--deadline / --max-rss) fired and the campaign checkpointed
    incomplete; 143 — SIGTERM arrived and the campaign checkpointed
    before exiting.
    """
    from repro.faults import build_family, run_campaign

    watchdog, usage_error = _build_watchdog(args)
    if usage_error is not None:
        print(f"error: {usage_error}", file=sys.stderr)
        return 2
    protocol_cls = PROTOCOLS[args.protocol]
    protocol = protocol_cls(n=args.n, m=args.m, k=args.k)
    system = System(
        protocol,
        workloads=distinct_inputs(args.n, instances=args.instances),
    )
    plans = build_family(
        args.plan_family, system, trials=args.trials, seed=args.seed
    )
    report = run_campaign(
        system, plans, family=args.plan_family, k=args.k,
        budget=args.budget, max_retries=args.retry_budget,
        journal_dir=args.cache_dir if args.resume else None,
        checkpoint_every=args.checkpoint_every,
        watchdog=watchdog,
    )
    print(f"protocol: {protocol.describe()}")
    if report.recovery is not None:
        print(report.recovery.describe())
    for trial in report.trials:
        print(f"  {trial.describe()}")
    print(report.summary())
    if report.interrupted is not None:
        print(f"campaign checkpointed on {report.interrupted}; rerun with "
              "--resume to continue")
    if args.plan_family == "crashes" and not report.crash_safety_holds():
        print("POSITIVE CONTROL FAILED: a crash-only plan violated safety")
    if report.certified_violations:
        return 1
    if report.interrupted == "sigterm":
        return 143
    if report.interrupted is not None:
        return 3
    return 0


def cmd_covering(args) -> int:
    """Run the Theorem 2 covering construction and print its narrative."""
    registers = (
        args.registers if args.registers is not None
        else args.n + args.m - args.k - 1
    )
    protocol = RepeatedSetAgreement(
        n=args.n, m=args.m, k=args.k, components=registers
    )
    system = System(
        protocol, workloads=distinct_inputs(args.n, instances=args.instances)
    )
    result = covering_construction(system, m=args.m, k=args.k)
    for line in result.narrative:
        print(line)
    print(result.summary())
    if result.success and args.save_certificate:
        from repro.lowerbounds.certificates import (
            certificate_for_system,
            save_certificate,
        )

        certificate = certificate_for_system(
            system, result.schedule,
            claim=(
                f"Theorem 2: repeated {args.k}-set agreement (m={args.m}) "
                f"among {args.n} processes violates k-Agreement with "
                f"{registers} registers"
            ),
        )
        save_certificate(certificate, args.save_certificate)
        print(f"certificate saved to {args.save_certificate}")
    return 0 if result.success else 1


def cmd_glue(args) -> int:
    """Run the Lemma 9 clone construction and print its narrative."""
    def factory(n):
        return AnonymousOneShotSetAgreement(
            n=n, m=1, k=args.k, components=args.registers
        )

    result = lemma9_glue(
        factory, k=args.k, inputs=[f"v{i}" for i in range(args.k + 1)]
    )
    for line in result.narrative:
        print(line)
    print(result.summary())
    return 0 if result.success else 1


def cmd_verify(args) -> int:
    """Re-check a saved violation certificate by replay."""
    from repro.errors import SpecificationViolation
    from repro.lowerbounds.certificates import load_certificate, verify_certificate

    certificate = load_certificate(args.certificate)
    print(f"claim: {certificate.claim}")
    try:
        violations = verify_certificate(certificate)
    except SpecificationViolation as exc:
        print(f"FAILED: {exc}")
        return 1
    for violation in violations:
        print(f"verified: {violation}")
    return 0


def cmd_analyze(args) -> int:
    """Run the static-analysis passes and report through one AnalysisReport.

    Exit codes follow the shared discipline: 0 — every pass ran and no
    gating finding (errors, plus warnings under ``--strict``) was
    reported; 1 — findings (printed, or emitted as JSON with ``--json``);
    2 — an analysis pass itself failed (unparseable input, missing
    module); 130/143 — interrupted, via the shared dispatcher.
    """
    from pathlib import Path

    import repro
    from repro.analysis.determinism import lint_paths
    from repro.analysis.footprint import check_footprints
    from repro.analysis.report import AnalysisReport, catalog_table
    from repro.errors import ReproError

    if args.rules:
        for rule_id, severity, summary in catalog_table():
            print(f"{rule_id}  {severity:8s}  {summary}")
        return 0

    run_concurrency = args.concurrency or args.strict
    # The stale-allow audit needs the suppression consumptions of every
    # pass, so the usage table is threaded through the determinism lint
    # and into the concurrency pass — but only when the latter runs
    # (CONC allows would otherwise always look stale).
    usage = {} if run_concurrency else None
    report = AnalysisReport()
    try:
        report.extend(
            lint_paths(args.paths, all_rules=args.all_rules, usage=usage)
        )
        if not args.no_footprint:
            # Resolve the shipped families from the installed package, so
            # the footprint contract is checked no matter which paths (or
            # working directory) the lint half was pointed at.
            package_root = Path(repro.__file__).resolve().parents[1]
            report.extend(check_footprints(str(package_root)))
        if run_concurrency:
            from repro.analysis.concurrency import analyze_concurrency

            report.extend(analyze_concurrency(
                args.paths, all_rules=args.all_rules, usage=usage
            ))
        if args.sanitize:
            from repro.analysis.sanitizer import sanitize_execution
            from repro.bench.workloads import distinct_inputs as _inputs

            for name in sorted(PROTOCOLS):
                protocol = PROTOCOLS[name](n=3, m=1, k=1)
                system = System(protocol, workloads=_inputs(3))
                smoke = sanitize_execution(system)
                smoke.passes_run = (f"sanitizer:{name}",)
                report.extend(smoke)
    except ReproError:
        raise
    except Exception as exc:  # noqa: BLE001 - exit-2 contract for pass crashes
        raise ReproError(f"analysis pass failed: {exc}") from exc

    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 1 if report.gating_findings(strict=args.strict) else 0


def _first_bad_seq(problems: List[str]) -> Optional[int]:
    """The seq of the first schema-bad event, parsed from problem lines.

    ``validate_lines`` prefixes per-event problems with ``line N:``; the
    stream sequences contiguously from 0, so line ``N`` holds seq
    ``N - 1``.  Stream-level problems (no prefix) yield ``None``.
    """
    lines = []
    for problem in problems:
        head, sep, _ = problem.partition(":")
        if sep and head.startswith("line ") and head[5:].isdigit():
            lines.append(int(head[5:]))
    return min(lines) - 1 if lines else None


def cmd_report(args) -> int:
    """Render the Markdown run report for one telemetry stream.

    Exit codes: 0 — report rendered; 1 — ``--check`` found schema
    problems (printed to stderr, naming the first bad seq), or the
    stream / benchmark aggregate exists but is empty or truncated (a
    one-line diagnostic, not a traceback); 2 — no artifact at the given
    path at all.
    """
    from repro.telemetry.report import (
        TruncatedStream, render_bench_report, render_report,
    )
    from repro.telemetry.schema import validate_stream

    if args.bench:
        try:
            print(render_bench_report(args.run_dir))
        except TruncatedStream as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.check:
        problems = validate_stream(args.run_dir)
        if problems:
            bad_seq = _first_bad_seq(problems)
            if bad_seq is not None:
                print(f"schema: first bad event at seq {bad_seq}",
                      file=sys.stderr)
            for problem in problems:
                print(f"schema: {problem}", file=sys.stderr)
            return 1
    try:
        print(render_report(args.run_dir))
    except TruncatedStream as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args) -> int:
    """Run the verification daemon until shutdown or SIGTERM.

    Exit codes: 0 — graceful stop (a ``shutdown`` op, or ``--max-jobs``
    reached); 2 — configuration error (bad flags, port in use); 143 —
    SIGTERM, after closing the queue (pending jobs stay journaled and
    resume on the next start against the same ``--data-dir``).  See
    ``docs/serving.md`` for the protocol and the kill-and-resume
    runbook.
    """
    from repro.serve.server import ReproServer

    if args.queue_capacity < 1:
        print(f"error: --queue-capacity must be >= 1, got "
              f"{args.queue_capacity}", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    for name in ("job_deadline", "job_max_rss", "retry_after"):
        value = getattr(args, name)
        if value is not None and value <= 0:
            flag = "--" + name.replace("_", "-")
            print(f"error: {flag} must be positive, got {value}",
                  file=sys.stderr)
            return 2
    try:
        server = ReproServer(
            host=args.host,
            port=args.port,
            data_dir=args.data_dir,
            queue_capacity=args.queue_capacity,
            workers=args.workers,
            job_deadline=args.job_deadline,
            job_max_rss=args.job_max_rss,
            retry_after=args.retry_after,
            max_jobs=args.max_jobs,
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    server.start()
    replayed = server.queue.depth()
    print(f"repro serve listening on {server.host}:{server.port} "
          f"(data: {args.data_dir}, queue: {args.queue_capacity}, "
          f"workers: {args.workers})", flush=True)
    if replayed:
        print(f"replaying {replayed} journaled job"
              f"{'s' if replayed != 1 else ''} from a previous run",
              flush=True)
    try:
        return server.serve_forever()
    finally:
        server.close()


def _top_endpoint(text: str) -> Tuple[str, int]:
    """Resolve ``repro top``'s endpoint argument to ``(host, port)``.

    Accepts either ``host:port`` directly or a daemon ``--data-dir``,
    whose endpoint file records where that daemon is listening.
    """
    from pathlib import Path

    from repro.errors import ReproError
    from repro.serve.client import connect

    if Path(text).is_dir():
        return connect(Path(text))
    host, sep, port = text.rpartition(":")
    if sep and port.isdigit():
        return host or "127.0.0.1", int(port)
    raise ReproError(
        f"endpoint {text!r} is neither host:port nor a daemon --data-dir"
    )


def _format_top_line(snapshot) -> str:
    """One status line for ``repro top``, from a ``status`` op payload."""
    queue = snapshot.get("queue") or {}
    cache = snapshot.get("cache") or {}
    supervisor = snapshot.get("supervisor") or {}
    hits = int(cache.get("hits") or 0)
    misses = int(cache.get("misses") or 0)
    lookups = hits + misses
    ratio = f"{100.0 * hits / lookups:.0f}%" if lookups else "-"
    degraded = " DEGRADED" if supervisor.get("degraded") else ""
    return (
        f"{snapshot.get('endpoint', '?')} "
        f"up {float(snapshot.get('uptime_s') or 0.0):.0f}s | "
        f"jobs {snapshot.get('jobs_completed', 0)} | "
        f"queue {queue.get('depth', 0)}/{queue.get('capacity', 0)} "
        f"(+{queue.get('in_flight', 0)} in flight) | "
        f"cache {hits}h/{misses}m {ratio} | "
        f"rebuilds {supervisor.get('pool_rebuilds', 0)}{degraded}"
    )


def cmd_top(args) -> int:
    """Live operator view: poll a daemon's ``status`` op, repaint one line.

    Exit codes: 0 — ``--count`` polls completed; 2 — bad endpoint, or
    the daemon became unreachable; 130 — Ctrl-C, the usual way out of
    the default poll-forever mode.
    """
    import time

    from repro.errors import ReproError
    from repro.serve import client
    from repro.telemetry.sinks import StatusLine

    if args.interval <= 0:
        print(f"error: --interval must be positive, got {args.interval}",
              file=sys.stderr)
        return 2
    if args.count < 0:
        print(f"error: --count must be >= 0, got {args.count}",
              file=sys.stderr)
        return 2
    host, port = _top_endpoint(args.endpoint)
    status_line = StatusLine(sys.stdout)
    polls = 0
    try:
        while True:
            response = client.status(host, port, timeout=args.timeout)
            payload = response.get("status") if response.get("ok") else None
            if not isinstance(payload, dict):
                raise ReproError(
                    f"status poll of {host}:{port} failed: "
                    f"{response.get('error', 'malformed response')}"
                )
            polls += 1
            final = args.count > 0 and polls >= args.count
            status_line.paint(_format_top_line(payload), final=final)
            if final:
                return 0
            time.sleep(args.interval)
    except (Exception, KeyboardInterrupt):
        status_line.close()  # clear the partial line before any stderr text
        raise


COMMANDS = {
    "bounds": cmd_bounds,
    "run": cmd_run,
    "explore": cmd_explore,
    "faults": cmd_faults,
    "covering": cmd_covering,
    "glue": cmd_glue,
    "verify": cmd_verify,
    "analyze": cmd_analyze,
    "serve": cmd_serve,
    "top": cmd_top,
    "report": cmd_report,
}


def _dispatch(handler, args) -> int:
    """Run one command under the shared exit-code discipline.

    Historically only ``explore`` translated engine errors to exit 2 and
    survived Ctrl-C cleanly; every command now goes through this wrapper,
    so a :class:`~repro.errors.ReproError` from any of them lands on
    stderr with exit 2 (command handlers may still catch specific errors
    first to print richer context), and ``KeyboardInterrupt`` exits 130 —
    after running ``finally`` blocks, which is what tears worker pools
    down instead of leaving them hung.

    SIGTERM is handled symmetrically with Ctrl-C: the dispatcher installs
    the graceful handler from :mod:`repro.durable.watchdog` for the span
    of the command (and restores the previous disposition afterwards, so
    embedding the CLI does not hijack the host's signals).  A journaled
    run absorbs the signal as a checkpoint request and returns normally
    (its handler maps that to 143); a command with nothing to checkpoint
    unwinds via :class:`~repro.durable.watchdog.Terminated` — through
    every ``finally`` block, so pools still die — and exits 143 here.

    A downstream reader closing the pipe early (``repro analyze --rules |
    head``) surfaces as :class:`BrokenPipeError` under Python's ignored
    ``SIGPIPE``; the dispatcher exits 141 — the POSIX ``SIGPIPE`` death
    code, deliberately neither 0 nor 1 since the truncated output proves
    nothing — after pointing stdout at ``/dev/null`` so the interpreter's
    exit-time flush cannot raise a second traceback.
    """
    from repro.durable.watchdog import Terminated, install_sigterm_handler
    from repro.errors import ReproError

    try:
        previous = install_sigterm_handler()
    except ValueError:  # not the main thread: leave signal handling alone
        previous = None
    session = None
    profiler = None
    code = 2
    try:
        try:
            session = _open_telemetry(args)
            profiler = _start_profiler(args)
            code = handler(args)
        except KeyboardInterrupt:
            print("interrupted", file=sys.stderr)
            code = 130
        except Terminated:
            print("terminated", file=sys.stderr)
            code = 143
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            code = 2
        except BrokenPipeError:
            try:
                os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            except (OSError, ValueError):  # stdout has no real fd (embedding)
                pass
            code = 141
        return code
    finally:
        # The session observes the command's true outcome — including the
        # exception paths above — and must release its sinks even when the
        # handler re-raises something unanticipated.  The flush runs under
        # an armed watchdog mailbox: a SIGTERM landing *during* close is
        # absorbed as a flag instead of raising Terminated mid-write,
        # which would truncate events.jsonl (no run_end => schema-invalid)
        # and replace the already-computed exit code.  A sink failure
        # likewise cannot change the exit code — telemetry never does.
        if profiler is not None:
            _finish_profiler(profiler, args)
        if session is not None:
            from repro.durable.watchdog import Watchdog

            try:
                with Watchdog():
                    session.close(
                        exit_code=code, verdict=_VERDICTS.get(code, "unknown")
                    )
            except Terminated:
                pass  # signal raced the arming instant; the code stands
            except Exception as exc:  # noqa: BLE001 — flush must not mask code
                print(f"telemetry: close failed: {exc}", file=sys.stderr)
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _dispatch(COMMANDS[args.command], args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
