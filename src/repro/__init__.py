"""repro — reproduction of "On the Space Complexity of Set Agreement" (PODC'15).

A deterministic shared-memory simulation library implementing the paper's
algorithms (Figures 3, 4, 5), its executable lower-bound constructions
(Theorems 2 and 10), register-level snapshot substrates, adversarial
schedulers and property checkers.

Quickstart::

    from repro import OneShotSetAgreement, System, RoundRobinScheduler, run
    from repro.spec import assert_execution_safe

    protocol = OneShotSetAgreement(n=4, m=1, k=2)
    system = System(protocol, workloads=[["a"], ["b"], ["c"], ["d"]])
    execution = run(system, RoundRobinScheduler())
    assert_execution_safe(execution, k=2)
    print(execution.instance_outputs(1))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro._types import BOT, Params, is_bot
from repro.agreement import (
    AnonymousRepeatedSetAgreement,
    BaselineOneShotSetAgreement,
    OneShotSetAgreement,
    RepeatedSetAgreement,
    TrivialSetAgreement,
    validate_parameters,
)
from repro.runtime import (
    Configuration,
    Execution,
    System,
    replay,
    run,
    run_until_quiescent,
)
from repro.runtime.runner import run_solo
from repro.sched import (
    CrashScheduler,
    EventuallyBoundedScheduler,
    FixedSchedule,
    RandomScheduler,
    RoundRobinScheduler,
    SoloScheduler,
    WriterPriorityScheduler,
)

__version__ = "1.0.0"

__all__ = [
    "BOT",
    "Params",
    "is_bot",
    "AnonymousRepeatedSetAgreement",
    "BaselineOneShotSetAgreement",
    "OneShotSetAgreement",
    "RepeatedSetAgreement",
    "TrivialSetAgreement",
    "validate_parameters",
    "Configuration",
    "Execution",
    "System",
    "replay",
    "run",
    "run_until_quiescent",
    "run_solo",
    "CrashScheduler",
    "EventuallyBoundedScheduler",
    "FixedSchedule",
    "RandomScheduler",
    "RoundRobinScheduler",
    "SoloScheduler",
    "WriterPriorityScheduler",
    "__version__",
]
