"""Executable lower bounds: the paper's proofs as running constructions.

* :mod:`~repro.lowerbounds.bounds` — every formula of Figure 1 (and the
  arithmetic lemmas behind them) in closed form;
* :mod:`~repro.lowerbounds.fragments` — bounded exploration primitives used
  by covering arguments ("find an execution fragment by Q writing outside
  A", with visited-set closure detection);
* :mod:`~repro.lowerbounds.covering` — the Theorem 2 / Figure 2
  construction: given *any* repeated set-agreement system on fewer than
  ``n+m−k`` registers, synthesize and replay-certify an execution with
  ``k+1`` distinct outputs in one instance;
* :mod:`~repro.lowerbounds.cloning` — the Section 5 anonymous machinery:
  clone schedules, ``α(V)`` executions, ``R(V)`` register sequences and the
  Lemma 9 gluing on small instances.
"""

from repro.lowerbounds.bounds import (
    BoundsCell,
    anonymous_oneshot_lower_bound,
    anonymous_repeated_upper_bound,
    anonymous_oneshot_upper_bound,
    figure1_table,
    lemma9_process_requirement,
    oneshot_upper_bound,
    repeated_lower_bound,
    repeated_upper_bound,
)
from repro.lowerbounds.covering import CoveringResult, covering_construction
from repro.lowerbounds.fragments import (
    FragmentSearch,
    find_write_outside,
)

__all__ = [
    "BoundsCell",
    "figure1_table",
    "repeated_lower_bound",
    "repeated_upper_bound",
    "oneshot_upper_bound",
    "anonymous_oneshot_lower_bound",
    "anonymous_oneshot_upper_bound",
    "anonymous_repeated_upper_bound",
    "lemma9_process_requirement",
    "CoveringResult",
    "covering_construction",
    "FragmentSearch",
    "find_write_outside",
]
