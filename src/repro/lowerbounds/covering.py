"""The Theorem 2 construction (Figure 2), executable and self-certifying.

Given a repeated set-agreement system on too few registers, this module
*builds the violating execution the proof describes*:

1. Inductively construct a spine execution ``α₁ β₁ α₂ β₂ … β_{c−1}``
   (``c = ⌈(k+1)/m⌉``) where each ``α_j`` runs a churning group ``Q_j``
   until, one by one, its members are *poised* to write a fresh register
   (the poised member moves to ``P_j``, a fresh process replaces it), and
   ``β_j`` is a *block write* by ``P_j`` overwriting exactly the covered
   register set ``A_j``.  The loop for group ``j`` ends when no fragment by
   ``Q_j`` can write outside ``A_j`` (exhaustive fragment search,
   :mod:`repro.lowerbounds.fragments`).
2. Splice, at each ``D_j`` (just before ``β_j``), a fragment ``γ_j`` in
   which ``Q_j`` alone runs to a fresh instance ``s+1`` and outputs
   ``|Q_j|`` distinct values (Lemma 1; a deterministic solo run for
   ``|Q_j| = 1``, BFS otherwise).  ``γ_j``'s writes stay inside ``A_j``, so
   the block write ``β_j`` obliterates every trace of it and the rest of
   the spine proceeds unchanged.
3. **Certify**: replay the entire spliced schedule through the pure step
   function from the initial configuration, and check that instance
   ``s+1`` outputs ``Σ|Q_j| = k+1`` distinct values — a concrete
   k-Agreement violation.  The replay is the proof; even if a bounded
   search returned ``UNKNOWN`` and the construction proceeded
   optimistically, a false construction cannot produce a certified result.

The paper's arithmetic guarantees the construction succeeds whenever the
system has at most ``n+m−k−1`` registers; running it against the paper's
*own* Figure 4 algorithm, deliberately under-provisioned, is experiment E2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro._types import Value
from repro.errors import ReproError
from repro.lowerbounds.fragments import (
    CLOSED,
    FOUND,
    UNKNOWN,
    find_distinct_decisions,
    find_write_outside,
)
from repro.memory.layout import RegisterCoord
from repro.memory.ops import is_write_access
from repro.runtime.events import MemoryEvent
from repro.runtime.runner import replay
from repro.runtime.system import Configuration, System
from repro.spec.properties import Violation, check_k_agreement


class CoveringFailure(ReproError):
    """The construction could not be completed (see message for the stage)."""


@dataclass
class GroupRecord:
    """Bookkeeping for one group ``j`` of the construction."""

    index: int
    final_q: Tuple[int, ...]
    p_set: Tuple[Tuple[int, RegisterCoord], ...]
    covered: Tuple[RegisterCoord, ...]
    splice_position: int  # index into the spine schedule where D_j sits
    closure_status: str
    gamma: Tuple[int, ...] = ()


@dataclass
class CoveringResult:
    """Outcome of the construction, with its replay-certified evidence."""

    success: bool
    schedule: Tuple[int, ...]
    target_instance: int
    distinct_outputs: Tuple[Value, ...]
    k: int
    violations: List[Violation]
    groups: List[GroupRecord]
    narrative: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line account of the construction's outcome."""
        if self.success:
            return (
                f"covering construction: instance {self.target_instance} "
                f"outputs {len(self.distinct_outputs)} distinct values "
                f"(> k = {self.k}) over a certified {len(self.schedule)}-step "
                "execution"
            )
        return "covering construction failed: " + (
            self.narrative[-1] if self.narrative else "unknown stage"
        )


def _advance(
    system: System,
    config: Configuration,
    schedule: Sequence[int],
) -> Configuration:
    for pid in schedule:
        config = system.step(config, pid).config
    return config


def covering_construction(
    system: System,
    m: int,
    k: int,
    *,
    max_configs_per_search: int = 100_000,
    gamma_max_configs: int = 200_000,
) -> CoveringResult:
    """Run Figure 2 against *system* and certify the resulting execution.

    The system's workloads must give every process globally distinct input
    values and enough invocations to reach the fresh instance (a generous
    workload length is checked as the construction learns ``s``).
    """
    n = system.n
    c = math.ceil((k + 1) / m)
    narrative: List[str] = [
        f"n={n}, m={m}, k={k}: c={c} groups over "
        f"{system.layout.register_count()} registers "
        f"(lower bound needs >= {n + m - k})"
    ]

    spine: List[int] = []
    config = system.initial_configuration()
    groups: List[GroupRecord] = []
    fixed_q_union: Set[int] = set()
    ever_used: Set[int] = set()

    for j in range(1, c):
        size = m if j > 1 else k + 1 - (c - 1) * m
        candidates = [p for p in range(n) if p not in fixed_q_union]
        candidates.sort(key=lambda p: (p in ever_used, p))
        if len(candidates) < size:
            raise CoveringFailure(
                f"group {j}: need {size} processes outside earlier groups, "
                f"only {len(candidates)} available"
            )
        q_set: List[int] = candidates[:size]
        ever_used.update(q_set)
        p_set: List[Tuple[int, RegisterCoord]] = []
        covered: Set[RegisterCoord] = set()
        closure_status = CLOSED

        while True:
            search = find_write_outside(
                system,
                config,
                q_set,
                frozenset(covered),
                max_configs=max_configs_per_search,
            )
            if search.status == CLOSED:
                narrative.append(
                    f"group {j}: closure over {search.configs_explored} "
                    f"configurations with A_{j} = {sorted(map(str, covered))}"
                )
                break
            if search.status == UNKNOWN:
                closure_status = UNKNOWN
                narrative.append(
                    f"group {j}: fragment search budget cut "
                    f"({search.configs_explored} configurations) — continuing "
                    "optimistically; the final replay certifies or refutes"
                )
                break
            assert search.status == FOUND
            spine.extend(search.schedule)
            config = _advance(system, config, search.schedule)
            poised = search.poised_pid
            coord = search.coord
            # Line 11: the replacement is chosen before R joins A_j.
            replacement_pool = [
                p
                for p in range(n)
                if p not in fixed_q_union
                and p not in q_set
                and p not in {pid for pid, _ in p_set}
                and p != poised
            ]
            if not replacement_pool:
                raise CoveringFailure(
                    f"group {j}: no replacement process available "
                    f"(|A_{j}| = {len(covered)}); the register count "
                    "is too large for the covering argument at these "
                    "parameters"
                )
            replacement = min(
                replacement_pool, key=lambda p: (p in ever_used, p)
            )
            ever_used.add(replacement)
            covered.add(coord)
            p_set.append((poised, coord))
            q_set = [p for p in q_set if p != poised] + [replacement]
            narrative.append(
                f"group {j}: froze p{poised} poised at {coord}, "
                f"replaced by p{replacement} (|A_{j}|={len(covered)})"
            )

        splice_position = len(spine)
        d_config = config

        # β_j: the block write — each frozen process takes its single step.
        for pid, coord in p_set:
            result = system.step(config, pid)
            event = result.event
            if not (
                isinstance(event, MemoryEvent)
                and is_write_access(event.op)
                and system.layout.op_coord(event.op) == coord
            ):
                raise CoveringFailure(
                    f"group {j}: frozen process p{pid} was expected to write "
                    f"{coord}, stepped {event!r} instead"
                )
            config = result.config
            spine.append(pid)

        fixed_q_union.update(q_set)
        groups.append(
            GroupRecord(
                index=j,
                final_q=tuple(q_set),
                p_set=tuple(p_set),
                covered=tuple(sorted(covered, key=str)),
                splice_position=splice_position,
                closure_status=closure_status,
            )
        )

    # s = the maximum number of Propose invocations any process started.
    s = max(proc.next_input for proc in config.procs)
    target_instance = s + 1
    narrative.append(f"s = {s}; splicing targets fresh instance {target_instance}")

    # Group c: fresh processes at the end of the spine, no covering needed.
    final_candidates = [p for p in range(n) if p not in fixed_q_union]
    if len(final_candidates) < m:
        raise CoveringFailure(
            f"group {c}: need {m} processes outside earlier groups, "
            f"only {len(final_candidates)} available"
        )
    groups.append(
        GroupRecord(
            index=c,
            final_q=tuple(final_candidates[:m]),
            p_set=(),
            covered=(),
            splice_position=len(spine),
            closure_status=CLOSED,
        )
    )

    # Check workloads can reach the fresh instance.
    if system.workloads is None:
        raise CoveringFailure(
            "the covering construction requires static workloads "
            "(dynamic workload_fn systems are not supported)"
        )
    for record in groups:
        for pid in record.final_q:
            if len(system.workloads[pid]) < target_instance:
                raise CoveringFailure(
                    f"process p{pid} has only {len(system.workloads[pid])} "
                    f"workload inputs but the construction needs instance "
                    f"{target_instance}; rebuild the system with longer "
                    "workloads"
                )

    # γ_j fragments: Q_j alone runs from D_j to distinct instance-(s+1)
    # outputs.  D_j configurations are recomputed by folding the spine.
    spine_tuple = tuple(spine)
    for record in groups:
        d_config = _advance(
            system,
            system.initial_configuration(),
            spine_tuple[: record.splice_position],
        )
        gamma = find_distinct_decisions(
            system,
            d_config,
            record.final_q,
            target_instance,
            max_configs=gamma_max_configs,
        )
        if gamma is None:
            raise CoveringFailure(
                f"group {record.index}: found no fragment in which "
                f"{record.final_q} output distinct values for instance "
                f"{target_instance} (Lemma 1 search budget "
                f"{gamma_max_configs})"
            )
        record.gamma = gamma
        narrative.append(
            f"group {record.index}: γ of {len(gamma)} steps drives "
            f"{record.final_q} to {len(record.final_q)} distinct outputs"
        )

    # Splice γ fragments into the spine at their D_j positions.
    final_schedule: List[int] = []
    cursor = 0
    for record in groups:
        final_schedule.extend(spine_tuple[cursor : record.splice_position])
        final_schedule.extend(record.gamma)
        cursor = record.splice_position
    final_schedule.extend(spine_tuple[cursor:])

    # Certify by replay.
    execution = replay(system, final_schedule)
    outputs = tuple(sorted(set(execution.instance_outputs(target_instance)),
                           key=repr))
    violations = check_k_agreement(execution, k)
    success = len(outputs) >= k + 1
    narrative.append(
        f"replay: instance {target_instance} outputs {outputs} "
        f"({'violation certified' if success else 'NO violation'})"
    )
    return CoveringResult(
        success=success,
        schedule=tuple(final_schedule),
        target_instance=target_instance,
        distinct_outputs=outputs,
        k=k,
        violations=violations,
        groups=groups,
        narrative=narrative,
    )
