"""Fragment search: the exploration primitive of covering arguments.

The inductive step of Theorem 2 (Figure 2, line 8) needs, from a
configuration ``D`` and a process group ``Q``:

    an execution fragment by ``Q`` until some ``q ∈ Q`` is *poised* for the
    first time to write to a register outside ``A`` — or the knowledge that
    no such fragment exists.

Because the runtime's step function is pure and configurations are
hashable, this is a plain BFS over the ``Q``-only reachable configuration
graph:

* a process whose next step writes outside ``A`` (checked with
  :meth:`System.peek`) is *poised*; the path to that configuration is the
  fragment δ and the search stops;
* poised steps are never *taken* — exactly like the proof, which freezes
  ``q`` just before its write;
* if the frontier exhausts without finding a poised process, the claim
  "no fragment by Q writes outside A" holds **for the explored space**:
  with a finite workload the Q-only graph is finite and the closure is
  exact; a ``max_configs`` cut degrades the answer to ``UNKNOWN``
  (the covering construction then still certifies its final output by
  replay, so an optimistic continuation can never produce a false theorem).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.memory.layout import RegisterCoord
from repro.memory.ops import is_write_access
from repro.runtime.events import MemoryEvent
from repro.runtime.system import Configuration, System

FOUND, CLOSED, UNKNOWN = "found", "closed", "unknown"


@dataclass(frozen=True)
class FragmentSearch:
    """Result of one fragment search.

    ``status`` is ``"found"`` (δ leads to a poised process), ``"closed"``
    (exhaustive: no Q-fragment ever writes outside A), or ``"unknown"``
    (budget cut).  On ``"found"``, ``schedule`` is δ, ``poised_pid`` the
    process about to write, and ``coord`` the register it is poised at.
    """

    status: str
    schedule: Tuple[int, ...] = ()
    poised_pid: Optional[int] = None
    coord: Optional[RegisterCoord] = None
    configs_explored: int = 0


def poised_write_outside(
    system: System,
    config: Configuration,
    pid: int,
    allowed: FrozenSet[RegisterCoord],
) -> Optional[RegisterCoord]:
    """The coord outside *allowed* that *pid* is poised to write, if any."""
    if not system.enabled(config, pid):
        return None
    event = system.peek(config, pid)
    if isinstance(event, MemoryEvent) and is_write_access(event.op):
        coord = system.layout.op_coord(event.op)
        if coord is not None and coord not in allowed:
            return coord
    return None


def find_write_outside(
    system: System,
    config: Configuration,
    group: Sequence[int],
    allowed: FrozenSet[RegisterCoord],
    *,
    max_configs: int = 100_000,
) -> FragmentSearch:
    """BFS the Q-only graph for a process poised to write outside *allowed*."""
    group = tuple(group)
    parents: Dict[Configuration, Tuple[Optional[Configuration], Optional[int]]] = {
        config: (None, None)
    }
    queue: deque[Configuration] = deque([config])
    explored = 0

    while queue:
        if explored >= max_configs:
            return FragmentSearch(status=UNKNOWN, configs_explored=explored)
        current = queue.popleft()
        explored += 1

        for pid in group:
            coord = poised_write_outside(system, current, pid, allowed)
            if coord is not None:
                return FragmentSearch(
                    status=FOUND,
                    schedule=_path(parents, current),
                    poised_pid=pid,
                    coord=coord,
                    configs_explored=explored,
                )

        for pid in group:
            if not system.enabled(current, pid):
                continue
            # Poised writes outside A are not taken (the proof freezes the
            # process there); everything else expands the frontier.
            if poised_write_outside(system, current, pid, allowed) is not None:
                continue  # pragma: no cover - already returned above
            successor = system.step(current, pid).config
            if successor not in parents:
                parents[successor] = (current, pid)
                queue.append(successor)

    return FragmentSearch(status=CLOSED, configs_explored=explored)


def _path(
    parents: Dict[Configuration, Tuple[Optional[Configuration], Optional[int]]],
    config: Configuration,
) -> Tuple[int, ...]:
    schedule: List[int] = []
    cursor: Optional[Configuration] = config
    while cursor is not None:
        parent, pid = parents[cursor]
        if pid is not None:
            schedule.append(pid)
        cursor = parent
    schedule.reverse()
    return tuple(schedule)


def find_distinct_decisions(
    system: System,
    config: Configuration,
    group: Sequence[int],
    instance: int,
    *,
    max_configs: int = 200_000,
) -> Optional[Tuple[int, ...]]:
    """Find a Q-only schedule after which the group's instance-*instance*
    outputs are pairwise distinct (the Lemma 1 executions used for the
    spliced γ fragments).

    For ``|group| = 1`` this is the deterministic solo run.  For larger
    groups the search is a BFS over interleavings; Lemma 1 guarantees a
    witness exists for any correct algorithm when the group members propose
    distinct values, but an incorrect/underprovisioned algorithm may lack
    one — ``None`` is then returned.
    """
    group = tuple(group)

    def achieved(candidate: Configuration) -> bool:
        outputs = []
        for pid in group:
            outs = candidate.procs[pid].outputs
            if len(outs) < instance:
                return False
            outputs.append(outs[instance - 1])
        return len(set(outputs)) == len(group)

    parents: Dict[Configuration, Tuple[Optional[Configuration], Optional[int]]] = {
        config: (None, None)
    }
    queue: deque[Configuration] = deque([config])
    explored = 0
    while queue:
        if explored >= max_configs:
            return None
        current = queue.popleft()
        explored += 1
        if achieved(current):
            return _path(parents, current)
        for pid in group:
            if not system.enabled(current, pid):
                continue
            if len(current.procs[pid].outputs) >= instance:
                continue  # this member is done with the target instance
            successor = system.step(current, pid).config
            if successor not in parents:
                parents[successor] = (current, pid)
                queue.append(successor)
    return None
