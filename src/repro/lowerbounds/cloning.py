"""Section 5: the anonymous lower bound's clone machinery, executable.

Anonymity lets the adversary run *clones* — processes with the same input
that shadow another process step for step and are indistinguishable from
it.  Theorem 10 builds on two executable pieces, both implemented here:

* :func:`alpha_execution` / :func:`register_sequence` — the Lemma 1
  executions ``α(V)`` (≤ m processes, all of ``V`` output) and their
  register footprints ``R(V)`` (distinct registers in first-write order);
* :func:`lemma9_glue` — the *Claim* inside Lemma 9: when ``c = ⌈(k+1)/m⌉``
  groups' solo executions write only registers of a common sequence ``R``,
  they can be glued — with paused clones providing per-group block writes
  that reset every register to the group's expected view — into a single
  execution where each group outputs its own value obliviously to the
  others, for ``k+1`` distinct outputs.

The glue is implemented for ``m = 1`` (each ``α(V)`` is a deterministic
solo run, as in the Fich–Herlihy–Shavit special case the theorem
generalizes); the paper's arithmetic says it needs
``n ≥ ⌈(k+1)/m⌉(m + (L² − L)/2)`` processes where ``L = |R|`` — exactly
:func:`~repro.lowerbounds.bounds.lemma9_process_requirement`.  Run against
the paper's own anonymous algorithm with an under-provisioned snapshot
(whose solo runs sweep components ``0..r−1`` in a fixed order regardless
of input, so all ``R(V)`` coincide), it produces a replay-certified
k-Agreement violation — experiment E5.

Every step of the choreography is validated against the solo trace's
structure; a deviation (which would mean the gluing hypothesis fails for
the attacked algorithm) raises :class:`GlueFailure` rather than producing
an uncertified result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._types import Value
from repro.errors import ReproError
from repro.lowerbounds.fragments import _path  # reuse the parent-path helper
from repro.memory.layout import RegisterCoord
from repro.memory.ops import is_write_access
from repro.runtime.events import DecideEvent, Event, InvokeEvent, MemoryEvent
from repro.runtime.runner import Execution, replay, run_solo
from repro.runtime.system import Configuration, System
from repro.spec.properties import Violation, check_k_agreement


class GlueFailure(ReproError):
    """The clone choreography diverged from the solo traces."""


# --------------------------------------------------------------------- #
# α(V) and R(V)
# --------------------------------------------------------------------- #


def register_sequence(
    execution: Execution, events: Optional[Sequence[Event]] = None
) -> Tuple[RegisterCoord, ...]:
    """``R(V)``: distinct registers written, in first-write order."""
    layout = execution.system.layout
    seen: List[RegisterCoord] = []
    for event in events if events is not None else execution.events:
        if isinstance(event, MemoryEvent) and is_write_access(event.op):
            coord = layout.op_coord(event.op)
            if coord is not None and coord not in seen:
                seen.append(coord)
    return tuple(seen)


def alpha_execution(
    system: System,
    group: Sequence[int],
    values: Sequence[Value],
    *,
    max_configs: int = 200_000,
) -> Optional[Execution]:
    """A Lemma 1 execution: only *group* steps; all of *values* are output.

    For ``|group| = 1`` this is the deterministic solo run.  For larger
    groups a BFS over group-only interleavings searches for a configuration
    whose instance-1 outputs cover *values*; Lemma 1 guarantees existence
    for a correct algorithm when the group proposes exactly those values.
    """
    if len(group) == 1:
        execution = run_solo(system, group[0])
        outputs = set(execution.instance_outputs(1))
        return execution if set(values) <= outputs else None

    from collections import deque

    target = set(values)
    initial = system.initial_configuration()
    parents: Dict[Configuration, Tuple[Optional[Configuration], Optional[int]]] = {
        initial: (None, None)
    }
    queue = deque([initial])
    explored = 0
    while queue:
        if explored >= max_configs:
            return None
        config = queue.popleft()
        explored += 1
        outputs = {
            proc.outputs[0] for proc in config.procs if proc.outputs
        }
        if target <= outputs:
            return replay(system, _path(parents, config))
        for pid in group:
            if not system.enabled(config, pid):
                continue
            successor = system.step(config, pid).config
            if successor not in parents:
                parents[successor] = (config, pid)
                queue.append(successor)
    return None


# --------------------------------------------------------------------- #
# Solo trace structure
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SoloTrace:
    """The structure of one deterministic solo run of a one-shot protocol.

    ``shape[s]`` describes step ``s`` as ``("invoke", None)``,
    ``("write", coord)``, ``("read", None)`` or ``("decide", None)`` —
    values are deliberately excluded so traces of different inputs can be
    compared structurally.
    """

    shape: Tuple[Tuple[str, Optional[RegisterCoord]], ...]
    registers: Tuple[RegisterCoord, ...]  # R(V): first-write order

    @property
    def length(self) -> int:
        return len(self.shape)

    def first_write_index(self, register_position: int) -> int:
        """σ-index of the first write to the x-th register of R(V)."""
        target = self.registers[register_position]
        for index, (kind, coord) in enumerate(self.shape):
            if kind == "write" and coord == target:
                return index
        raise GlueFailure(f"register {target} never written")  # pragma: no cover

    def last_write_index_before(self, register_position: int, limit: int) -> int:
        """σ-index of the last write to the x-th register before *limit*."""
        target = self.registers[register_position]
        best = None
        for index, (kind, coord) in enumerate(self.shape[:limit]):
            if kind == "write" and coord == target:
                best = index
        if best is None:
            raise GlueFailure(
                f"no write to {target} before σ-index {limit}"
            )
        return best


def solo_trace(system: System, pid: int) -> SoloTrace:
    """Run *pid* solo and record the structural shape of its execution."""
    execution = run_solo(system, pid)
    layout = system.layout
    shape: List[Tuple[str, Optional[RegisterCoord]]] = []
    for event in execution.events:
        if isinstance(event, InvokeEvent):
            shape.append(("invoke", None))
        elif isinstance(event, DecideEvent):
            shape.append(("decide", None))
        elif isinstance(event, MemoryEvent):
            if is_write_access(event.op):
                shape.append(("write", layout.op_coord(event.op)))
            else:
                shape.append(("read", None))
    return SoloTrace(
        shape=tuple(shape), registers=register_sequence(execution)
    )


# --------------------------------------------------------------------- #
# The Lemma 9 glue (m = 1)
# --------------------------------------------------------------------- #


@dataclass
class GlueResult:
    """Outcome of the clone choreography, replay-certified."""

    success: bool
    schedule: Tuple[int, ...]
    distinct_outputs: Tuple[Value, ...]
    k: int
    n_processes: int
    registers: int
    clones_per_group: int
    violations: List[Violation] = field(default_factory=list)
    narrative: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line account of the glue's outcome."""
        if self.success:
            return (
                f"clone glue: {len(self.distinct_outputs)} distinct outputs "
                f"(> k = {self.k}) from {self.n_processes} anonymous "
                f"processes over {self.registers} registers "
                f"({len(self.schedule)} certified steps)"
            )
        return "clone glue failed: " + (
            self.narrative[-1] if self.narrative else "unknown stage"
        )


def lemma9_glue(
    protocol_factory,
    k: int,
    inputs: Sequence[Value],
    *,
    max_solo_steps: int = 50_000,
) -> GlueResult:
    """Glue ``c = k+1`` solo executions of an anonymous one-shot algorithm.

    ``protocol_factory(n)`` must build the anonymous protocol instance for
    ``n`` processes (the construction computes how many processes — mains
    plus clones — it needs from the solo trace's register footprint, the
    paper's ``⌈(k+1)/m⌉(m + (L²−L)/2)`` with ``m = 1``).

    ``inputs`` supplies the ``c`` distinct values (one per group).
    """
    c = k + 1
    if len(set(inputs)) < c:
        raise GlueFailure(f"need {c} distinct inputs, got {inputs!r}")
    inputs = list(inputs)[:c]

    # Probe a solo run to learn the register footprint L = |R(V)|.
    n_probe = k + 2  # smallest non-trivial process count
    probe_protocol = protocol_factory(n_probe)
    probe_system = System(
        probe_protocol, workloads=[[inputs[0]]] * n_probe
    )
    probe = solo_trace(probe_system, 0)
    L = len(probe.registers)
    clones_per_group = L * (L - 1) // 2
    n = max(c * (1 + clones_per_group), k + 2)

    protocol = protocol_factory(n)
    narrative = [
        f"c={c} groups, solo footprint L={L} registers, "
        f"{clones_per_group} clones/group, n={n} processes, "
        f"{protocol.default_layout().register_count()} registers provisioned"
    ]

    # Group ℓ occupies pids [ℓ*(1+clones): main first, then its clones].
    group_base = [g * (1 + clones_per_group) for g in range(c)]
    workloads: List[List[Value]] = []
    for g in range(c):
        workloads.extend([[inputs[g]]] * (1 + clones_per_group))
    while len(workloads) < n:
        workloads.append([inputs[0]])  # spare processes, never scheduled
    system = System(protocol, workloads=workloads)

    # Solo traces per group must agree structurally (anonymity in action).
    sigma = solo_trace(system, group_base[0])
    for g in range(1, c):
        other = solo_trace(system, group_base[g])
        if other.shape != sigma.shape or other.registers != sigma.registers:
            raise GlueFailure(
                f"solo traces of groups 0 and {g} differ structurally; the "
                "common-R(V) hypothesis fails for these inputs"
            )
    if len(sigma.registers) != L:
        raise GlueFailure("probe footprint does not transfer to the full system")

    # prefix_end[j] = σ-index of the first write to R[j] (0-based), i.e. the
    # end of the round-j prefix; prefix_end[L] = the entire run.
    prefix_end = [sigma.first_write_index(x) for x in range(L)] + [sigma.length]

    # Clone assignments: round r ∈ 2..L uses r−1 clones paused at the last
    # writes to R[0..r−2] within prefix_end[r−1].
    assignments: List[Tuple[int, int, int]] = []  # (round, reg position, pause σ-index)
    for r in range(2, L + 1):
        for x in range(r - 1):
            pause = sigma.last_write_index_before(x, prefix_end[r - 1])
            assignments.append((r, x, pause))
    assert len(assignments) == clones_per_group

    # Choreography state.
    config = system.initial_configuration()
    schedule: List[int] = []
    progress = {pid: 0 for pid in range(n)}  # σ-index each process is at

    def step_expect(pid: int, sigma_index: int) -> None:
        nonlocal config
        expected_kind, expected_coord = sigma.shape[sigma_index]
        result = system.step(config, pid)
        event = result.event
        actual: Tuple[str, Optional[RegisterCoord]]
        if isinstance(event, InvokeEvent):
            actual = ("invoke", None)
        elif isinstance(event, DecideEvent):
            actual = ("decide", None)
        elif is_write_access(event.op):
            actual = ("write", system.layout.op_coord(event.op))
        else:
            actual = ("read", None)
        if actual != (expected_kind, expected_coord):
            raise GlueFailure(
                f"p{pid} diverged at σ-index {sigma_index}: expected "
                f"{(expected_kind, expected_coord)}, took {actual}"
            )
        config = result.config
        schedule.append(pid)
        progress[pid] = sigma_index + 1

    def lockstep(group: int, until: int, active_clones: Dict[int, int]) -> None:
        """Advance the group's main to σ-index *until*, shadowed by clones.

        ``active_clones`` maps clone pid -> pause σ-index; a clone steps
        right behind the main while its σ-progress is below its pause.
        """
        main = group_base[group]
        while progress[main] < until:
            s = progress[main]
            step_expect(main, s)
            for clone_pid, pause in active_clones.items():
                if progress[clone_pid] == s and s < pause:
                    step_expect(clone_pid, s)

    # Assign concrete clone pids per group.
    clone_pids: Dict[int, Dict[Tuple[int, int], int]] = {}
    clone_pauses: Dict[int, Dict[int, int]] = {}
    for g in range(c):
        clone_pids[g] = {}
        clone_pauses[g] = {}
        for offset, (r, x, pause) in enumerate(assignments):
            pid = group_base[g] + 1 + offset
            clone_pids[g][(r, x)] = pid
            clone_pauses[g][pid] = pause

    # β_0: every group's main (and all clones) runs its no-write prefix.
    for g in range(c):
        lockstep(g, prefix_end[0], clone_pauses[g])
    narrative.append(f"β₀: {c} groups through their no-write prefixes")

    # Rounds 1..L.
    for r in range(1, L + 1):
        for g in range(c):
            # Block write by this round's clones (r−1 of them, rounds≥2).
            for x in range(r - 1):
                pid = clone_pids[g][(r, x)]
                pause = clone_pauses[g][pid]
                if progress[pid] != pause:
                    raise GlueFailure(
                        f"round {r}: clone p{pid} of group {g} is at "
                        f"σ-index {progress[pid]}, expected pause {pause}"
                    )
                step_expect(pid, pause)  # performs exactly its poised write
            # Main continues to the next prefix boundary.
            lockstep(g, prefix_end[r], clone_pauses[g])
        narrative.append(
            f"round {r}: block writes of {max(r - 1, 0)} clones/group, mains "
            f"advanced to σ-index {prefix_end[r]}"
        )

    # Certify by replay.
    execution = replay(system, schedule)
    outputs = tuple(
        sorted(set(execution.instance_outputs(1)), key=repr)
    )
    violations = check_k_agreement(execution, k)
    success = len(outputs) >= k + 1
    narrative.append(
        f"replay: instance 1 outputs {outputs} "
        f"({'violation certified' if success else 'NO violation'})"
    )
    return GlueResult(
        success=success,
        schedule=tuple(schedule),
        distinct_outputs=outputs,
        k=k,
        n_processes=n,
        registers=system.layout.register_count(),
        clones_per_group=clones_per_group,
        violations=violations,
        narrative=narrative,
    )
