"""Violation certificates: portable, re-checkable lower-bound evidence.

Every lower-bound artifact in this library — a covering construction, a
clone glue, an explorer witness — boils down to the same thing: a system
description plus a schedule whose replay violates k-Agreement.  This module
gives that a single on-disk format and a verifier, so evidence found by an
expensive search can be archived, shipped in a bug report, or re-checked
in CI in milliseconds:

    certificate = from_covering(result, system)
    save_certificate(certificate, "violation.json")
    ...
    verify_certificate(load_certificate("violation.json"))  # rebuilds the
    # system from the metadata, replays, and re-checks k-Agreement

Verification trusts nothing but the replay: a tampered or stale
certificate simply fails to verify.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.agreement.anonymous import (
    AnonymousOneShotSetAgreement,
    AnonymousRepeatedSetAgreement,
)
from repro.agreement.oneshot import OneShotSetAgreement
from repro.agreement.repeated import RepeatedSetAgreement
from repro.errors import ConfigurationError, SpecificationViolation
from repro.runtime.runner import replay
from repro.runtime.system import System
from repro.spec.properties import check_k_agreement

FORMAT_VERSION = 1

_PROTOCOLS = {
    "oneshot-figure3": OneShotSetAgreement,
    "repeated-figure4": RepeatedSetAgreement,
    "anonymous-figure5": AnonymousRepeatedSetAgreement,
    "anonymous-oneshot-figure5": AnonymousOneShotSetAgreement,
}


@dataclass(frozen=True)
class ViolationCertificate:
    """Everything needed to rebuild the system and replay the violation.

    Workload values must be strings (they are round-tripped through JSON);
    all built-in workload generators produce strings.
    """

    protocol: str
    n: int
    m: int
    k: int
    components: Optional[int]
    workloads: Tuple[Tuple[str, ...], ...]
    schedule: Tuple[int, ...]
    claim: str  # human-readable statement of what this certifies

    def build_system(self) -> System:
        """Reconstruct the attacked system from the recorded metadata."""
        if self.protocol not in _PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; known: "
                f"{sorted(_PROTOCOLS)}"
            )
        kwargs = dict(n=self.n, m=self.m, k=self.k)
        if self.components is not None:
            kwargs["components"] = self.components
        protocol = _PROTOCOLS[self.protocol](**kwargs)
        return System(protocol, workloads=[list(w) for w in self.workloads])


def certificate_for_system(
    system: System, schedule, claim: str
) -> ViolationCertificate:
    """Package a schedule against *system* as a certificate."""
    if system.workloads is None:
        raise ConfigurationError(
            "certificates require static workloads"
        )
    automaton = system.automaton
    params = automaton.params
    return ViolationCertificate(
        protocol=automaton.name,
        n=params["n"],
        m=params.get("m", 1),
        k=params["k"],
        components=params.get("components"),
        workloads=tuple(tuple(str(v) for v in w) for w in system.workloads),
        schedule=tuple(schedule),
        claim=claim,
    )


def verify_certificate(certificate: ViolationCertificate) -> List:
    """Rebuild, replay, re-check.  Returns the violations found.

    Raises :class:`~repro.errors.SpecificationViolation` if the replay does
    **not** exhibit a k-Agreement violation — i.e. the certificate fails.
    """
    system = certificate.build_system()
    execution = replay(system, certificate.schedule)
    violations = check_k_agreement(execution, certificate.k)
    if not violations:
        raise SpecificationViolation(
            "CertificateCheck",
            f"replaying {len(certificate.schedule)} steps produced no "
            f"k-Agreement violation (claim was: {certificate.claim})",
        )
    return violations


def save_certificate(
    certificate: ViolationCertificate, path: Union[str, pathlib.Path]
) -> None:
    """Write the certificate as JSON at *path*."""
    payload = {
        "format_version": FORMAT_VERSION,
        "protocol": certificate.protocol,
        "n": certificate.n,
        "m": certificate.m,
        "k": certificate.k,
        "components": certificate.components,
        "workloads": [list(w) for w in certificate.workloads],
        "schedule": list(certificate.schedule),
        "claim": certificate.claim,
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_certificate(path: Union[str, pathlib.Path]) -> ViolationCertificate:
    """Read a certificate written by :func:`save_certificate`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported certificate format {payload.get('format_version')!r}"
        )
    return ViolationCertificate(
        protocol=payload["protocol"],
        n=payload["n"],
        m=payload["m"],
        k=payload["k"],
        components=payload["components"],
        workloads=tuple(tuple(w) for w in payload["workloads"]),
        schedule=tuple(payload["schedule"]),
        claim=payload["claim"],
    )
