"""Closed-form bounds: every cell of the paper's Figure 1.

For m-obstruction-free k-set agreement among n processes, 1 ≤ m ≤ k < n,
inputs from a domain D with |D| > k:

====================  =========================  ============================
                      Repeated                   One-shot
====================  =========================  ============================
Non-anonymous lower   n + m − k     (Thm 2)      2             ([4])
Non-anonymous upper   min(n+2m−k,n) (Thm 8)      min(n+2m−k,n) (Thm 7)
Anonymous lower       n + m − k     (Thm 2)      > sqrt(m(n/k − 2)), D = IN
                                                 (Thm 10)
Anonymous upper       (m+1)(n−k)+m²+1 (Thm 11)   (m+1)(n−k)+m²  (§6 remark)
====================  =========================  ============================

The anonymous *repeated* lower bound is the Theorem 2 corollary (anonymity
only restricts algorithms, so the bound carries over); the non-anonymous
one-shot lower bound of 2 registers is cited from [4].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.agreement.base import validate_parameters


def repeated_lower_bound(n: int, m: int, k: int) -> int:
    """Theorem 2: repeated m-OF k-set agreement needs ≥ n+m−k registers."""
    validate_parameters(n, m, k)
    return n + m - k


def repeated_upper_bound(n: int, m: int, k: int) -> int:
    """Theorem 8: min(n+2m−k, n) registers suffice for the repeated problem."""
    validate_parameters(n, m, k)
    return min(n + 2 * m - k, n)


def oneshot_upper_bound(n: int, m: int, k: int) -> int:
    """Theorem 7: min(n+2m−k, n) registers suffice one-shot (same algorithm)."""
    return repeated_upper_bound(n, m, k)


def oneshot_nonanonymous_lower_bound(n: int, m: int, k: int) -> int:
    """The only known one-shot non-anonymous lower bound: 2 registers [4]."""
    validate_parameters(n, m, k)
    return 2


def anonymous_oneshot_lower_bound(n: int, m: int, k: int) -> float:
    """Theorem 10: anonymous one-shot algorithms need > sqrt(m(n/k − 2)).

    Returns the (real-valued) threshold; the register count must strictly
    exceed it.  Generalizes the Ω(√n) bound of Fich–Herlihy–Shavit [6]
    (the special case m = k = 1).
    """
    validate_parameters(n, m, k)
    return math.sqrt(m * (n / k - 2)) if n / k > 2 else 0.0


def anonymous_repeated_upper_bound(n: int, m: int, k: int) -> int:
    """Theorem 11: (m+1)(n−k) + m² + 1 registers (snapshot + register H)."""
    validate_parameters(n, m, k)
    return (m + 1) * (n - k) + m * m + 1


def anonymous_oneshot_upper_bound(n: int, m: int, k: int) -> int:
    """§6 closing remark: one-shot drops register H, saving one register."""
    return anonymous_repeated_upper_bound(n, m, k) - 1


def lemma9_process_requirement(m: int, k: int, r: int) -> int:
    """Lemma 9's hypothesis: n ≥ ⌈(k+1)/m⌉ · (m + (r² − r)/2).

    The clone-based induction needs this many processes to supply the
    ``c·j(j−1)/2`` clones added while gluing executions.
    """
    c = math.ceil((k + 1) / m)
    return c * (m + (r * r - r) // 2)


def baseline_register_count(n: int, k: int) -> int:
    """Space of the DFGR'13 baseline [4] for m = 1: 2(n−k) registers."""
    validate_parameters(n, 1, k)
    return 2 * (n - k)


@dataclass(frozen=True)
class BoundsCell:
    """One cell of Figure 1: a bound value plus its provenance.

    ``kind`` is ``"lower"`` (registers required: ≥ / >) or ``"upper"``
    (registers sufficient: ≤).
    """

    value: float
    source: str
    strict: bool = False  # True when the bound is "more than" (Thm 10)
    kind: str = "lower"

    def __str__(self) -> str:
        if self.kind == "upper":
            op = "<="
        else:
            op = ">" if self.strict else ">="
        return f"{op} {self.value:g} ({self.source})"


def figure1_table(n: int, m: int, k: int) -> Dict[str, BoundsCell]:
    """The full Figure 1 for one (n, m, k): eight labelled cells."""
    validate_parameters(n, m, k)
    return {
        "non-anonymous/repeated/lower": BoundsCell(
            repeated_lower_bound(n, m, k), "Theorem 2"
        ),
        "non-anonymous/repeated/upper": BoundsCell(
            repeated_upper_bound(n, m, k), "Theorem 8", kind="upper"
        ),
        "non-anonymous/one-shot/lower": BoundsCell(
            oneshot_nonanonymous_lower_bound(n, m, k), "[4]"
        ),
        "non-anonymous/one-shot/upper": BoundsCell(
            oneshot_upper_bound(n, m, k), "Theorem 7", kind="upper"
        ),
        "anonymous/repeated/lower": BoundsCell(
            repeated_lower_bound(n, m, k), "Theorem 2 (corollary)"
        ),
        "anonymous/repeated/upper": BoundsCell(
            anonymous_repeated_upper_bound(n, m, k), "Theorem 11", kind="upper"
        ),
        "anonymous/one-shot/lower": BoundsCell(
            anonymous_oneshot_lower_bound(n, m, k), "Theorem 10", strict=True
        ),
        "anonymous/one-shot/upper": BoundsCell(
            anonymous_oneshot_upper_bound(n, m, k), "§6 remark", kind="upper"
        ),
    }


def bounds_consistent(n: int, m: int, k: int) -> bool:
    """Sanity predicate: every lower bound is at most its upper bound."""
    table = figure1_table(n, m, k)
    pairs = [
        ("non-anonymous/repeated/lower", "non-anonymous/repeated/upper"),
        ("non-anonymous/one-shot/lower", "non-anonymous/one-shot/upper"),
        ("anonymous/repeated/lower", "anonymous/repeated/upper"),
        ("anonymous/one-shot/lower", "anonymous/one-shot/upper"),
    ]
    return all(table[lo].value <= table[hi].value for lo, hi in pairs)
