"""The DFGR'13 baseline [4]: 1-obstruction-free k-set agreement, 2(n−k) regs.

The paper's §4.1 positions Figure 3 against the earlier algorithm of
Delporte-Gallet, Fauconnier, Gafni and Rajsbaum ("Black art: obstruction-free
k-set agreement with |MWMR registers| < |processes|", NETYS 2013), which is
1-obstruction-free and uses ``2(n−k)`` registers — versus Figure 3's
``n−k+2`` at ``m = 1``.

Substitution note (see DESIGN.md §2): the pseudocode of [4] is not contained
in the reproduced paper, so this baseline instantiates the Figure 3
automaton with ``m = 1`` over ``2(n−k)`` snapshot components.  Figure 3's
correctness proof only needs ``r ≥ n + 2m − k``, which holds here exactly
when ``k ≤ n − 2`` (``2(n−k) ≥ n−k+2  ⇔  n−k ≥ 2``); the construction
therefore refuses ``k = n − 1``, the one regime where the real [4] is
*smaller* than Figure 3 (2 registers vs 3 — the open-question case the
paper's §7 highlights).  What the benchmarks compare — register counts and
the progress condition — matches [4] exactly on the supported regime.
"""

from __future__ import annotations

from repro.agreement.oneshot import OneShotSetAgreement
from repro.errors import ConfigurationError


class BaselineOneShotSetAgreement(OneShotSetAgreement):
    """Figure 3 at ``m = 1`` over the baseline's ``2(n−k)`` components."""

    name = "baseline-dfgr13"

    def __init__(self, n: int, k: int) -> None:
        if k > n - 2:
            raise ConfigurationError(
                f"baseline reconstruction requires k <= n-2 (got n={n}, k={k}): "
                "with k = n-1 the original [4] uses 2 registers, below what "
                "the Figure 3 proof supports (see module docstring)"
            )
        super().__init__(n=n, m=1, k=k, components=2 * (n - k))

    def nominal_components(self) -> int:
        return 2 * (self.n - self.k)
