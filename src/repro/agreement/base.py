"""Shared scaffolding for the set-agreement protocol automata.

The k-set agreement problem (paper §2.1): each ``Propose(v)`` must output a
value such that, per instance ``i``,

* Validity: outputs of instance ``i`` ⊆ inputs of instance ``i``;
* k-Agreement: at most ``k`` distinct values are output in instance ``i``;

and m-Obstruction-Freedom: in every execution in which at most ``m``
processes take infinitely many steps, every correct process completes each
of its operations.

The parameter regime of every space bound is ``1 ≤ m ≤ k < n`` (Lemma 1
shows ``m > k`` is unsolvable; ``k ≥ n`` is trivial).
"""

from __future__ import annotations

from typing import Optional

from repro._types import Params
from repro.errors import ConfigurationError
from repro.runtime.automaton import ProtocolAutomaton

#: Canonical name of the shared snapshot object in all paper algorithms.
SNAPSHOT = "A"
#: Canonical name of Figure 5's extra output register.
HISTORY_REGISTER = "H"


def validate_parameters(n: int, m: int, k: int) -> None:
    """Enforce the paper's parameter regime ``1 ≤ m ≤ k < n``.

    Raises :class:`~repro.errors.ConfigurationError` with a message naming
    the violated constraint and the relevant impossibility/triviality result.
    """
    if n < 2:
        raise ConfigurationError(f"need at least 2 processes, got n={n}")
    if m < 1:
        raise ConfigurationError(f"need m >= 1, got m={m}")
    if m > k:
        raise ConfigurationError(
            f"m={m} > k={k}: m-obstruction-free k-set agreement is unsolvable "
            "from registers when m > k (paper, Lemma 1)"
        )
    if k >= n:
        raise ConfigurationError(
            f"k={k} >= n={n}: the problem is trivial (each process outputs its "
            "own input; use agreement.trivial.TrivialSetAgreement)"
        )


class SetAgreementAutomaton(ProtocolAutomaton):
    """Base class pinning down the (n, m, k) parameters and conventions."""

    def __init__(
        self, n: int, m: int, k: int, *, components: Optional[int] = None, **extra
    ) -> None:
        validate_parameters(n, m, k)
        params = Params(n=n, m=m, k=k, **extra)
        if components is not None:
            if components < 1:
                raise ConfigurationError("components must be >= 1")
            params = params.updated(components=components)
        super().__init__(params)

    @property
    def n(self) -> int:
        return self.params["n"]

    @property
    def m(self) -> int:
        return self.params["m"]

    @property
    def k(self) -> int:
        return self.params["k"]

    @property
    def components(self) -> int:
        """Number of snapshot components this instance runs with.

        Defaults to the protocol's nominal count; experiments deliberately
        under-provision it to exercise the lower-bound constructions.
        """
        return self.params.get("components", self.nominal_components())

    def nominal_components(self) -> int:
        """The component count the paper's theorem prescribes."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable summary of this instance's parameters."""
        return (
            f"{self.name}(n={self.n}, m={self.m}, k={self.k}, "
            f"r={self.components})"
        )
