"""Figure 4: repeated m-obstruction-free k-set agreement (Theorem 8).

The repeated problem gives every process an infinite sequence of agreement
instances; the i-th ``Propose`` of each process participates in instance
``i``.  The algorithm reuses Figure 3's preference-circulation loop over the
same snapshot object ``A`` with ``r = n + 2m − k`` components, extended with
two mechanisms (paper §4.2, Appendix A):

* every stored entry is a 4-tuple ``(pref, id, t, history)`` carrying the
  instance number ``t`` and the full sequence ``history`` of outputs the
  process produced for instances ``1 .. t−1``;
* *shortcuts*: a process that sees an entry of a higher instance ``t' > t``
  adopts that entry's history wholesale and outputs its ``t``-th element
  (line 15–16); a process whose own history already covers instance ``t``
  outputs from it without touching shared memory (lines 9–10).

Entries of *lower* instances (``t' < t``) are treated exactly like ⊥
(paper: "a value stored by a process in a lower instance is treated as ⊥"),
both in the decision test (line 17) and in the adoption test (line 22).

Persistent local variables ``i``, ``t``, ``history`` survive across
invocations — in particular, the first location a ``Propose`` updates is the
last location of the previous one (Appendix A).

Deviation note: as in Figure 3, the decide rule nominally picks the first
*duplicated* t-tuple, which exists at nominal ``r`` by pigeonhole; when
experiments under-provision ``r``, the first entry is used as fallback so
the automaton stays total.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro._types import Value, is_bot
from repro.agreement.base import SNAPSHOT, SetAgreementAutomaton
from repro.errors import ProtocolViolation
from repro.memory.layout import MemoryLayout, snapshot_layout
from repro.memory.ops import ScanOp, UpdateOp
from repro.runtime.automaton import Context, Decide

UPDATE, SCAN, DECIDED = "update", "scan", "decided"


@dataclass(frozen=True)
class RepeatedPersistent:
    """The paper's persistent local variables (Figure 4, lines 3–6)."""

    i: int = 0
    t: int = 0
    history: Tuple[Value, ...] = ()


@dataclass(frozen=True)
class RepeatedState:
    """Per-operation state: current instance ``t`` plus the Figure 3 loop."""

    pref: Value
    i: int
    t: int
    history: Tuple[Value, ...]
    phase: str
    decision: Optional[Value] = None


def is_instance_tuple(entry: Value, t: int) -> bool:
    """True iff *entry* is a stored tuple of instance exactly ``t``."""
    return (not is_bot(entry)) and entry[2] == t


def effectively_bot(entry: Value, t: int) -> bool:
    """⊥, or a tuple of a lower instance (treated as ⊥, paper §4.2)."""
    return is_bot(entry) or entry[2] < t


def first_duplicate_t_tuple(
    scan: Tuple[Value, ...], t: int
) -> Optional[int]:
    """Min index ``j1`` with ``j2 > j1`` s.t. both hold the same t-tuple."""
    seen: dict[Value, int] = {}
    best: Optional[int] = None
    for j, entry in enumerate(scan):
        if not is_instance_tuple(entry, t):
            continue
        if entry in seen:
            j1 = seen[entry]
            best = j1 if best is None else min(best, j1)
        else:
            seen[entry] = j
    return best


class RepeatedSetAgreement(SetAgreementAutomaton):
    """The Figure 4 automaton: repeated k-set agreement, one thread."""

    name = "repeated-figure4"
    anonymous = False
    n_threads = 1

    def nominal_components(self) -> int:
        return self.n + 2 * self.m - self.k

    def default_layout(self) -> MemoryLayout:
        return snapshot_layout(SNAPSHOT, self.components)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def initial_persistent(self, ctx: Context) -> RepeatedPersistent:
        return RepeatedPersistent()

    def begin(
        self,
        ctx: Context,
        persistent: RepeatedPersistent,
        value: Value,
        invocation: int,
    ):
        t = persistent.t + 1
        if t != invocation:
            raise ProtocolViolation(
                f"instance counter {t} out of sync with invocation {invocation}"
            )
        if len(persistent.history) >= t:
            # Lines 9-10: this instance's output is already known locally.
            state = RepeatedState(
                pref=None,
                i=persistent.i,
                t=t,
                history=persistent.history,
                phase=DECIDED,
                decision=persistent.history[t - 1],
            )
            return (state,)
        state = RepeatedState(
            pref=value,
            i=persistent.i,
            t=t,
            history=persistent.history,
            phase=UPDATE,
        )
        return (state,)

    def pending(self, ctx: Context, thread: int, state: RepeatedState):
        if state.phase == UPDATE:
            entry = (state.pref, ctx.identifier, state.t, state.history)
            return UpdateOp(SNAPSHOT, state.i, entry)
        if state.phase == SCAN:
            return ScanOp(SNAPSHOT)
        if state.phase == DECIDED:
            return Decide(
                output=state.decision,
                persistent=RepeatedPersistent(
                    i=state.i, t=state.t, history=state.history
                ),
            )
        raise ProtocolViolation(f"unknown phase {state.phase!r}")

    def apply(self, ctx: Context, thread: int, state: RepeatedState, response):
        if state.phase == UPDATE:
            return replace(state, phase=SCAN)
        if state.phase == SCAN:
            return self._after_scan(ctx, state, response)
        raise ProtocolViolation(f"no transition from phase {state.phase!r}")

    # ------------------------------------------------------------------ #
    # Lines 15-25
    # ------------------------------------------------------------------ #

    def _after_scan(
        self, ctx: Context, state: RepeatedState, scan: Tuple[Value, ...]
    ) -> RepeatedState:
        r = self.components
        t = state.t

        # Lines 15-16: adopt the history of a process in a higher instance.
        for entry in scan:
            if not is_bot(entry) and entry[2] > t:
                his = entry[3]
                return replace(
                    state, history=his, phase=DECIDED, decision=his[t - 1]
                )

        # Lines 17-21: decide when at most m distinct entries, all of
        # instance exactly t (neither ⊥ nor lower-instance).
        distinct = {entry for entry in scan}
        all_current = all(
            not is_bot(entry) and entry[2] >= t for entry in scan
        )
        if len(distinct) <= self.m and all_current:
            j1 = first_duplicate_t_tuple(scan, t)
            winner = scan[j1][0] if j1 is not None else scan[0][0]
            new_history = state.history + (winner,)
            return replace(
                state, history=new_history, phase=DECIDED, decision=winner
            )

        # Lines 22-24: adopt the value of the first duplicated t-tuple when
        # every other location is a foreign t-tuple.  As in the one-shot
        # algorithm (see that class's deviation note), an adoption that
        # would not change the preference counts as *keeping* it, so the
        # location advances instead — Lemma 5's dichotomy, required for
        # m-obstruction-freedom.
        own_entry = (state.pref, ctx.identifier, t, state.history)
        others_clean = all(
            not effectively_bot(scan[j], t) and scan[j] != own_entry
            for j in range(r)
            if j != state.i
        )
        j1 = first_duplicate_t_tuple(scan, t)
        if others_clean and j1 is not None and scan[j1][0] != state.pref:
            return replace(state, pref=scan[j1][0], phase=UPDATE)

        # Line 25: advance the location.
        return replace(state, i=(state.i + 1) % r, phase=UPDATE)
