"""Consensus conveniences: the ``k = 1`` corner of the parameter space.

Consensus is the special case ``k = 1`` (paper §1).  Wait-free consensus is
impossible from registers, but obstruction-free consensus is solvable, and
the paper's results pin down its repeated space complexity exactly:

* lower bound ``n + m − k = n`` registers (Theorem 2 with ``m = k = 1``);
* upper bound ``min(n + 2m − k, n) = n`` registers (Theorem 8);

closing, for the repeated problem, the gap the one-shot problem famously
leaves open between Ω(√n) [6] and O(n).

These factories are thin wrappers over the general automata so examples and
benchmarks can speak "consensus" directly.
"""

from __future__ import annotations

from repro.agreement.oneshot import OneShotSetAgreement
from repro.agreement.repeated import RepeatedSetAgreement
from repro.agreement.anonymous import AnonymousRepeatedSetAgreement


def obstruction_free_consensus(n: int, *, components: int = None) -> OneShotSetAgreement:
    """One-shot obstruction-free consensus (Figure 3, ``m = k = 1``).

    The nominal snapshot has ``n + 1`` components; Theorem 7 implements it
    with ``min(n+1, n) = n`` registers via single-writer snapshots [1, 13].
    """
    return OneShotSetAgreement(n=n, m=1, k=1, components=components)


def repeated_consensus(n: int, *, components: int = None) -> RepeatedSetAgreement:
    """Repeated obstruction-free consensus (Figure 4, ``m = k = 1``).

    Exactly ``n`` registers are necessary (Theorem 2) and sufficient
    (Theorem 8) — the paper's headline tight bound.
    """
    return RepeatedSetAgreement(n=n, m=1, k=1, components=components)


def anonymous_repeated_consensus(n: int) -> AnonymousRepeatedSetAgreement:
    """Anonymous repeated obstruction-free consensus (Figure 5, ``m = k = 1``).

    Uses ``2(n-1) + 1 + 1 = 2n`` registers per Theorem 11.
    """
    return AnonymousRepeatedSetAgreement(n=n, m=1, k=1)
