"""Figure 3: one-shot m-obstruction-free k-set agreement (Theorem 7).

The algorithm runs on a snapshot object ``A`` with ``r = n + 2m − k``
components, all initially ⊥.  Each process keeps a preferred value ``pref``
(initially its input) and a location ``i`` (initially 0) and loops:

1. ``update(i, (pref, id))``;
2. ``s ← scan()``;
3. *(decide)* if ``s`` holds at most ``m`` distinct pairs and no ⊥: output
   the value of the first pair that appears twice (line 10);
4. *(adopt)* else if no copy of the process's own pair appears anywhere but
   position ``i``, and some pair appears twice: adopt the value of the first
   duplicated pair as ``pref`` — and *stay* at location ``i`` (lines 11–13);
5. *(advance)* else ``i ← (i+1) mod r`` (line 14).

Intuition: the first ``k − m`` deciders may output anything; the remaining
``ℓ = n − k + m`` processes are forced, by the pigeonhole over the ``r``
components, to keep seeing duplicated pairs and converge onto at most ``m``
values (Lemma 4), for ≤ k outputs total.

Deviation note (degenerate component counts): line 10 of the paper assumes a
duplicated pair exists, which holds whenever ``r > m`` — always true in the
paper's regime since ``r = n+2m−k ≥ 2m+1``.  To keep the automaton total
when experiments deliberately under-provision ``r ≤ m``, the first pair of
the scan is used when no duplicate exists.  This extension never fires at
nominal parameters (asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from repro._types import Value, is_bot
from repro.agreement.base import SNAPSHOT, SetAgreementAutomaton
from repro.errors import ProtocolViolation
from repro.memory.layout import MemoryLayout, snapshot_layout
from repro.memory.ops import ScanOp, UpdateOp
from repro.runtime.automaton import Context, Decide

#: phases of the per-operation state machine
UPDATE, SCAN, DECIDED = "update", "scan", "decided"


@dataclass(frozen=True)
class OneShotState:
    """Per-operation local state: the paper's ``pref`` and ``i`` plus a PC."""

    pref: Value
    i: int
    phase: str
    decision: Optional[Value] = None


def first_duplicate_index(scan: Tuple[Value, ...]) -> Optional[int]:
    """The paper's ``min{j1 : ∃ j2 > j1, s[j1] = s[j2]}``, or ``None``.

    ⊥ entries never count as duplicates of each other: the paper's lines 10
    and 12 only ever run where the relevant entries are non-⊥ pairs, and
    treating ⊥ as a value would let line 12 adopt "the value in ⊥".
    """
    seen: dict[Value, int] = {}
    best: Optional[int] = None
    for j, entry in enumerate(scan):
        if is_bot(entry):
            continue
        if entry in seen:
            j1 = seen[entry]
            best = j1 if best is None else min(best, j1)
        else:
            seen[entry] = j
    return best


class OneShotSetAgreement(SetAgreementAutomaton):
    """The Figure 3 automaton.  One thread, one invocation per process."""

    name = "oneshot-figure3"
    anonymous = False
    n_threads = 1

    def nominal_components(self) -> int:
        return self.n + 2 * self.m - self.k

    def default_layout(self) -> MemoryLayout:
        return snapshot_layout(SNAPSHOT, self.components)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def begin(self, ctx: Context, persistent: Any, value: Value, invocation: int):
        if invocation != 1:
            raise ProtocolViolation(
                f"{self.name} is one-shot; process {ctx.pid} invoked Propose "
                f"a {invocation}th time"
            )
        return (OneShotState(pref=value, i=0, phase=UPDATE),)

    def pending(self, ctx: Context, thread: int, state: OneShotState):
        if state.phase == UPDATE:
            return UpdateOp(SNAPSHOT, state.i, (state.pref, ctx.identifier))
        if state.phase == SCAN:
            return ScanOp(SNAPSHOT)
        if state.phase == DECIDED:
            return Decide(output=state.decision, persistent=None)
        raise ProtocolViolation(f"unknown phase {state.phase!r}")

    def apply(self, ctx: Context, thread: int, state: OneShotState, response):
        if state.phase == UPDATE:
            return replace(state, phase=SCAN)
        if state.phase == SCAN:
            return self._after_scan(ctx, state, response)
        raise ProtocolViolation(f"no transition from phase {state.phase!r}")

    # ------------------------------------------------------------------ #
    # The decision logic of lines 9-14
    # ------------------------------------------------------------------ #

    def _after_scan(
        self, ctx: Context, state: OneShotState, scan: Tuple[Value, ...]
    ) -> OneShotState:
        r = self.components
        own_pair = (state.pref, ctx.identifier)
        distinct = {entry for entry in scan}

        # Line 9-10: decide when at most m distinct pairs fill the snapshot.
        if len(distinct) <= self.m and not any(is_bot(entry) for entry in scan):
            j1 = first_duplicate_index(scan)
            pick = scan[j1] if j1 is not None else scan[0]
            return replace(state, phase=DECIDED, decision=pick[0])

        # Line 11-13: adopt the first duplicated pair's value, keep location.
        # Deviation note: when the minimal duplicated pair already carries
        # the process's current preference, lines 12-13 as written would
        # "set" pref to itself and stay at location i forever (a solo
        # livelock, observable in simulation).  The progress proof's
        # dichotomy — "either keeps its preferred value and increments i,
        # or sets its preferred value" (Lemma 5) — resolves the ambiguity:
        # a no-op assignment counts as *keeping* the preference, so the
        # location advances.  Lemma 4's Case 2b is unaffected (the update
        # following such a scan stores a value that appears duplicated,
        # hence in V by the induction hypothesis), and Lemma 5's Case 2
        # argument positively requires this reading: with the minimal
        # duplicate fixed inside never-written registers, a stuck process
        # would otherwise re-adopt one value forever or ping-pong.
        others_clean = all(
            not is_bot(scan[j]) and scan[j] != own_pair
            for j in range(r)
            if j != state.i
        )
        j1 = first_duplicate_index(scan)
        if others_clean and j1 is not None and scan[j1][0] != state.pref:
            return replace(state, pref=scan[j1][0], phase=UPDATE)

        # Line 14: advance the location.
        return replace(state, i=(state.i + 1) % r, phase=UPDATE)
