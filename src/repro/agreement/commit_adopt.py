"""A round-based commit-adopt consensus baseline (2n SWMR registers).

An independent obstruction-free consensus, *not* from the paper: the
folklore construction that iterates the two phases of Gafni's commit-adopt
through increasing round numbers, over two arrays ``A`` (announce) and
``B`` (commit) of single-writer registers — 2n total.  It serves the
benchmarks as a second baseline for the ``m = k = 1`` corner, where the
paper's route (Figure 3 over the SWMR substrate) needs exactly ``n``
registers and Theorem 2 forbids fewer.

Per process::

    r ← 1; est ← input
    loop:
        A[id] ← (r, est);  collect A and B
        if any entry is at a round > r:        catch up (adopt, see below)
        elif B holds a round-r value ≠ est, or A disagrees at round r:
                                               adopt; r ← r+1
        else:
            B[id] ← (r, est);  collect A and B
            if any entry is at a round > r:    catch up
            elif A and B agree on est at r:    **decide est**
            else:                              adopt; r ← r+1

    adopt = the value of the highest-round entry, where a ``B`` entry
    outranks every ``A`` entry of the same round, and ``A`` ties break by
    writer pid.

Safety rests on two facts: (i) at most one value ever enters ``B`` per
round — two candidates at the same round must each have seen ``A``
unanimous for their own value, which the write/collect ordering forbids;
(ii) once a decision's ``(r, v)`` sits in ``B``, the B-priority adoption
makes every process pass round ``r`` carrying ``v``.  Solo runs decide
within one extra round, giving obstruction-freedom.

**Validation stance**: this baseline ships without a published proof; the
test suite compensates by exhaustively model checking it at n = 2
(complete state space), boundedly at n = 3, and with randomized stress —
the library's checkers are exactly the right tool for such an artifact
(the first draft of this very algorithm was caught unsound by
:func:`repro.explore.explore_safety` in under a second).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from repro._types import Params, Value, is_bot
from repro.errors import ConfigurationError, ProtocolViolation
from repro.memory.layout import BankSpec, MemoryLayout, PrimitiveBinding
from repro.memory.ops import ReadOp, WriteOp
from repro.runtime.automaton import Context, Decide, ProtocolAutomaton

ARRAY_A, ARRAY_B = "CA_A", "CA_B"
WRITE_A, WRITE_B, DECIDED = "write_a", "write_b", "decided"
COLLECT = "collect"  # suffixed with the phase it belongs to


@dataclass(frozen=True)
class CAState:
    """Round, estimate, and the progress of the current double collect.

    ``after`` records which write the in-progress collect follows
    (``WRITE_A`` or ``WRITE_B``); the collect reads the ``A`` array first,
    then ``B``, one register per step.
    """

    round: int
    est: Value
    phase: str
    after: str = WRITE_A
    cursor: int = 0
    collected_a: Tuple[Value, ...] = ()
    collected_b: Tuple[Value, ...] = ()
    decision: Optional[Value] = None


class CommitAdoptConsensus(ProtocolAutomaton):
    """Obstruction-free consensus from 2n single-writer registers."""

    name = "commit-adopt-consensus"
    n_threads = 1

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ConfigurationError("consensus needs at least 2 processes")
        super().__init__(Params(n=n, m=1, k=1))
        self.n = n

    def default_layout(self) -> MemoryLayout:
        return MemoryLayout(
            (
                BankSpec(name=f"{ARRAY_A}__bank", size=self.n),
                BankSpec(name=f"{ARRAY_B}__bank", size=self.n),
            ),
            {
                ARRAY_A: PrimitiveBinding("registers", f"{ARRAY_A}__bank"),
                ARRAY_B: PrimitiveBinding("registers", f"{ARRAY_B}__bank"),
            },
        )

    # ------------------------------------------------------------------ #

    def begin(self, ctx: Context, persistent: Any, value: Value, invocation: int):
        if invocation != 1:
            raise ProtocolViolation(f"{self.name} is one-shot")
        return (CAState(round=1, est=value, phase=WRITE_A),)

    def pending(self, ctx: Context, thread: int, state: CAState):
        if state.phase == WRITE_A:
            return WriteOp(ARRAY_A, ctx.identifier, (state.round, state.est))
        if state.phase == WRITE_B:
            return WriteOp(ARRAY_B, ctx.identifier, (state.round, state.est))
        if state.phase == COLLECT:
            if len(state.collected_a) < self.n:
                return ReadOp(ARRAY_A, state.cursor)
            return ReadOp(ARRAY_B, state.cursor)
        if state.phase == DECIDED:
            return Decide(output=state.decision, persistent=None)
        raise ProtocolViolation(f"unknown phase {state.phase!r}")

    def apply(self, ctx: Context, thread: int, state: CAState, response):
        if state.phase in (WRITE_A, WRITE_B):
            return replace(
                state,
                phase=COLLECT,
                after=state.phase,
                cursor=0,
                collected_a=(),
                collected_b=(),
            )
        if state.phase != COLLECT:
            raise ProtocolViolation(f"no transition from phase {state.phase!r}")

        if len(state.collected_a) < self.n:
            collected_a = state.collected_a + (response,)
            cursor = 0 if len(collected_a) == self.n else state.cursor + 1
            return replace(state, cursor=cursor, collected_a=collected_a)
        collected_b = state.collected_b + (response,)
        if len(collected_b) < self.n:
            return replace(state, cursor=state.cursor + 1, collected_b=collected_b)
        return self._after_double_collect(
            replace(state, collected_b=collected_b)
        )

    # ------------------------------------------------------------------ #
    # Round logic
    # ------------------------------------------------------------------ #

    @staticmethod
    def _entries_at(bank: Tuple[Value, ...], round_: int):
        return [
            (pid, entry[1])
            for pid, entry in enumerate(bank)
            if not is_bot(entry) and entry[0] == round_
        ]

    @staticmethod
    def _max_round(*banks: Tuple[Value, ...]) -> int:
        best = 0
        for bank in banks:
            for entry in bank:
                if not is_bot(entry):
                    best = max(best, entry[0])
        return best

    def _adopt_value(self, state: CAState, at_round: int) -> Value:
        """B-priority adoption: B's (unique) value at *at_round* if present,
        else the max-pid A entry at *at_round*."""
        b_entries = self._entries_at(state.collected_b, at_round)
        if b_entries:
            return max(b_entries)[1]
        a_entries = self._entries_at(state.collected_a, at_round)
        assert a_entries, "adoption round has no entries"
        return max(a_entries)[1]

    def _after_double_collect(self, state: CAState) -> CAState:
        r = state.round
        max_round = self._max_round(state.collected_a, state.collected_b)
        assert max_round >= r  # our own A entry is present

        if max_round > r:
            # Catch up: jump to the frontier round with its adopted value.
            return CAState(
                round=max_round,
                est=self._adopt_value(state, max_round),
                phase=WRITE_A,
            )

        a_values = {value for _, value in self._entries_at(state.collected_a, r)}
        b_values = {value for _, value in self._entries_at(state.collected_b, r)}
        clean = a_values == {state.est} and b_values <= {state.est}

        if state.after == WRITE_A:
            if clean:
                return replace(state, phase=WRITE_B)
        elif clean:
            # Post-B collect, still unanimous and unchallenged: commit.
            return replace(state, phase=DECIDED, decision=state.est)

        # Contention at our round: adopt (B-priority) and advance.
        return CAState(
            round=r + 1, est=self._adopt_value(state, r), phase=WRITE_A
        )
