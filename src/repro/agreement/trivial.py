"""The trivial regime ``k ≥ n``: output your own input, zero registers.

The paper (§1, §2.1) notes set agreement is trivial when ``k ≥ n``: each
process outputs its own input, so at most ``n ≤ k`` values are output and
validity is immediate.  No shared memory is needed — the automaton's layout
has zero banks, which also makes this the minimal smoke-test protocol for
the runtime.

The automaton is repeated (each invocation outputs its own input) and
trivially wait-free: every ``Propose`` decides at its first step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro._types import Params, Value
from repro.errors import ConfigurationError
from repro.memory.layout import MemoryLayout
from repro.runtime.automaton import Context, Decide, ProtocolAutomaton


@dataclass(frozen=True)
class TrivialState:
    value: Value


class TrivialSetAgreement(ProtocolAutomaton):
    """Each ``Propose(v)`` outputs ``v`` immediately.  Requires ``k ≥ n``."""

    name = "trivial-k-ge-n"
    anonymous = True  # it never looks at identifiers
    n_threads = 1

    def __init__(self, n: int, k: int) -> None:
        if k < n:
            raise ConfigurationError(
                f"trivial algorithm requires k >= n (got n={n}, k={k}); "
                "use the Figure 3/4/5 algorithms for k < n"
            )
        super().__init__(Params(n=n, k=k))

    def default_layout(self) -> MemoryLayout:
        return MemoryLayout((), {})

    def begin(
        self, ctx: Context, persistent: Any, value: Value, invocation: int
    ) -> Tuple[TrivialState]:
        return (TrivialState(value=value),)

    def pending(self, ctx: Context, thread: int, state: TrivialState):
        return Decide(output=state.value, persistent=None)

    def apply(self, ctx: Context, thread: int, state: TrivialState, response):
        raise AssertionError("trivial automaton performs no memory operations")
