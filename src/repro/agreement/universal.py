"""A replicated state machine over repeated consensus (Herlihy's motivation).

The paper motivates the *repeated* problem via Herlihy's universal
construction [8]: long-lived objects are built from a sequence of
independent agreement instances, one per state-machine slot.  This module
provides that application in miniature:

* ``n`` replicas each hold a sequence of commands to submit;
* slot ``t`` of the log is decided by instance ``t`` of repeated consensus
  (Figure 4 with ``m = k = 1`` — the regime where the paper's bounds are
  tight at exactly ``n`` registers);
* every replica applies the decided log to a deterministic ``apply``
  function; agreement guarantees all replicas compute identical states.

This is a deliberately lightweight rendition: each replica proposes its
``t``-th own command for slot ``t`` (losing commands are reported, not
re-queued), which exercises exactly the repeated-agreement interface the
paper defines, without an extra request-shipping layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

from repro._types import Value
from repro.agreement.consensus import repeated_consensus
from repro.errors import SpecificationViolation
from repro.runtime.runner import Execution, run
from repro.runtime.system import System
from repro.sched.base import Scheduler
from repro.sched.round_robin import RoundRobinScheduler


@dataclass(frozen=True, slots=True)
class ReplicatedRun:
    """Outcome of a replicated-state-machine run."""

    execution: Execution
    log: Tuple[Value, ...]
    final_state: Any
    rejected: Tuple[Tuple[int, Value], ...]  # (pid, command) pairs that lost

    @property
    def slots(self) -> int:
        return len(self.log)


class ReplicatedStateMachine:
    """Replicate ``apply_fn`` over ``n`` processes via repeated consensus."""

    def __init__(
        self,
        n: int,
        apply_fn: Callable[[Any, Value], Any],
        initial_state: Any,
    ) -> None:
        self.n = n
        self.apply_fn = apply_fn
        self.initial_state = initial_state
        self.protocol = repeated_consensus(n)

    def system(self, commands: Sequence[Sequence[Value]]) -> System:
        """Build the system for per-replica command sequences *commands*."""
        if len(commands) != self.n:
            raise ValueError(
                f"need one command sequence per replica ({self.n}), "
                f"got {len(commands)}"
            )
        return System(self.protocol, workloads=commands)

    def run(
        self,
        commands: Sequence[Sequence[Value]],
        scheduler: Scheduler = None,
        *,
        max_steps: int = 200_000,
    ) -> ReplicatedRun:
        """Run all replicas to quiescence and fold the agreed log.

        Raises :class:`~repro.errors.SpecificationViolation` if replicas
        ever disagree on a slot — which consensus makes impossible, so a
        raise here indicates a protocol bug, not a usage error.
        """
        system = self.system(commands)
        if scheduler is None:
            scheduler = RoundRobinScheduler()
        execution = run(system, scheduler, max_steps=max_steps)

        slots = max(
            (len(proc.outputs) for proc in execution.config.procs), default=0
        )
        log: List[Value] = []
        for t in range(1, slots + 1):
            decided = set(execution.instance_outputs(t))
            if len(decided) != 1:
                raise SpecificationViolation(
                    "Consensus",
                    f"slot {t} decided {sorted(map(repr, decided))}",
                )
            log.append(next(iter(decided)))

        rejected = tuple(
            (pid, command)
            for pid, sequence in enumerate(commands)
            for t, command in enumerate(sequence, start=1)
            if t <= len(log) and log[t - 1] != command
        )

        state = self.initial_state
        for command in log:
            state = self.apply_fn(state, command)

        return ReplicatedRun(
            execution=execution,
            log=tuple(log),
            final_state=state,
            rejected=rejected,
        )

    def run_adaptive(
        self,
        commands: Sequence[Sequence[Value]],
        scheduler: Scheduler = None,
        *,
        max_steps: int = 500_000,
    ) -> ReplicatedRun:
        """Herlihy-faithful variant: losing commands are *re-proposed*.

        Each replica proposes, in every consensus instance, its oldest own
        command that has not yet been chosen (with k = 1, a replica's own
        outputs are exactly the agreed log prefix it has seen, so "chosen"
        is locally decidable).  A replica stops proposing once all its
        commands are in the log — so, unlike :meth:`run`, **no command is
        ever lost** and ``rejected`` is always empty.

        Implemented with the runtime's dynamic workloads
        (``System(workload_fn=…)``): the proposal for invocation ``t`` is
        computed at invocation time from the replica's outputs so far.
        """
        if len(commands) != self.n:
            raise ValueError(
                f"need one command sequence per replica ({self.n}), "
                f"got {len(commands)}"
            )
        frozen = [tuple(sequence) for sequence in commands]

        def next_command(pid: int, invocation: int, outputs) -> Value:
            chosen = set(outputs)
            for command in frozen[pid]:
                if command not in chosen:
                    return command
            return None  # all of this replica's commands made the log

        system = System(self.protocol, n=self.n, workload_fn=next_command)
        if scheduler is None:
            scheduler = RoundRobinScheduler()
        execution = run(system, scheduler, max_steps=max_steps)

        slots = max(
            (len(proc.outputs) for proc in execution.config.procs), default=0
        )
        log: List[Value] = []
        for t in range(1, slots + 1):
            decided = set(execution.instance_outputs(t))
            if len(decided) != 1:
                raise SpecificationViolation(
                    "Consensus",
                    f"slot {t} decided {sorted(map(repr, decided))}",
                )
            log.append(next(iter(decided)))

        state = self.initial_state
        for command in log:
            state = self.apply_fn(state, command)
        return ReplicatedRun(
            execution=execution,
            log=tuple(log),
            final_state=state,
            rejected=(),
        )
