"""Figure 5: anonymous repeated m-obstruction-free k-set agreement (Thm 11).

Anonymous processes have no identifiers and run identical code, so the
identifier-based duplicate test of Figures 3/4 is unavailable.  Instead the
algorithm counts *copies*: with a snapshot ``A`` of
``r = (m+1)(n−k) + m²`` components, a process decides when it sees at most
``m`` distinct entries, all of its own instance, outputting the most
frequent value; it adopts a new preference only when that preference is
backed by at least ``ℓ = n + m − k`` components while its own has fewer.

Because the only space-efficient anonymous snapshot implementation known is
*non-blocking* (Guerraoui–Ruppert [7]), a process can starve inside a scan.
The algorithm therefore runs two threads per ``Propose``:

* thread 1 executes the update/scan loop above;
* thread 2 polls one extra register ``H``, where every ``Propose`` begins by
  publishing its current output history (line 9); a starving process that
  finds ``|H| ≥ t`` outputs the ``t``-th entry of ``H`` (lines 33–36).

Total space: ``(m+1)(n−k) + m²`` snapshot components + the register ``H``
= ``(m+1)(n−k) + m² + 1`` registers, matching Theorem 11 (the paper remarks
the one-shot variant drops ``H``, hence one register fewer).

Faithfulness notes:

* the paper requires the line pairs 21–22, 25–26 and 35–36 to execute
  without interruption; in this runtime every transition is atomic with the
  memory access that precedes it, which subsumes that requirement;
* threads of one operation interleave fairly (round-robin per atomic
  access), one of the schedules the model allows — adversarial *inter*-
  process scheduling remains fully in the scheduler's hands;
* ``i`` advances every loop iteration (Figure 5 line 29 is unconditional,
  unlike Figures 3/4) — Appendix B's progress argument relies on it;
* the persistent ``i`` belongs to thread 1; when thread 2 produces the
  output, :meth:`finalize_persistent` recovers thread 1's latest ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from repro._types import Value, is_bot
from repro.agreement.base import HISTORY_REGISTER, SNAPSHOT, SetAgreementAutomaton
from repro.errors import ProtocolViolation
from repro.memory.layout import (
    MemoryLayout,
    merge_layouts,
    register_layout,
    snapshot_layout,
)
from repro.memory.ops import ReadOp, ScanOp, UpdateOp, WriteOp
from repro.runtime.automaton import Context, Decide

WRITE_H, UPDATE, SCAN, DECIDED = "write_h", "update", "scan", "decided"
READ_H = "read_h"


@dataclass(frozen=True)
class AnonymousPersistent:
    """Persistent locals of Figure 5 (lines 4–7)."""

    i: int = 0
    t: int = 0
    history: Tuple[Value, ...] = ()


@dataclass(frozen=True)
class LoopThreadState:
    """Thread 1: H publication, then the update/scan loop (lines 15–30)."""

    pref: Value
    i: int
    t: int
    history: Tuple[Value, ...]
    phase: str
    decision: Optional[Value] = None


@dataclass(frozen=True)
class PollThreadState:
    """Thread 2: poll ``H`` for an output of this instance (lines 32–37)."""

    t: int
    history: Tuple[Value, ...]
    phase: str = READ_H
    decision: Optional[Value] = None


def value_counts(scan: Tuple[Value, ...], t: int):
    """Occurrences of each value among instance-``t`` entries, in scan order."""
    counts: dict[Value, int] = {}
    order: list[Value] = []
    for entry in scan:
        if is_bot(entry) or entry[1] != t:
            continue
        value = entry[0]
        if value not in counts:
            counts[value] = 0
            order.append(value)
        counts[value] += 1
    return counts, order


def most_frequent_value(scan: Tuple[Value, ...], t: int) -> Value:
    """The most frequent value among t-entries; ties break by scan order."""
    counts, order = value_counts(scan, t)
    if not order:
        raise ProtocolViolation("most_frequent_value on a scan with no t-entries")
    return max(order, key=lambda v: (counts[v], -order.index(v)))


class AnonymousRepeatedSetAgreement(SetAgreementAutomaton):
    """The Figure 5 automaton: two threads, no identifiers."""

    name = "anonymous-figure5"
    anonymous = True
    n_threads = 2

    def nominal_components(self) -> int:
        return (self.m + 1) * (self.n - self.k) + self.m * self.m

    @property
    def ell(self) -> int:
        """The adoption threshold ℓ = n + m − k (Figure 5, line 16)."""
        return self.n + self.m - self.k

    def default_layout(self) -> MemoryLayout:
        return merge_layouts(
            snapshot_layout(SNAPSHOT, self.components),
            register_layout(HISTORY_REGISTER, 1, initial=()),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def initial_persistent(self, ctx: Context) -> AnonymousPersistent:
        return AnonymousPersistent()

    def begin(
        self,
        ctx: Context,
        persistent: AnonymousPersistent,
        value: Value,
        invocation: int,
    ):
        t = persistent.t + 1
        if t != invocation:
            raise ProtocolViolation(
                f"instance counter {t} out of sync with invocation {invocation}"
            )
        loop = LoopThreadState(
            pref=value,
            i=persistent.i,
            t=t,
            history=persistent.history,
            phase=WRITE_H,
        )
        poll = PollThreadState(t=t, history=persistent.history)
        return (loop, poll)

    # ------------------------------------------------------------------ #
    # Actions
    # ------------------------------------------------------------------ #

    def pending(self, ctx: Context, thread: int, state: Any):
        if thread == 0:
            return self._loop_pending(state)
        return self._poll_pending(state)

    def apply(self, ctx: Context, thread: int, state: Any, response):
        if thread == 0:
            return self._loop_apply(state, response)
        return self._poll_apply(state, response)

    def finalize_persistent(self, ctx, decide, thread_states):
        """Recover thread 1's current location ``i`` whichever thread decides."""
        loop_state = thread_states[0]
        persistent: AnonymousPersistent = decide.persistent
        return replace(persistent, i=loop_state.i)

    # ------------------------------------------------------------------ #
    # Thread 1: lines 9-12 and 14-30
    # ------------------------------------------------------------------ #

    def _loop_pending(self, state: LoopThreadState):
        if state.phase == WRITE_H:
            return WriteOp(HISTORY_REGISTER, 0, state.history)
        if state.phase == UPDATE:
            entry = (state.pref, state.t, state.history)
            return UpdateOp(SNAPSHOT, state.i % self.components, entry)
        if state.phase == SCAN:
            return ScanOp(SNAPSHOT)
        if state.phase == DECIDED:
            return Decide(
                output=state.decision,
                persistent=AnonymousPersistent(
                    i=state.i, t=state.t, history=state.history
                ),
            )
        raise ProtocolViolation(f"unknown loop phase {state.phase!r}")

    def _loop_apply(self, state: LoopThreadState, response):
        if state.phase == WRITE_H:
            # Lines 11-12: shortcut when the output is already known locally.
            if len(state.history) >= state.t:
                return replace(
                    state,
                    phase=DECIDED,
                    decision=state.history[state.t - 1],
                )
            return replace(state, phase=UPDATE)
        if state.phase == UPDATE:
            return replace(state, phase=SCAN)
        if state.phase == SCAN:
            return self._loop_after_scan(state, response)
        raise ProtocolViolation(f"no loop transition from {state.phase!r}")

    def _loop_after_scan(
        self, state: LoopThreadState, scan: Tuple[Value, ...]
    ) -> LoopThreadState:
        t = state.t

        # Lines 20-22: adopt the history of a process in a higher instance.
        for entry in scan:
            if not is_bot(entry) and entry[1] > t:
                his = entry[2]
                return replace(
                    state, history=his, phase=DECIDED, decision=his[t - 1]
                )

        # Lines 23-26: decide on the most frequent value when at most m
        # distinct entries remain and every entry is a t-tuple.
        distinct = {entry for entry in scan}
        if len(distinct) <= self.m and all(
            (not is_bot(entry)) and entry[1] == t for entry in scan
        ):
            winner = most_frequent_value(scan, t)
            return replace(
                state,
                history=state.history + (winner,),
                phase=DECIDED,
                decision=winner,
            )

        # Lines 27-28: adopt a value backed by >= ℓ components when one's
        # own preference is backed by fewer than ℓ.
        counts, order = value_counts(scan, t)
        own_support = counts.get(state.pref, 0)
        new_pref = state.pref
        if own_support < self.ell:
            for value in order:
                if value != state.pref and counts[value] >= self.ell:
                    new_pref = value
                    break

        # Line 29: the location advances every iteration, unconditionally.
        return replace(
            state,
            pref=new_pref,
            i=(state.i + 1) % self.components,
            phase=UPDATE,
        )

    # ------------------------------------------------------------------ #
    # Thread 2: lines 32-37
    # ------------------------------------------------------------------ #

    def _poll_pending(self, state: PollThreadState):
        if state.phase == READ_H:
            return ReadOp(HISTORY_REGISTER, 0)
        if state.phase == DECIDED:
            return Decide(
                output=state.decision,
                persistent=AnonymousPersistent(
                    i=0,  # replaced by finalize_persistent with thread 1's i
                    t=state.t,
                    history=state.history,
                ),
            )
        raise ProtocolViolation(f"unknown poll phase {state.phase!r}")

    def _poll_apply(self, state: PollThreadState, response):
        if state.phase != READ_H:
            raise ProtocolViolation(f"no poll transition from {state.phase!r}")
        sequence = response
        if len(sequence) >= state.t:
            winner = sequence[state.t - 1]
            return replace(
                state,
                history=state.history + (winner,),
                phase=DECIDED,
                decision=winner,
            )
        return state  # keep polling


@dataclass(frozen=True)
class AnonymousOneShotState:
    """Single-thread loop state of the one-shot variant."""

    pref: Value
    i: int
    phase: str
    decision: Optional[Value] = None


class AnonymousOneShotSetAgreement(SetAgreementAutomaton):
    """The one-shot restriction of Figure 5 (§6 closing remark).

    With a single instance there are no histories to publish, so register
    ``H`` and the polling thread disappear — saving one register, as the
    paper remarks: ``(m+1)(n−k) + m²`` registers total.  Entries carry the
    bare preferred value (an instance tag would be constant), so the
    algorithm is manifestly anonymous: identical processes with identical
    inputs write identical entries.

    This is the algorithm the Section 5 lower-bound machinery attacks: its
    solo runs write components ``0, 1, 2, …`` in a fixed order regardless of
    the input value, giving the clone construction the common ``R(V)``
    prefixes Lemma 9 feeds on (see :mod:`repro.lowerbounds.cloning`).
    """

    name = "anonymous-oneshot-figure5"
    anonymous = True
    n_threads = 1

    def nominal_components(self) -> int:
        return (self.m + 1) * (self.n - self.k) + self.m * self.m

    @property
    def ell(self) -> int:
        return self.n + self.m - self.k

    def default_layout(self) -> MemoryLayout:
        return snapshot_layout(SNAPSHOT, self.components)

    def begin(self, ctx: Context, persistent: Any, value: Value, invocation: int):
        if invocation != 1:
            raise ProtocolViolation(
                f"{self.name} is one-shot; process invoked Propose "
                f"a {invocation}th time"
            )
        return (AnonymousOneShotState(pref=value, i=0, phase=UPDATE),)

    def pending(self, ctx: Context, thread: int, state: AnonymousOneShotState):
        if state.phase == UPDATE:
            return UpdateOp(SNAPSHOT, state.i % self.components, state.pref)
        if state.phase == SCAN:
            return ScanOp(SNAPSHOT)
        if state.phase == DECIDED:
            return Decide(output=state.decision, persistent=None)
        raise ProtocolViolation(f"unknown phase {state.phase!r}")

    def apply(self, ctx: Context, thread: int, state: AnonymousOneShotState, response):
        if state.phase == UPDATE:
            return replace(state, phase=SCAN)
        if state.phase == SCAN:
            return self._after_scan(state, response)
        raise ProtocolViolation(f"no transition from phase {state.phase!r}")

    def _after_scan(
        self, state: AnonymousOneShotState, scan: Tuple[Value, ...]
    ) -> AnonymousOneShotState:
        # Decide: at most m distinct values, no ⊥ — output the most frequent.
        distinct = {entry for entry in scan}
        if len(distinct) <= self.m and not any(is_bot(e) for e in scan):
            counts: dict[Value, int] = {}
            order: list[Value] = []
            for entry in scan:
                if entry not in counts:
                    counts[entry] = 0
                    order.append(entry)
                counts[entry] += 1
            winner = max(order, key=lambda v: (counts[v], -order.index(v)))
            return replace(state, phase=DECIDED, decision=winner)

        # Adopt a value backed by >= ℓ copies when one's own has fewer.
        own = sum(1 for e in scan if e == state.pref)
        new_pref = state.pref
        if own < self.ell:
            seen: list[Value] = []
            for entry in scan:
                if is_bot(entry) or entry == state.pref or entry in seen:
                    continue
                seen.append(entry)
                if sum(1 for e in scan if e == entry) >= self.ell:
                    new_pref = entry
                    break

        # The location advances every iteration (Figure 5, line 29).
        return replace(
            state,
            pref=new_pref,
            i=(state.i + 1) % self.components,
            phase=UPDATE,
        )
