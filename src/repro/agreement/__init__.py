"""The paper's algorithms: k-set agreement under m-obstruction-freedom.

* :class:`~repro.agreement.oneshot.OneShotSetAgreement` — Figure 3
  (one-shot, n+2m−k snapshot components; Theorem 7).
* :class:`~repro.agreement.repeated.RepeatedSetAgreement` — Figure 4
  (repeated, same space; Theorem 8).
* :class:`~repro.agreement.anonymous.AnonymousRepeatedSetAgreement` —
  Figure 5 (anonymous, (m+1)(n−k)+m² components + register H; Theorem 11).
* :class:`~repro.agreement.baseline.BaselineOneShotSetAgreement` — the
  DFGR'13-shaped baseline [4] (m = 1, 2(n−k) components; see DESIGN.md §2
  for the substitution note).
* :mod:`~repro.agreement.trivial` — the k ≥ n trivial algorithm and the
  n-register single-writer fallback.
* :mod:`~repro.agreement.consensus` — k = 1 conveniences.
* :mod:`~repro.agreement.universal` — a repeated-consensus-driven replicated
  state machine (the motivation the paper cites for the repeated problem).
"""

from repro.agreement.base import validate_parameters
from repro.agreement.oneshot import OneShotSetAgreement
from repro.agreement.repeated import RepeatedSetAgreement
from repro.agreement.anonymous import AnonymousRepeatedSetAgreement
from repro.agreement.baseline import BaselineOneShotSetAgreement
from repro.agreement.trivial import TrivialSetAgreement

__all__ = [
    "validate_parameters",
    "OneShotSetAgreement",
    "RepeatedSetAgreement",
    "AnonymousRepeatedSetAgreement",
    "BaselineOneShotSetAgreement",
    "TrivialSetAgreement",
]
