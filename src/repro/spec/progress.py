"""m-obstruction-freedom, checked over finite adversary families.

The progress condition (paper §2.1) quantifies over infinite executions: if
at most ``m`` processes take infinitely many steps, every correct process
completes every operation.  Its finite, falsifiable analogue used here:

    for every prelude interleaving and every survivor set ``P`` with
    ``|P| ≤ m``, once only ``P`` is scheduled (fairly), every process in
    ``P`` completes its whole workload within a step budget.

:func:`check_bounded_progress` tests one adversary; :func:`progress_matrix`
sweeps survivor sets and seeded preludes and aggregates failures, each with
the concrete schedule that exhibits it (replayable evidence).

A budget violation is *evidence*, not proof, of non-termination — but for
the paper's algorithms the expected decision latency under an m-bounded
adversary is small and bounded runs that exceed a generous budget have, in
every case we exhibit (e.g. the under-provisioned Figure 4), a genuinely
livelocked preference cycle.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import StepLimitExceeded
from repro.runtime.runner import Execution, run
from repro.runtime.system import System
from repro.sched.base import Scheduler
from repro.sched.bounded import EventuallyBoundedScheduler
from repro.sched.crash import CrashScheduler
from repro.sched.random_walk import RandomScheduler


@dataclass(frozen=True, slots=True)
class ProgressFailure:
    """One adversary under which survivors failed to finish in budget."""

    survivors: Tuple[int, ...]
    prelude_steps: int
    seed: Optional[int]
    schedule: Tuple[int, ...]
    detail: str

    def __str__(self) -> str:
        return (
            f"survivors {self.survivors}, prelude {self.prelude_steps} "
            f"(seed {self.seed}): {self.detail}"
        )


# A mutable accumulator, never fingerprinted.  # repro: allow(MUT002)
@dataclass
class ProgressReport:
    """Aggregate over an adversary family."""

    attempted: int = 0
    failures: List[ProgressFailure] = field(default_factory=list)
    max_steps_observed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """One-line account of the adversary family's outcome."""
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"progress: {status} over {self.attempted} adversaries "
            f"(max steps observed {self.max_steps_observed})"
        )


def check_bounded_progress(
    system: System,
    survivors: Sequence[int],
    *,
    prelude_steps: int = 0,
    prelude: Optional[Scheduler] = None,
    budget: int = 50_000,
) -> Execution:
    """Run one m-bounded adversary; raise StepLimitExceeded on stall.

    Returns the complete execution when every survivor finished its
    workload.  The caller chooses ``survivors`` with ``|survivors| ≤ m``;
    this function is agnostic of ``m`` on purpose — running it with a larger
    set is exactly how one demonstrates that the guarantee stops at ``m``.
    """
    scheduler = EventuallyBoundedScheduler(
        survivors=survivors, prelude_steps=prelude_steps, prelude=prelude
    )
    execution = run(system, scheduler, max_steps=prelude_steps + budget)
    if not system.decided_all(execution.config, survivors):
        # The scheduler returned None (nobody left to schedule) before the
        # survivors completed — possible only if a survivor is stuck with
        # no enabled step, which the model precludes; fail loudly.
        raise StepLimitExceeded(
            f"survivors {tuple(survivors)} did not complete "
            f"({execution.steps} steps taken)"
        )
    return execution


def progress_matrix(
    system_factory,
    *,
    n: int,
    m: int,
    survivor_sets: Optional[Iterable[Tuple[int, ...]]] = None,
    seeds: Sequence[int] = (1, 2, 3),
    prelude_steps: int = 50,
    budget: int = 50_000,
) -> ProgressReport:
    """Sweep survivor sets of size ≤ m crossed with seeded random preludes.

    ``system_factory`` builds a fresh :class:`System` per adversary (runs
    must not share configurations).  By default every non-empty survivor set
    of size exactly ``m`` is tried, plus every singleton (the pure
    obstruction-free regime).
    """
    if survivor_sets is None:
        singletons = [(pid,) for pid in range(n)]
        full = [tuple(c) for c in itertools.combinations(range(n), m)]
        survivor_sets = list(dict.fromkeys(singletons + full))
    report = ProgressReport()
    for survivors in survivor_sets:
        for seed in seeds:
            report.attempted += 1
            system = system_factory()
            prelude = RandomScheduler(seed=seed)
            try:
                execution = check_bounded_progress(
                    system,
                    survivors,
                    prelude_steps=prelude_steps,
                    prelude=prelude,
                    budget=budget,
                )
                report.max_steps_observed = max(
                    report.max_steps_observed, execution.steps
                )
            except StepLimitExceeded as exc:
                report.failures.append(
                    ProgressFailure(
                        survivors=tuple(survivors),
                        prelude_steps=prelude_steps,
                        seed=seed,
                        schedule=(),
                        detail=str(exc),
                    )
                )
    return report


def check_crash_progress(
    system: System,
    crashes: Dict[int, int],
    *,
    base: Optional[Scheduler] = None,
    budget: int = 50_000,
) -> Execution:
    """Run a crash-then-m-bounded adversary; survivors must finish.

    The sharper rendition of the same guarantee
    :func:`check_bounded_progress` checks: instead of the other processes
    merely *pausing* after a prelude, they **crash mid-run** at the steps
    given by ``crashes`` — possibly between a collect and its pending
    write, leaving half-finished operations visible in shared memory
    forever.  m-obstruction-freedom draws no distinction between the two
    (a crash is just an adversary that never schedules the process again),
    so every non-crashed process must still complete its workload within
    ``budget`` steps; a stall raises
    :class:`~repro.errors.StepLimitExceeded`.
    """
    scheduler = CrashScheduler(crashes, base=base)
    execution = run(system, scheduler, max_steps=budget)
    survivors = tuple(pid for pid in range(system.n) if pid not in crashes)
    if not system.decided_all(execution.config, survivors):
        raise StepLimitExceeded(
            f"survivors {survivors} did not complete after crashes "
            f"{dict(sorted(crashes.items()))} ({execution.steps} steps taken)"
        )
    return execution


def crash_progress_matrix(
    system_factory,
    *,
    n: int,
    m: int,
    seeds: Sequence[int] = (1, 2, 3),
    crash_window: Tuple[int, int] = (10, 60),
    budget: int = 50_000,
) -> ProgressReport:
    """Sweep survivor sets of size ≤ m, crashing everyone else mid-run.

    The survivor-set family mirrors :func:`progress_matrix` (all
    singletons plus all sets of size exactly ``m``); for each set, the
    ``n − |survivors|`` other processes crash at seeded steps drawn from
    ``crash_window`` — early enough to land mid-operation — under a
    seeded-random base interleaving.  Failures carry the crash pattern in
    their detail; the run is reproducible from ``(factory, seed)``.
    """
    singletons = [(pid,) for pid in range(n)]
    full = [tuple(c) for c in itertools.combinations(range(n), m)]
    survivor_sets = list(dict.fromkeys(singletons + full))
    report = ProgressReport()
    for survivors in survivor_sets:
        crashed = [pid for pid in range(n) if pid not in survivors]
        for seed in seeds:
            report.attempted += 1
            rng = random.Random(f"{seed}:{survivors}")
            crashes = {
                pid: rng.randint(*crash_window) for pid in crashed
            }
            system = system_factory()
            try:
                execution = check_crash_progress(
                    system,
                    crashes,
                    base=RandomScheduler(seed=seed),
                    budget=budget,
                )
                report.max_steps_observed = max(
                    report.max_steps_observed, execution.steps
                )
            except StepLimitExceeded as exc:
                report.failures.append(
                    ProgressFailure(
                        survivors=tuple(survivors),
                        prelude_steps=0,
                        seed=seed,
                        schedule=(),
                        detail=str(exc),
                    )
                )
    return report
