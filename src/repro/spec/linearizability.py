"""Linearizability checking for snapshot implementations.

The register-level substrates (:mod:`repro.objects`) claim to implement an
*atomic* snapshot.  This module verifies that claim on concrete executions:

1. :class:`SnapshotScript` is a harness automaton that makes each process
   perform a scripted sequence of ``update``/``scan`` operations against the
   object ``"A"`` (bound to the substrate under test);
2. :func:`extract_history` reconstructs, from the execution's event stream,
   each high-level operation's real-time interval (first to last register
   access of its frame) and its response (accumulated by the harness);
3. :func:`check_linearizable` runs a Wing–Gong style search for a
   linearization: a total order of the operations, consistent with the
   real-time partial order, under which every scan returns exactly the
   component vector produced by the preceding updates.

Exponential in the worst case, fine for the focused histories the tests
generate — and it has real teeth: it rejects, e.g., a broken double collect
that returns after a single collect (a regression test asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro._types import BOT, Params, Value
from repro.errors import ConfigurationError
from repro.memory.layout import MemoryLayout
from repro.memory.ops import Op, ScanOp, UpdateOp
from repro.runtime.automaton import Context, Decide, ProtocolAutomaton
from repro.runtime.events import MemoryEvent
from repro.runtime.runner import Execution


@dataclass(frozen=True, slots=True)
class _ScriptState:
    position: int
    responses: Tuple[Value, ...]


class SnapshotScript(ProtocolAutomaton):
    """Drive the object ``"A"`` with per-process operation scripts.

    ``scripts[pid]`` is a sequence of :class:`UpdateOp` / :class:`ScanOp`
    (targeting ``"A"``).  Each process performs its script within a single
    ``Propose`` and decides with the tuple of responses it observed.
    """

    name = "snapshot-script-harness"
    n_threads = 1

    def __init__(self, scripts: Sequence[Sequence[Op]], components: int) -> None:
        super().__init__(Params(components=components))
        self.scripts: Tuple[Tuple[Op, ...], ...] = tuple(
            tuple(script) for script in scripts
        )
        for script in self.scripts:
            for op in script:
                if op.obj != "A" or not isinstance(op, (UpdateOp, ScanOp)):
                    raise ConfigurationError(
                        f"scripts must contain update/scan ops on 'A', got {op!r}"
                    )
        self.components = components

    def default_layout(self) -> MemoryLayout:
        from repro.memory.layout import snapshot_layout

        return snapshot_layout("A", self.components)

    def begin(self, ctx: Context, persistent: Any, value: Value, invocation: int):
        return (_ScriptState(position=0, responses=()),)

    def pending(self, ctx: Context, thread: int, state: _ScriptState):
        script = self.scripts[ctx.pid]
        if state.position >= len(script):
            return Decide(output=state.responses, persistent=None)
        return script[state.position]

    def apply(self, ctx: Context, thread: int, state: _ScriptState, response):
        return _ScriptState(
            position=state.position + 1,
            responses=state.responses + (response,),
        )


@dataclass(frozen=True, slots=True)
class OpRecord:
    """One completed high-level operation with its real-time interval."""

    pid: int
    op: Op
    response: Value
    start: int  # index of its first step in the execution
    end: int  # index of its last step


def extract_history(
    execution: Execution, scripts: Sequence[Sequence[Op]]
) -> List[OpRecord]:
    """Reconstruct high-level operation intervals from the execution.

    The harness state's ``position`` field is the authoritative progress
    marker: the execution is re-driven step by step, and whenever a
    process's position advances, the operation it just completed is closed.
    Interval conventions:

    * on a *primitive* substrate an operation is the single step that
      performs it (the completing event is a non-frame memory access);
    * on an *implemented* substrate an operation spans from its frame's
      first register access to its last; the runtime folds the frame's
      return into the process's next step, so the completed op's ``end`` is
      the process's previous event and the folding step is simultaneously
      the *next* operation's first access (its ``start``).
    """
    system = execution.system
    responses = {
        pid: outputs[0]
        for pid, outputs in enumerate(execution.outputs())
        if outputs
    }
    history: List[OpRecord] = []
    position = {pid: 0 for pid in range(system.n)}
    op_start: dict[int, Optional[int]] = {pid: None for pid in range(system.n)}
    last_event = {pid: None for pid in range(system.n)}

    config = execution.initial
    for index, pid in enumerate(execution.schedule):
        result = system.step(config, pid)
        config = result.config
        event = result.event
        proc = config.procs[pid]

        if proc.active is not None:
            new_position = proc.active.slots[0].state.position
        elif proc.outputs:
            new_position = len(scripts[pid])
        else:
            new_position = 0  # just idle before invocation

        if (
            op_start[pid] is None
            and isinstance(event, MemoryEvent)
            and new_position == position[pid]
        ):
            op_start[pid] = index  # first access of the current operation

        if new_position > position[pid]:
            completed = position[pid]
            if completed + 1 != new_position:
                raise ConfigurationError(
                    f"process {pid} advanced {new_position - completed} "
                    "operations in one step"
                )
            if pid not in responses:
                raise ConfigurationError(
                    f"process {pid} performed operations but never decided; "
                    "run the harness to quiescence before extracting"
                )
            if isinstance(event, MemoryEvent) and not event.in_frame:
                start = end = index  # primitive: the op is this very step
                op_start[pid] = None
            else:
                start = op_start[pid]
                end = last_event[pid]
                # A folding memory event already belongs to the next op.
                op_start[pid] = index if isinstance(event, MemoryEvent) else None
            history.append(
                OpRecord(
                    pid=pid,
                    op=scripts[pid][completed],
                    response=responses[pid][completed],
                    start=start,
                    end=end,
                )
            )
            position[pid] = new_position

        if isinstance(event, MemoryEvent):
            last_event[pid] = index

    history.sort(key=lambda record: (record.start, record.end))
    return history


def check_linearizable(
    history: Sequence[OpRecord], components: int
) -> Optional[Tuple[OpRecord, ...]]:
    """Return a witness linearization, or ``None`` if none exists.

    Wing–Gong search: repeatedly pick a *minimal* operation (one whose start
    precedes every remaining operation's end), apply it to the abstract
    snapshot state, require scans to match their recorded responses, and
    backtrack on mismatch.
    """
    initial_state = (BOT,) * components

    def search(
        remaining: Tuple[OpRecord, ...], state: Tuple[Value, ...]
    ) -> Optional[Tuple[OpRecord, ...]]:
        if not remaining:
            return ()
        min_end = min(record.end for record in remaining)
        for index, record in enumerate(remaining):
            if record.start > min_end:
                continue  # not minimal: someone else finished before it began
            if isinstance(record.op, ScanOp):
                if record.response != state:
                    continue
                next_state = state
            else:
                op = record.op
                next_state = (
                    state[: op.component] + (op.value,) + state[op.component + 1 :]
                )
            rest = remaining[:index] + remaining[index + 1 :]
            tail = search(rest, next_state)
            if tail is not None:
                return (record,) + tail
        return None

    return search(tuple(history), initial_state)
