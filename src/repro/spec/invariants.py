"""Configuration invariants from the paper's proofs, as runtime monitors.

The correctness arguments of §4 and Appendix A rest on structural
invariants of the shared snapshot's contents.  Each of them is implemented
here as a *monitor* — a callable ``(configuration, event) -> None`` that
raises :class:`~repro.errors.SpecificationViolation` the moment the
invariant breaks — pluggable into :func:`repro.runtime.runner.run` via its
``monitors`` parameter, so tests enforce the lemmas on **every
configuration** of a run, not just at the end:

* :func:`lemma3_monitor` — Figure 3's Lemma 3: all pairs in ``A`` carrying
  the same process identifier have the same value;
* :func:`lemma12_monitor` — Figure 4's Lemma 12: for each (id, instance),
  all stored t-tuples are identical;
* :func:`commit_adopt_round_monitor` — the single-value-per-round-in-B
  lemma of the commit-adopt baseline (the property whose violation the
  model checker caught in this library's first draft of that algorithm);
* :func:`consensus_history_monitor` — with ``k = 1``, any two histories
  stored in ``A`` are prefix-compatible (per-instance consensus leaves no
  room for divergent histories).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro._types import Value, is_bot
from repro.errors import SpecificationViolation
from repro.runtime.events import Event
from repro.runtime.system import Configuration

Monitor = Callable[[Configuration, Event], None]


def _snapshot_bank(config: Configuration, bank_index: int = 0):
    return config.memory[bank_index]


def lemma3_monitor(bank_index: int = 0) -> Monitor:
    """Figure 3 / Lemma 3: one value per identifier in the snapshot."""

    def monitor(config: Configuration, event: Event) -> None:
        per_id: Dict[int, Value] = {}
        for entry in _snapshot_bank(config, bank_index):
            if is_bot(entry):
                continue
            value, pid = entry[0], entry[1]
            if pid in per_id and per_id[pid] != value:
                raise SpecificationViolation(
                    "Lemma 3",
                    f"identifier {pid} stored both {per_id[pid]!r} and "
                    f"{value!r}",
                )
            per_id[pid] = value

    return monitor


def lemma12_monitor(bank_index: int = 0) -> Monitor:
    """Figure 4 / Lemma 12: identical t-tuples per (identifier, instance)."""

    def monitor(config: Configuration, event: Event) -> None:
        per_key: Dict[Tuple[int, int], Value] = {}
        for entry in _snapshot_bank(config, bank_index):
            if is_bot(entry):
                continue
            value, pid, instance = entry[0], entry[1], entry[2]
            key = (pid, instance)
            if key in per_key and per_key[key] != entry:
                raise SpecificationViolation(
                    "Lemma 12",
                    f"process {pid} stored two different tuples for "
                    f"instance {instance}: {per_key[key]!r} vs {entry!r}",
                )
            per_key[key] = entry

    return monitor


def commit_adopt_round_monitor(b_bank_index: int = 1) -> Monitor:
    """Commit-adopt baseline: array ``B`` holds one value per round."""

    def monitor(config: Configuration, event: Event) -> None:
        per_round: Dict[int, Value] = {}
        for entry in config.memory[b_bank_index]:
            if is_bot(entry):
                continue
            round_, value = entry
            if round_ in per_round and per_round[round_] != value:
                raise SpecificationViolation(
                    "CommitAdopt-B-unique",
                    f"round {round_} committed both {per_round[round_]!r} "
                    f"and {value!r}",
                )
            per_round[round_] = value

    return monitor


def consensus_history_monitor(
    bank_index: int = 0, history_position: int = 3
) -> Monitor:
    """k = 1: all histories stored in ``A`` are prefix-compatible.

    ``history_position`` is the tuple index of the history field (3 for
    Figure 4's ``(pref, id, t, history)``, 2 for Figure 5's
    ``(pref, t, history)``).
    """

    def monitor(config: Configuration, event: Event) -> None:
        histories = [
            entry[history_position]
            for entry in _snapshot_bank(config, bank_index)
            if not is_bot(entry)
        ]
        for a in histories:
            for b in histories:
                shared = min(len(a), len(b))
                if a[:shared] != b[:shared]:
                    raise SpecificationViolation(
                        "Consensus-history-prefix",
                        f"incompatible histories {a!r} vs {b!r}",
                    )

    return monitor
