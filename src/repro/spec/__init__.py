"""Property checkers: the paper's correctness conditions, made executable."""

from repro.spec.properties import (
    Violation,
    assert_execution_safe,
    check_k_agreement,
    check_safety,
    check_validity,
    instance_inputs,
    instance_outputs,
)
from repro.spec.stats import ExecutionStats, execution_stats, registers_written

__all__ = [
    "Violation",
    "assert_execution_safe",
    "check_k_agreement",
    "check_safety",
    "check_validity",
    "instance_inputs",
    "instance_outputs",
    "ExecutionStats",
    "execution_stats",
    "registers_written",
]
