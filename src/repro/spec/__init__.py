"""Property checkers: the paper's correctness conditions, made executable."""

from repro.spec.progress import (
    ProgressFailure,
    ProgressReport,
    check_bounded_progress,
    check_crash_progress,
    crash_progress_matrix,
    progress_matrix,
)
from repro.spec.properties import (
    Violation,
    assert_execution_safe,
    check_k_agreement,
    check_safety,
    check_validity,
    instance_inputs,
    instance_outputs,
)
from repro.spec.stats import (
    ExecutionStats,
    execution_stats,
    publish_stats,
    registers_written,
)

__all__ = [
    "ProgressFailure",
    "ProgressReport",
    "Violation",
    "assert_execution_safe",
    "check_bounded_progress",
    "check_crash_progress",
    "check_k_agreement",
    "check_safety",
    "check_validity",
    "crash_progress_matrix",
    "instance_inputs",
    "instance_outputs",
    "progress_matrix",
    "ExecutionStats",
    "execution_stats",
    "publish_stats",
    "registers_written",
]
