"""Execution metrics: step counts and the paper's space measure.

``registers_written`` reports the set of *global register coordinates* an
execution actually wrote — the quantity the covering lower bound reasons
about — while ``layout.register_count()`` is the static provision.  Both
appear in the Figure 1 benchmark: an upper-bound algorithm must never write
outside its provisioned registers, and its provision must equal the
theorem's formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.memory.layout import RegisterCoord
from repro.memory.ops import is_write_access
from repro.runtime.events import DecideEvent, InvokeEvent, MemoryEvent
from repro.runtime.runner import Execution


def registers_written(execution: Execution) -> Set[RegisterCoord]:
    """Global coordinates of every register the execution wrote."""
    layout = execution.system.layout
    written: Set[RegisterCoord] = set()
    for event in execution.memory_events:
        if is_write_access(event.op):
            coord = layout.op_coord(event.op)
            if coord is not None:
                written.add(coord)
    return written


@dataclass(frozen=True, slots=True)
class ExecutionStats:
    """Summary of one execution, as printed by the benchmark tables."""

    total_steps: int
    memory_steps: int
    write_steps: int
    scan_steps: int
    invocations: int
    decisions: int
    registers_provisioned: int
    registers_written: int
    steps_per_decision: float

    def row(self) -> Tuple:
        """The record as a flat tuple, for table printers."""
        return (
            self.total_steps,
            self.memory_steps,
            self.write_steps,
            self.scan_steps,
            self.decisions,
            self.registers_provisioned,
            self.registers_written,
            round(self.steps_per_decision, 1),
        )


def execution_stats(execution: Execution) -> ExecutionStats:
    """Aggregate an execution into an :class:`ExecutionStats` record."""
    memory_steps = write_steps = scan_steps = invocations = decisions = 0
    for event in execution.events:
        if isinstance(event, MemoryEvent):
            memory_steps += 1
            if is_write_access(event.op):
                write_steps += 1
            else:
                scan_steps += 1
        elif isinstance(event, InvokeEvent):
            invocations += 1
        elif isinstance(event, DecideEvent):
            decisions += 1
    return ExecutionStats(
        total_steps=len(execution.schedule),
        memory_steps=memory_steps,
        write_steps=write_steps,
        scan_steps=scan_steps,
        invocations=invocations,
        decisions=decisions,
        registers_provisioned=execution.system.layout.register_count(),
        registers_written=len(registers_written(execution)),
        steps_per_decision=(
            len(execution.schedule) / decisions if decisions else float("inf")
        ),
    )


def publish_stats(stats: ExecutionStats) -> None:
    """Record a run's register footprint on the active telemetry session.

    Publishes the same ``footprint.*`` instruments the exploration engine
    feeds (see ``docs/observability.md``), so ``repro report`` renders
    its register-footprint table for single executions too.  No-op when
    telemetry is off, like every instrumentation call.
    """
    from repro import telemetry

    if telemetry.active() is None:
        return
    telemetry.counter("footprint.memory_steps", stats.memory_steps)
    telemetry.counter("footprint.write_steps", stats.write_steps)
    telemetry.gauge("footprint.registers_written", stats.registers_written)
    telemetry.gauge(
        "footprint.registers_provisioned", stats.registers_provisioned
    )


def max_register_payload(execution: Execution) -> int:
    """The widest value ever written to a register, in ``repr`` characters.

    The paper's space measure counts *registers*, explicitly allowing
    "large" ones ([13]); this metric quantifies how large.  The repeated
    algorithms embed full output histories in every stored tuple, so their
    payload width grows linearly with the instance number — an interesting
    cost the register count hides (measured by benchmark E11).
    """
    widest = 0
    for event in execution.memory_events:
        if is_write_access(event.op):
            value = getattr(event.op, "value", None)
            widest = max(widest, len(repr(value)))
    return widest


def per_process_decision_latency(execution: Execution) -> Dict[int, int]:
    """Steps taken by each process before its first decision."""
    latency: Dict[int, int] = {}
    counts: Dict[int, int] = {}
    for event in execution.events:
        counts[event.pid] = counts.get(event.pid, 0) + 1
        if isinstance(event, DecideEvent) and event.pid not in latency:
            latency[event.pid] = counts[event.pid]
    return latency
