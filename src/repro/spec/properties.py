"""Safety properties of (repeated) k-set agreement, checked over traces.

For an execution α and instance ``i`` (paper §2.1):

* ``In_i(α)``  — values used as the argument of some process's i-th Propose;
* ``Out_i(α)`` — values returned by some process's i-th Propose;
* Validity:     ``Out_i(α) ⊆ In_i(α)`` for all ``i``;
* k-Agreement:  ``|Out_i(α)| ≤ k`` for all ``i``.

Both properties are prefix-closed, so checking finite executions is exact.
Checkers return a list of :class:`Violation` records (empty = property
holds); :func:`assert_execution_safe` raises instead, for use as a test
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro._types import Value
from repro.errors import SpecificationViolation
from repro.runtime.events import DecideEvent, Event, InvokeEvent
from repro.runtime.runner import Execution


@dataclass(frozen=True, slots=True)
class Violation:
    """One violated property instance, with human-readable evidence."""

    property_name: str
    instance: int
    detail: str

    def __str__(self) -> str:
        return f"[instance {self.instance}] {self.property_name}: {self.detail}"


def instance_inputs(events: Iterable[Event]) -> Dict[int, Set[Value]]:
    """``In_i``: inputs per instance, keyed by 1-based instance number."""
    inputs: Dict[int, Set[Value]] = {}
    for event in events:
        if isinstance(event, InvokeEvent):
            inputs.setdefault(event.invocation, set()).add(event.value)
    return inputs


def instance_outputs(events: Iterable[Event]) -> Dict[int, Set[Value]]:
    """``Out_i``: outputs per instance, keyed by 1-based instance number."""
    outputs: Dict[int, Set[Value]] = {}
    for event in events:
        if isinstance(event, DecideEvent):
            outputs.setdefault(event.invocation, set()).add(event.output)
    return outputs


def check_validity(execution: Execution) -> List[Violation]:
    """Every output of every instance must be one of that instance's inputs."""
    inputs = instance_inputs(execution.events)
    outputs = instance_outputs(execution.events)
    violations = []
    for instance, outs in sorted(outputs.items()):
        ins = inputs.get(instance, set())
        strays = outs - ins
        if strays:
            violations.append(
                Violation(
                    "Validity",
                    instance,
                    f"outputs {sorted(map(repr, strays))} not among inputs "
                    f"{sorted(map(repr, ins))}",
                )
            )
    return violations


def check_k_agreement(execution: Execution, k: int) -> List[Violation]:
    """At most *k* distinct outputs per instance."""
    outputs = instance_outputs(execution.events)
    violations = []
    for instance, outs in sorted(outputs.items()):
        if len(outs) > k:
            violations.append(
                Violation(
                    "k-Agreement",
                    instance,
                    f"{len(outs)} distinct outputs {sorted(map(repr, outs))} "
                    f"exceed k={k}",
                )
            )
    return violations


def check_safety(execution: Execution, k: int) -> List[Violation]:
    """Validity and k-Agreement together."""
    return check_validity(execution) + check_k_agreement(execution, k)


def assert_execution_safe(execution: Execution, k: int) -> None:
    """Raise :class:`~repro.errors.SpecificationViolation` on any violation."""
    violations = check_safety(execution, k)
    if violations:
        first = violations[0]
        raise SpecificationViolation(
            first.property_name,
            "; ".join(str(v) for v in violations),
        )
