"""Shared helpers for the benchmark suite.

Each experiment (see DESIGN.md §4) prints its paper-style table *and*
writes it under ``benchmarks/results/`` so `bench_output.txt` and
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Print a table and persist it to ``benchmarks/results/<name>.txt``."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
