"""Shared helpers for the benchmark suite.

Each experiment (see DESIGN.md §4) prints its paper-style table *and*
writes it under ``benchmarks/results/`` so `bench_output.txt` and
EXPERIMENTS.md can reference stable artifacts.

Experiments may also attach a machine-readable **record** to each table
(``emit(name, text, record={...})``).  Records land under
``benchmarks/results/records/<name>.json`` with the wall-clock and peak
RSS of the emitting process stamped in, and the session-finish hook
aggregates every record written *this session* into the top-level
``BENCH_telemetry.json`` — the benchmark companion of the telemetry
subsystem's run reports (see ``docs/observability.md``).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import time
from typing import Any, Dict, List, Optional

import pytest

Record = Dict[str, Any]

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RECORDS_DIR = RESULTS_DIR / "records"
AGGREGATE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_telemetry.json"

#: Bumped when the record shape changes; v2 adds provenance (``schema``,
#: ``commit``, ``host``) so ``repro report --bench`` can render a trend
#: table that says *which* code on *what* machine produced each number.
BENCH_SCHEMA = 2

#: Record files written during this pytest session, in emission order.
_SESSION_RECORDS: List[pathlib.Path] = []

#: Memoized git commit — one subprocess per session, not per record.
_COMMIT: List[str] = []


def _git_commit() -> str:
    """The short HEAD commit of the repo the benchmarks ran from."""
    if not _COMMIT:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=pathlib.Path(__file__).parent,
                capture_output=True, text=True, timeout=10,
            )
            _COMMIT.append(proc.stdout.strip() or "unknown")
        except (OSError, subprocess.SubprocessError):
            _COMMIT.append("unknown")
    return _COMMIT[0]


def host_fingerprint() -> Dict[str, Any]:
    """The host facts perf numbers are only comparable within."""
    return {
        "cpus": os.cpu_count() or 1,
        "platform": platform.system().lower(),
        "python": platform.python_version(),
    }


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Print a table, persist it, and optionally attach a JSON record.

    ``emit(name, text)`` keeps its historical behaviour (stdout + a
    ``results/<name>.txt`` artifact).  Passing ``record=`` additionally
    writes ``results/records/<name>.json`` holding the caller's fields
    (``params``, ``verdict``, measured numbers …) plus ``name``,
    ``wall_s`` (seconds since the fixture was set up — i.e. the test's
    own duration so far) and ``peak_rss_mb`` from the shared heartbeat
    probe.  Records written during a session are aggregated into
    ``BENCH_telemetry.json`` at session finish.
    """
    from repro.durable.watchdog import current_rss_mb

    started = time.perf_counter()

    def _emit(name: str, text: str, record: Optional[Record] = None) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")
        if record is None:
            return
        payload = dict(record)
        payload["name"] = name
        payload.setdefault("wall_s", round(time.perf_counter() - started, 3))
        payload.setdefault("peak_rss_mb", round(current_rss_mb(), 1))
        payload.setdefault("schema", BENCH_SCHEMA)
        payload.setdefault("commit", _git_commit())
        payload.setdefault("host", host_fingerprint())
        RECORDS_DIR.mkdir(parents=True, exist_ok=True)
        path = RECORDS_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        _SESSION_RECORDS.append(path)

    return _emit


def pytest_sessionfinish(session, exitstatus):  # noqa: ARG001
    """Aggregate this session's benchmark records into BENCH_telemetry.json.

    Only records emitted *this* session participate (a partial run —
    ``pytest benchmarks/bench_durable_journal.py`` — must not resurrect
    stale numbers for experiments it did not run); the aggregate merges
    over whatever BENCH_telemetry.json already holds, so a full sweep
    accumulates one record per experiment across invocations.
    """
    if not _SESSION_RECORDS:
        return
    merged: Dict[str, Any] = {}
    if AGGREGATE_PATH.exists():
        try:
            previous = json.loads(AGGREGATE_PATH.read_text())
            merged = dict(previous.get("records", {}))
        except (ValueError, OSError):
            merged = {}
    for path in _SESSION_RECORDS:
        try:
            record = json.loads(path.read_text())
        except (ValueError, OSError):
            continue
        merged[record.get("name", path.stem)] = record
    AGGREGATE_PATH.write_text(
        json.dumps(
            {"schema": BENCH_SCHEMA, "records": dict(sorted(merged.items()))},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
