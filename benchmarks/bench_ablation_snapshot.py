"""E7 — ablation: the snapshot substrate under Figure 3.

The paper's algorithms are written against an atomic snapshot; the register
counts in Figure 1 assume it is implemented from registers.  This ablation
runs the *same* Figure 3 instance over each substrate and measures what the
implementation level costs:

* step inflation: register-level scans take Θ(r) reads per collect (and the
  wait-free one pays for helping), vs 1 step atomically;
* space: the SWMR substrate realizes min(n+2m−k, n) — fewer registers than
  components when n+2m−k > n;
* identical safety on identical adversaries across all substrates.
"""

from __future__ import annotations

import pytest

from repro import OneShotSetAgreement, System
from repro.bench.sweep import bounded_adversary_run
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.objects import implemented_snapshot_layout
from repro.spec import assert_execution_safe, execution_stats

SUBSTRATES = ("atomic", "double-collect", "wait-free", "swmr")


def run_on_substrate(kind: str, n=5, m=1, k=2, seed=6):
    protocol = OneShotSetAgreement(n=n, m=m, k=k)
    layout = implemented_snapshot_layout(protocol, kind)
    system = System(protocol, workloads=distinct_inputs(n), layout=layout)
    execution = bounded_adversary_run(
        system, survivors=[0], seed=seed, max_steps=2_000_000
    )
    assert_execution_safe(execution, k=k)
    return system, execution


def test_substrate_ablation(emit):
    rows = []
    atomic_steps = None
    for kind in SUBSTRATES:
        system, execution = run_on_substrate(kind)
        stats = execution_stats(execution)
        if kind == "atomic":
            atomic_steps = stats.memory_steps
        rows.append(
            (kind, system.layout.register_count(), stats.memory_steps,
             stats.write_steps, stats.scan_steps,
             f"{stats.memory_steps / atomic_steps:.1f}x")
        )
        if kind != "atomic":
            # Register-level substrates must pay more memory steps.
            assert stats.memory_steps > atomic_steps
    text = format_table(
        ["substrate", "registers", "memory steps", "writes", "reads/scans",
         "inflation"],
        rows,
        title="E7 — snapshot substrate ablation (Figure 3, n=5, m=1, k=2)",
    )
    emit("ablation_snapshot", text)


def test_swmr_substrate_realizes_min_accounting():
    """When n+2m−k > n the SWMR route is strictly cheaper (Theorem 7)."""
    protocol = OneShotSetAgreement(n=4, m=2, k=2)  # components = 6 > n = 4
    atomic = implemented_snapshot_layout(protocol, "atomic").register_count()
    swmr = implemented_snapshot_layout(protocol, "swmr").register_count()
    assert atomic == 6
    assert swmr == 4
    assert swmr == min(protocol.components, protocol.n)


@pytest.mark.benchmark(group="ablation-snapshot")
@pytest.mark.parametrize("kind", SUBSTRATES)
def test_bench_substrate(benchmark, kind):
    def episode():
        return run_on_substrate(kind)

    system, execution = benchmark(episode)
    assert execution.config.procs[0].outputs
