"""E5 — Theorem 10 / Lemma 9: the anonymous one-shot lower bound.

Regenerated artifacts:

* the bound curve ``sqrt(m(n/k − 2))`` against the anonymous upper bound
  ``(m+1)(n−k) + m²`` across n — the gap the paper's §7 highlights must
  *widen* with n (sqrt vs linear/quadratic shape);
* the ``R(V)`` machinery: solo executions of the anonymous algorithm have
  input-independent register footprints (the common-prefix property Lemma 9
  exploits), demonstrated on concrete traces;
* the Lemma 9 clone glue: certified k-Agreement violations for
  under-provisioned anonymous algorithms, with the process count matching
  the lemma's ``⌈(k+1)/m⌉(m + (L²−L)/2)`` requirement exactly.
"""

from __future__ import annotations

import pytest

from repro import System
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.lowerbounds.bounds import (
    anonymous_oneshot_lower_bound,
    anonymous_oneshot_upper_bound,
    lemma9_process_requirement,
)
from repro.lowerbounds.cloning import lemma9_glue, register_sequence, solo_trace
from repro.runtime.runner import run_solo

GLUE_CASES = [(1, 2), (1, 3), (2, 2), (2, 3)]  # (k, attacked register count)


def test_bound_gap_widens_with_n(emit):
    rows = []
    previous_gap = 0.0
    for n in (6, 12, 24, 48, 96, 192):
        m, k = 1, 2
        lower = anonymous_oneshot_lower_bound(n, m, k)
        upper = anonymous_oneshot_upper_bound(n, m, k)
        gap = upper - lower
        rows.append((n, m, k, f"{lower:.2f}", upper, f"{gap:.1f}"))
        assert gap > previous_gap  # sqrt vs linear: the gap must widen
        previous_gap = gap
    text = format_table(
        ["n", "m", "k", "lower > sqrt(m(n/k-2))", "upper (m+1)(n-k)+m²",
         "gap"],
        rows,
        title="E5 / Theorem 10 — anonymous one-shot bounds: widening gap",
    )
    emit("thm10_bound_gap", text)


def test_solo_register_sequences_are_input_independent(emit):
    """R(V) is the same register sequence for every input value — the
    common-prefix property the Lemma 9 induction feeds on."""
    protocol = AnonymousOneShotSetAgreement(n=4, m=1, k=1, components=3)
    sequences = []
    for value in ("a", "b", "c", "d"):
        system = System(protocol, workloads=[[value]] * 4)
        execution = run_solo(system, 0)
        sequences.append(register_sequence(execution))
    assert len(set(sequences)) == 1
    text = format_table(
        ["input", "R(V)"],
        [(v, " ".join(map(str, seq)))
         for v, seq in zip(("a", "b", "c", "d"), sequences)],
        title="E5 — solo register footprints R(V) (input-independent)",
    )
    emit("thm10_register_sequences", text)


def test_clone_glue_certifies_violations(emit):
    rows = []
    for k, r in GLUE_CASES:
        def factory(n, r=r, k=k):
            return AnonymousOneShotSetAgreement(n=n, m=1, k=k, components=r)

        result = lemma9_glue(factory, k=k, inputs=[f"v{i}" for i in range(k + 1)])
        assert result.success, result.summary()
        assert len(result.distinct_outputs) == k + 1
        assert result.n_processes == max(
            lemma9_process_requirement(1, k, r), k + 2
        )
        rows.append(
            (k, r, result.n_processes, result.clones_per_group,
             len(result.schedule), len(result.distinct_outputs))
        )
    text = format_table(
        ["k", "registers", "processes (Lemma 9 formula)", "clones/group",
         "steps", "outputs"],
        rows,
        title="E5 / Lemma 9 — clone-glued violations (anonymous, m=1)",
    )
    emit("thm10_clone_glue", text)


def test_glue_respects_anonymity():
    """The choreography relies on clones being *exact* shadows — solo traces
    must agree structurally across groups, else GlueFailure is raised.  A
    successful glue therefore certifies the anonymity of the algorithm too."""
    protocol = AnonymousOneShotSetAgreement(n=4, m=1, k=1, components=2)
    system = System(protocol, workloads=distinct_inputs(4))
    t0 = solo_trace(system, 0)
    t1 = solo_trace(system, 1)
    assert t0.shape == t1.shape
    assert t0.registers == t1.registers


@pytest.mark.benchmark(group="thm10")
@pytest.mark.parametrize("k,r", [(1, 2), (2, 2)])
def test_bench_clone_glue(benchmark, k, r):
    def factory(n, r=r, k=k):
        return AnonymousOneShotSetAgreement(n=n, m=1, k=k, components=r)

    def glue():
        return lemma9_glue(factory, k=k, inputs=[f"v{i}" for i in range(k + 1)])

    result = benchmark(glue)
    assert result.success
