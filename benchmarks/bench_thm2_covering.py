"""E2 — Theorem 2 / Figure 2: the covering construction, end to end.

Runs the executable lower-bound proof against the paper's own Figure 4
algorithm under-provisioned to ``n+m−k−1`` registers, across parameter
settings, and reports construction sizes.  Also checks the boundary: at
exactly ``n+m−k`` registers the construction must *fail to certify* a
violation against this (safe) algorithm.
"""

from __future__ import annotations

import pytest

from repro import RepeatedSetAgreement, System
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.lowerbounds import covering_construction
from repro.lowerbounds.covering import CoveringFailure

ATTACK_GRID = [(3, 1, 1), (4, 1, 1), (4, 1, 2), (4, 2, 2), (5, 1, 1),
               (5, 1, 3), (5, 2, 2)]


def attacked_system(n, m, k, r, instances=14):
    protocol = RepeatedSetAgreement(n=n, m=m, k=k, components=r)
    return System(protocol, workloads=distinct_inputs(n, instances=instances))


def test_covering_certifies_violations_below_bound(emit, results_dir):
    from repro.lowerbounds.certificates import (
        certificate_for_system,
        save_certificate,
        verify_certificate,
    )

    certificate_dir = results_dir / "certificates"
    certificate_dir.mkdir(exist_ok=True)
    rows = []
    for n, m, k in ATTACK_GRID:
        r = n + m - k - 1
        system = attacked_system(n, m, k, r)
        result = covering_construction(system, m=m, k=k)
        assert result.success, f"(n={n},m={m},k={k}): {result.summary()}"
        assert len(result.distinct_outputs) >= k + 1
        # Archive the violation as a portable, re-checkable certificate.
        certificate = certificate_for_system(
            system, result.schedule,
            claim=(
                f"Theorem 2: Figure 4 (n={n}, m={m}, k={k}) violates "
                f"k-Agreement with {r} registers (bound: {n + m - k})"
            ),
        )
        path = certificate_dir / f"thm2_n{n}_m{m}_k{k}.json"
        save_certificate(certificate, path)
        assert verify_certificate(certificate)
        # Every spliced group contributed: total outputs = k+1 exactly when
        # groups are disjoint, which the construction guarantees.
        gamma_steps = sum(len(g.gamma) for g in result.groups)
        rows.append(
            (n, m, k, r, result.target_instance,
             len(result.distinct_outputs), len(result.schedule), gamma_steps,
             len(result.groups))
        )
    text = format_table(
        ["n", "m", "k", "r", "instance", "outputs", "steps", "γ steps",
         "groups"],
        rows,
        title="E2 / Theorem 2 — covering construction (certified violations)",
    )
    emit("thm2_covering", text)


def test_covering_cannot_certify_at_the_bound():
    """At r = n+m−k the algorithm is safe; the construction must not
    produce a certified violation (it fails or certifies nothing)."""
    n, m, k = 3, 1, 1
    r = n + m - k  # exactly the lower bound; Figure 4 is safe here (r = n)
    try:
        result = covering_construction(attacked_system(n, m, k, r), m=m, k=k)
    except CoveringFailure:
        return  # construction could not even complete — expected
    assert not result.success, (
        "covering construction certified a violation against a correctly "
        "provisioned algorithm — this would disprove Theorem 8!"
    )


def test_covering_violation_is_replayable():
    """The returned schedule alone reproduces the violation (certification
    really is replay, not bookkeeping)."""
    from repro.runtime.runner import replay
    from repro.spec.properties import check_k_agreement

    n, m, k = 3, 1, 1
    system = attacked_system(n, m, k, n + m - k - 1)
    result = covering_construction(system, m=m, k=k)
    fresh = replay(system, result.schedule)
    assert check_k_agreement(fresh, k)


@pytest.mark.benchmark(group="thm2")
@pytest.mark.parametrize("n,m,k", [(3, 1, 1), (4, 1, 2), (4, 2, 2)])
def test_bench_covering_construction(benchmark, n, m, k):
    r = n + m - k - 1

    def construct():
        return covering_construction(attacked_system(n, m, k, r), m=m, k=k)

    result = benchmark(construct)
    assert result.success
