"""E1 — Figure 1: the bounds table, formulas vs *measured* register usage.

For a grid of (n, m, k) this experiment regenerates the paper's Figure 1
and checks, per cell, that the corresponding artifact in this library
matches it exactly:

* upper bounds: the register count actually provisioned by each algorithm
  (one-shot / repeated on the SWMR substrate when that is cheaper;
  anonymous repeated with its snapshot + register H) equals the formula;
* the repeated lower bound: the Theorem 2 covering construction certifies a
  k-Agreement violation at ``n+m−k−1`` registers (run on small instances);
* consistency: every lower bound ≤ its upper bound, and the m = k = 1
  repeated case is tight at exactly ``n`` (the paper's headline corollary).
"""

from __future__ import annotations

import pytest

from repro import (
    AnonymousRepeatedSetAgreement,
    OneShotSetAgreement,
    RepeatedSetAgreement,
    System,
)
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.lowerbounds import covering_construction, figure1_table
from repro.lowerbounds.bounds import bounds_consistent
from repro.objects.layouts import substrate_register_count

GRID = [(3, 1, 1), (4, 1, 1), (4, 1, 2), (4, 2, 2), (5, 1, 2), (5, 2, 3),
        (6, 1, 1), (6, 2, 4), (8, 3, 5)]

COVERING_GRID = [(3, 1, 1), (4, 1, 2), (4, 2, 2)]


def measured_upper_bounds(n, m, k):
    """Provisioned registers of each upper-bound algorithm at (n, m, k)."""
    oneshot = OneShotSetAgreement(n=n, m=m, k=k)
    repeated = RepeatedSetAgreement(n=n, m=m, k=k)
    anonymous = AnonymousRepeatedSetAgreement(n=n, m=m, k=k)
    # Theorem 7/8 take the SWMR route when the nominal snapshot exceeds n.
    oneshot_regs = min(
        substrate_register_count(oneshot, "atomic"),
        substrate_register_count(oneshot, "swmr"),
    )
    repeated_regs = min(
        substrate_register_count(repeated, "atomic"),
        substrate_register_count(repeated, "swmr"),
    )
    anonymous_regs = System(
        anonymous, workloads=distinct_inputs(n)
    ).layout.register_count()
    return oneshot_regs, repeated_regs, anonymous_regs


def test_fig1_formulas_match_measured_registers(emit):
    rows = []
    for n, m, k in GRID:
        table = figure1_table(n, m, k)
        oneshot_regs, repeated_regs, anonymous_regs = measured_upper_bounds(n, m, k)
        assert oneshot_regs == table["non-anonymous/one-shot/upper"].value
        assert repeated_regs == table["non-anonymous/repeated/upper"].value
        assert anonymous_regs == table["anonymous/repeated/upper"].value
        assert bounds_consistent(n, m, k)
        rows.append(
            (
                n, m, k,
                int(table["non-anonymous/repeated/lower"].value),
                repeated_regs,
                oneshot_regs,
                f"{table['anonymous/one-shot/lower'].value:.2f}",
                anonymous_regs,
                anonymous_regs - 1,  # one-shot anonymous drops register H
            )
        )
    text = format_table(
        ["n", "m", "k", "rep LB", "rep UB (meas)", "1shot UB (meas)",
         "anon 1shot LB >", "anon rep UB (meas)", "anon 1shot UB"],
        rows,
        title="E1 / Figure 1 — formulas vs measured register provisioning",
    )
    emit("fig1_table", text)


def test_fig1_repeated_consensus_is_tight_at_n():
    """m = k = 1: repeated consensus needs exactly n registers (paper §1)."""
    for n in (3, 4, 5, 8, 16):
        table = figure1_table(n, 1, 1)
        assert table["non-anonymous/repeated/lower"].value == n
        assert table["non-anonymous/repeated/upper"].value == n


def test_fig1_lower_bound_certified_below_threshold(emit):
    rows = []
    for n, m, k in COVERING_GRID:
        r = n + m - k - 1
        protocol = RepeatedSetAgreement(n=n, m=m, k=k, components=r)
        system = System(protocol, workloads=distinct_inputs(n, instances=12))
        result = covering_construction(system, m=m, k=k)
        assert result.success, result.summary()
        assert len(result.distinct_outputs) >= k + 1
        rows.append(
            (n, m, k, r, n + m - k, len(result.distinct_outputs),
             len(result.schedule))
        )
    text = format_table(
        ["n", "m", "k", "registers attacked", "Thm2 bound",
         "distinct outputs", "schedule steps"],
        rows,
        title="E1 — certified k-Agreement violations below the Thm 2 bound",
    )
    emit("fig1_lowerbound_violations", text)


@pytest.mark.benchmark(group="fig1")
def test_bench_fig1_register_accounting(benchmark):
    """Time the full Figure 1 regeneration across the grid."""

    def regenerate():
        for n, m, k in GRID:
            figure1_table(n, m, k)
            measured_upper_bounds(n, m, k)

    benchmark(regenerate)
