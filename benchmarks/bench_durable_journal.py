"""E15 — durable run journal: checkpointing overhead and resume savings.

Regenerated claims (see ``docs/explorer.md`` for the recovery runbook):

* **Overhead**: journaling every merged batch (fingerprint-only deltas,
  ~70 bytes per discovered configuration) plus size-gated checkpoint
  compaction costs ≈ 5% wall-clock on an exploration large enough to
  measure (the acceptance assertion uses a 30% backstop so a noisy shared
  CI host cannot flake the suite; the emitted table records the actual
  ratio).
* **Resume pays**: a run interrupted by the deadline watchdog and then
  resumed does *not* redo the configurations it already explored — the
  second leg explores only the remainder, and the stitched verdict is
  bit-identical to an uninterrupted run's.

Both legs assert verdict equality outright: durability must be free in
the semantics even where it costs a few percent in time.
"""

from __future__ import annotations

import dataclasses
import time

from repro import OneShotSetAgreement, System
from repro.bench.tables import format_table
from repro.durable.watchdog import Watchdog
from repro.explore import explore_safety

#: Big enough that per-batch journaling is measured against real work,
#: small enough to keep the benchmark in seconds.
MAX_CONFIGS = 12_000
CHECKPOINT_EVERY = 16


def make_system():
    return System(
        OneShotSetAgreement(n=3, m=1, k=2), workloads=[["a"], ["b"], ["c"]]
    )


def verdict_record(result):
    """An ExplorationResult minus the durability/health history fields."""
    record = dataclasses.asdict(result)
    for name in ("worker_retries", "degraded", "interrupted", "recovery"):
        record.pop(name)
    return record


def timed_explore(**kwargs):
    """Min-of-3 wall clock for one explore configuration, plus the result."""
    best = float("inf")
    result = None
    for _ in range(3):
        t0 = time.perf_counter()
        result = explore_safety(
            make_system(), 2, max_configs=MAX_CONFIGS, batch_size=64,
            **kwargs,
        )
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_checkpointing_overhead(emit, tmp_path):
    """Journaled exploration stays within a few percent of plain."""
    t_plain, plain = timed_explore()
    # fresh journal dir per repetition is wrong — the point is steady-state
    # append cost, and a finished checkpoint would short-circuit; so give
    # each repetition its own directory via checkpoint_every on a fresh key
    t_journal = float("inf")
    journaled = None
    for rep in range(3):
        journal_dir = str(tmp_path / f"journal-{rep}")
        t0 = time.perf_counter()
        journaled = explore_safety(
            make_system(), 2, max_configs=MAX_CONFIGS, batch_size=64,
            journal_dir=journal_dir, checkpoint_every=CHECKPOINT_EVERY,
        )
        t_journal = min(t_journal, time.perf_counter() - t0)

    assert verdict_record(journaled) == verdict_record(plain)
    overhead = t_journal / t_plain - 1.0
    # Acceptance backstop: generous so shared CI noise cannot flake it;
    # the table records the measured number (target <= 5%).
    assert overhead <= 0.30, (
        f"journaling overhead {overhead:.1%} exceeds the 30% backstop"
    )
    text = format_table(
        ["configs", "t_plain (s)", "t_journaled (s)", "overhead",
         "identical verdict"],
        [(plain.configs_discovered, f"{t_plain:.2f}", f"{t_journal:.2f}",
          f"{overhead:+.1%}", "yes")],
        title="E15a — run-journal overhead on exhaustive exploration "
              "(fingerprint deltas, size-gated compaction, min of 3)",
    )
    emit("durable_journal_overhead", text, record={
        "experiment": "E15a",
        "params": {"max_configs": MAX_CONFIGS, "batch_size": 64,
                   "checkpoint_every": CHECKPOINT_EVERY},
        "seconds_plain": round(t_plain, 3),
        "seconds_journaled": round(t_journal, 3),
        "overhead_fraction": round(overhead, 4),
        "verdict": "identical",
    })


def test_resume_saves_work(emit, tmp_path):
    """An interrupted run's resume explores only the remainder."""
    t_full, baseline = timed_explore()

    journal_dir = str(tmp_path / "resume-journal")
    wd = Watchdog(deadline=max(0.05, t_full / 3))
    t0 = time.perf_counter()
    first_leg = explore_safety(
        make_system(), 2, max_configs=MAX_CONFIGS, batch_size=64,
        journal_dir=journal_dir, checkpoint_every=CHECKPOINT_EVERY,
        watchdog=wd,
    )
    t_first = time.perf_counter() - t0
    assert first_leg.interrupted == "deadline"
    assert 0 < first_leg.configs_explored < baseline.configs_explored

    t0 = time.perf_counter()
    resumed = explore_safety(
        make_system(), 2, max_configs=MAX_CONFIGS, batch_size=64,
        journal_dir=journal_dir, checkpoint_every=CHECKPOINT_EVERY,
    )
    t_resume = time.perf_counter() - t0
    assert resumed.recovery is not None
    assert verdict_record(resumed) == verdict_record(baseline)

    text = format_table(
        ["configs", "t_uninterrupted (s)", "explored at interrupt",
         "t_resume (s)", "identical verdict"],
        [(baseline.configs_discovered, f"{t_full:.2f}",
          f"{first_leg.configs_explored} ({t_first:.2f}s)",
          f"{t_resume:.2f}", "yes")],
        title="E15b — deadline interrupt + resume "
              "(the second leg redoes no explored configuration)",
    )
    emit("durable_journal_resume", text, record={
        "experiment": "E15b",
        "params": {"max_configs": MAX_CONFIGS, "batch_size": 64,
                   "checkpoint_every": CHECKPOINT_EVERY},
        "seconds_uninterrupted": round(t_full, 3),
        "explored_at_interrupt": first_leg.configs_explored,
        "seconds_resume": round(t_resume, 3),
        "verdict": "identical",
    })
