"""E9 — §7 probe: could the repeated upper bound drop to n+m−k?

The paper's concluding remarks conjecture the repeated upper bound might
improve from min(n+2m−k, n) registers to n+m−k (matching the lower bound).
The conjecture is about *some* algorithm; this probe asks what happens to
the paper's *own* Figure 4 algorithm when its snapshot is squeezed from its
nominal ``n+2m−k`` components to ``n+m−k`` — m fewer:

* **Finding** (exhaustive, (3,1,1)): Figure 4 at n+m−k components is
  *unsafe* — the checker produces a concrete witness schedule with two
  outputs in a consensus instance.  Lemma 4's Case 2b pigeonhole really
  needs all n+2m−k components; the conjectured improvement, if true, needs
  a different algorithm, not a squeezed Figure 4.
* larger points are probed within a bounded budget and reported
  (safe-within-budget is inconclusive, and said so).
"""

from __future__ import annotations

import pytest

from repro import RepeatedSetAgreement, OneShotSetAgreement, System
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.explore import explore_safety
from repro.spec.progress import progress_matrix

PROBE_GRID = [(3, 1, 1), (4, 1, 2), (4, 2, 2)]


def squeezed_system(n, m, k, instances=1):
    r = n + m - k
    protocol = RepeatedSetAgreement(n=n, m=m, k=k, components=r)
    return System(protocol, workloads=distinct_inputs(n, instances=instances))


def probe_point(n, m, k, max_configs=150_000):
    system = squeezed_system(n, m, k)
    safety = explore_safety(system, k=k, max_configs=max_configs)
    if safety.safety_violations:
        return safety, "UNSAFE (witness found)"
    verdict = "safe (exhaustive)" if safety.complete else "safe (bounded)"
    progress = progress_matrix(
        lambda n=n, m=m, k=k: squeezed_system(n, m, k),
        n=n,
        m=m,
        seeds=(1, 2),
        prelude_steps=40,
        budget=20_000,
    )
    if not progress.ok:
        verdict += ", PROGRESS LOST"
    else:
        verdict += ", progress ok"
    return safety, verdict


def test_conjecture_probe(emit):
    rows = []
    outcomes = {}
    for n, m, k in PROBE_GRID:
        safety, verdict = probe_point(n, m, k)
        outcomes[(n, m, k)] = verdict
        rows.append(
            (n, m, k, n + m - k, n + 2 * m - k,
             safety.configs_explored, verdict)
        )
    text = format_table(
        ["n", "m", "k", "squeezed r (n+m-k)", "nominal r (n+2m-k)",
         "configs explored", "figure 4 at squeezed r"],
        rows,
        title="E9 / §7 probe — Figure 4 squeezed to the lower bound",
    )
    emit("conjecture_probe", text)
    # (3,1,1) settles exhaustively: Figure 4 with only n+m-k = 3 components
    # is UNSAFE — the paper's algorithm cannot realize the §7 conjecture.
    assert outcomes[(3, 1, 1)].startswith("UNSAFE")


def test_squeezed_oneshot_small_cases():
    """One-shot Figure 3 squeezed to n+m−k components is unsafe too."""
    protocol = OneShotSetAgreement(n=3, m=1, k=1, components=3)  # nominal: 4
    system = System(protocol, workloads=distinct_inputs(3))
    result = explore_safety(system, k=1, max_configs=400_000)
    assert result.safety_violations, result.summary()
    # The witness schedule is concrete and replayable.
    from repro.runtime.runner import replay
    from repro.spec.properties import check_k_agreement

    witness = result.safety_violations[0]
    execution = replay(system, witness.schedule)
    assert check_k_agreement(execution, k=1)


@pytest.mark.benchmark(group="conjecture")
def test_bench_probe_smallest_point(benchmark):
    def probe():
        return probe_point(3, 1, 1, max_configs=60_000)

    safety, verdict = benchmark.pedantic(probe, rounds=1, iterations=1)
    assert verdict.startswith("UNSAFE")
