"""E11 — ablation: register *width* (the cost the register count hides).

The paper counts registers and allows them to be "large" (cf. [13]'s large
single-writer registers).  This experiment quantifies large: the repeated
algorithms store the full output history inside every tuple they write, so
payload width grows linearly with the instance number, while the one-shot
algorithm's payloads stay constant.

Regenerated shape claims:

* Figure 3 (one-shot): constant payload width in the instance count
  (trivially — there is one instance) and in n;
* Figure 4 (repeated): payload width grows linearly with the number of
  completed instances;
* Figure 5 (anonymous repeated): same linear growth, plus register H's
  payload (the whole published history) growing identically.
"""

from __future__ import annotations

import pytest

from repro import (
    OneShotSetAgreement,
    RepeatedSetAgreement,
    AnonymousRepeatedSetAgreement,
    System,
)
from repro.bench.sweep import bounded_adversary_run
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.spec.stats import max_register_payload


def repeated_payload(instances, n=3, m=1, k=1):
    system = System(
        RepeatedSetAgreement(n=n, m=m, k=k),
        workloads=distinct_inputs(n, instances=instances),
    )
    execution = bounded_adversary_run(system, survivors=[0], seed=2,
                                      prelude_steps=30)
    return max_register_payload(execution)


def test_register_width_growth(emit):
    rows = []
    widths = []
    for instances in (1, 2, 4, 8, 16):
        width = repeated_payload(instances)
        widths.append(width)
        rows.append(("figure4", instances, width))
    # Linear growth: each doubling of instances roughly doubles the width.
    assert widths[-1] > 4 * widths[0]
    assert all(a < b for a, b in zip(widths, widths[1:]))

    oneshot_widths = []
    for n in (3, 5, 8):
        system = System(OneShotSetAgreement(n=n, m=1, k=1),
                        workloads=distinct_inputs(n))
        execution = bounded_adversary_run(system, survivors=[0], seed=2)
        width = max_register_payload(execution)
        oneshot_widths.append(width)
        rows.append(("figure3", 1, width))
    # One-shot payloads stay flat (value + id only).
    assert max(oneshot_widths) - min(oneshot_widths) <= 8

    anon = System(
        AnonymousRepeatedSetAgreement(n=3, m=1, k=1),
        workloads=distinct_inputs(3, instances=8),
    )
    execution = bounded_adversary_run(anon, survivors=[0], seed=2,
                                      prelude_steps=30)
    rows.append(("figure5", 8, max_register_payload(execution)))

    text = format_table(
        ["protocol", "instances", "max payload (repr chars)"],
        rows,
        title="E11 — register width: histories make registers large",
    )
    emit("register_width", text)


@pytest.mark.benchmark(group="register-width")
def test_bench_payload_measurement(benchmark):
    width = benchmark(repeated_payload, 8)
    assert width > 0
