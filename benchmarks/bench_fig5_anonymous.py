"""E6 — Figure 5 / Theorem 11: the anonymous repeated algorithm.

Regenerated claims:

* register accounting: ``(m+1)(n−k) + m²`` snapshot components plus the
  register ``H`` — exactly Theorem 11's ``(m+1)(n−k)+m²+1``;
* decision episodes across (n, m, k) under m-bounded adversaries, all safe;
* the starvation-rescue mechanism: on the *non-blocking* anonymous snapshot
  substrate, a process whose scans are perpetually invalidated by a writer
  still completes its ``Propose`` — via thread 2's read of ``H`` — which is
  the entire reason Figure 5 runs two threads (Appendix B's closing
  argument).
"""

from __future__ import annotations

import pytest

from repro import AnonymousRepeatedSetAgreement, System, run
from repro.bench.sweep import bounded_adversary_run
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.objects import implemented_snapshot_layout
from repro.runtime.events import DecideEvent
from repro.sched import CyclicScheduler, phases
from repro.spec import assert_execution_safe

GRID = [(3, 1, 1), (3, 1, 2), (4, 1, 2), (4, 2, 2), (5, 1, 3), (6, 2, 4)]


def test_anonymous_register_accounting_and_sweep(emit):
    rows = []
    for n, m, k in GRID:
        protocol = AnonymousRepeatedSetAgreement(n=n, m=m, k=k)
        system = System(protocol, workloads=distinct_inputs(n, instances=2))
        expected = (m + 1) * (n - k) + m * m + 1
        assert system.layout.register_count() == expected
        execution = bounded_adversary_run(
            system, survivors=list(range(m)), seed=2, prelude_steps=80
        )
        assert_execution_safe(execution, k=k)
        rows.append((n, m, k, expected, execution.steps))
    text = format_table(
        ["n", "m", "k", "registers (Thm 11)", "steps (2 instances)"],
        rows,
        title="E6 / Figure 5 — anonymous repeated agreement",
    )
    emit("fig5_anonymous_sweep", text)


def starvation_scenario():
    """q streams instances on a non-blocking snapshot; p is throttled so its
    scans never stabilize.  Returns the execution and p's deciding thread."""
    protocol = AnonymousRepeatedSetAgreement(n=2, m=1, k=1)
    layout = implemented_snapshot_layout(protocol, "anonymous-double-collect")
    system = System(
        protocol,
        workloads=[[f"q{t}" for t in range(50)], ["p-starved"]],
        layout=layout,
    )
    scheduler = CyclicScheduler(phases([0] * 20, [1] * 4))
    execution = run(
        system,
        scheduler,
        max_steps=200_000,
        stop=lambda config, events: len(config.procs[1].outputs) >= 1,
    )
    decide = next(
        e for e in execution.events
        if isinstance(e, DecideEvent) and e.pid == 1
    )
    return execution, decide.thread


def test_starving_scanner_rescued_by_register_h(emit):
    execution, deciding_thread = starvation_scenario()
    assert_execution_safe(execution, k=1)
    assert deciding_thread == 1, (
        "the starving process was expected to decide via thread 2's poll of "
        f"register H, decided via thread {deciding_thread} instead"
    )
    text = format_table(
        ["process", "outputs", "deciding thread"],
        [
            ("q (fast writer)",
             len(execution.config.procs[0].outputs), "loop"),
            ("p (starved scanner)",
             len(execution.config.procs[1].outputs),
             "H-poll (thread 2)"),
        ],
        title=(
            "E6 — starvation rescue on the non-blocking snapshot "
            f"({execution.steps} steps)"
        ),
    )
    emit("fig5_starvation_rescue", text)


def test_anonymous_protocol_never_reads_identifiers():
    """The runtime raises AnonymityViolation if an anonymous automaton
    touches ctx.identifier; a clean multi-instance run certifies Figure 5
    doesn't."""
    protocol = AnonymousRepeatedSetAgreement(n=3, m=1, k=2)
    system = System(protocol, workloads=distinct_inputs(3, instances=2))
    execution = bounded_adversary_run(system, survivors=[0], seed=1)
    assert_execution_safe(execution, k=2)


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("n", [3, 5, 7])
def test_bench_anonymous_episode(benchmark, n):
    def episode():
        protocol = AnonymousRepeatedSetAgreement(n=n, m=1, k=n - 1)
        system = System(protocol, workloads=distinct_inputs(n))
        return bounded_adversary_run(system, survivors=[0], seed=4)

    execution = benchmark(episode)
    assert execution.config.procs[0].outputs


@pytest.mark.benchmark(group="fig5-starvation")
def test_bench_starvation_rescue(benchmark):
    execution, thread = benchmark(starvation_scenario)
    assert thread == 1
