"""E17 — the serve daemon: memoization payoff and saturation behavior.

Three measurements against a real subprocess daemon (the same binary an
operator runs, socket and all):

* **cold latency** — submit a fresh explore job and block for the
  verdict: the price of one verification plus the protocol round trip;
* **cache-hit latency** — resubmit the identical job: the handler
  thread answers inline from the content-addressed store, so this is
  pure protocol + store-read cost, and the speedup over cold is the
  memoization payoff;
* **saturation throughput** — fire distinct jobs at a small-capacity
  queue as fast as the daemon refuses them, honoring every
  ``retry_after`` hint, and measure completed jobs per second plus how
  many explicit busy refusals the run absorbed — backpressure must
  shed load without losing a single accepted job.

Acceptance assertions are generous backstops (shared CI hosts are
noisy); the emitted table and record carry the real numbers.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

from repro.bench.tables import format_table
from repro.serve import client
from repro.serve.protocol import VerifyJob
from repro.serve.server import resolve_endpoint

#: Cold work unit: big enough to dwarf the round trip, small enough to
#: keep the benchmark in seconds.
COLD_CONFIGS = 8_000
#: Distinct jobs fired at the saturation leg's capacity-2 queue.
SATURATION_JOBS = 6
CACHE_HIT_REPS = 20


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return env


def start_daemon(data_dir, *extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--data-dir", str(data_dir), *extra],
        env=subprocess_env(), start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def wait_for_endpoint(data_dir, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            host, port = resolve_endpoint(data_dir)
            client.status(host, port, timeout=2.0)
            return host, port
        except Exception:
            time.sleep(0.05)
    raise AssertionError(f"no live daemon under {data_dir}")


def stop_daemon(proc):
    # SIGTERM the daemon only — a group-wide TERM would also hit the
    # pool workers and wedge the graceful pool teardown.
    try:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)
    except (ProcessLookupError, subprocess.TimeoutExpired):
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait(timeout=60)


def test_serve_latency_and_saturation(emit, tmp_path):
    """E17: cold vs cache-hit latency, then throughput under saturation."""
    job = VerifyJob(mode="explore", max_configs=COLD_CONFIGS)
    data_dir = tmp_path / "serve"
    proc = start_daemon(data_dir)
    try:
        host, port = wait_for_endpoint(data_dir)

        t0 = time.perf_counter()
        cold = client.verify(host, port, job.descriptor(), timeout=600.0)
        t_cold = time.perf_counter() - t0
        assert cold["ok"] and not cold["cached"], cold

        t_hit = float("inf")
        for _ in range(CACHE_HIT_REPS):
            t0 = time.perf_counter()
            hit = client.verify(host, port, job.descriptor(), timeout=60.0)
            t_hit = min(t_hit, time.perf_counter() - t0)
            assert hit["ok"] and hit["cached"], hit
            assert hit["fingerprint"] == cold["fingerprint"]
    finally:
        stop_daemon(proc)

    # Saturation leg: fresh daemon, tiny queue, sustained submission.
    sat_dir = tmp_path / "serve-sat"
    jobs = [
        VerifyJob(mode="explore", max_configs=2_000, seed=i + 1)
        for i in range(SATURATION_JOBS)
    ]
    proc = start_daemon(sat_dir, "--queue-capacity", "2",
                        "--retry-after", "0.1")
    try:
        host, port = wait_for_endpoint(sat_dir)
        busy = 0
        t0 = time.perf_counter()
        outstanding = list(jobs)
        while outstanding:
            answer = client.verify(
                host, port, outstanding[0].descriptor(),
                wait=False, timeout=60.0,
            )
            if answer.get("ok"):
                outstanding.pop(0)
            else:
                assert answer.get("busy"), answer
                busy += 1
                time.sleep(answer["retry_after"])
        unresolved = {j.key for j in jobs}
        while unresolved:
            for key in sorted(unresolved):
                answer = client.result(host, port, key, timeout=60.0)
                if answer.get("ok"):
                    unresolved.discard(key)
            if unresolved:
                time.sleep(0.1)
            assert time.perf_counter() - t0 < 600, "saturation leg hung"
        t_saturation = time.perf_counter() - t0
        polled = client.status(host, port, timeout=60.0)["status"]
    finally:
        stop_daemon(proc)

    assert polled["cache"]["entries"] == SATURATION_JOBS  # zero loss
    speedup = t_cold / t_hit
    throughput = SATURATION_JOBS / t_saturation
    # Backstop: memoization must beat redoing the work by a wide margin.
    assert speedup >= 10, f"cache hit only {speedup:.1f}x faster than cold"

    emit(
        "serve_latency",
        format_table(
            ["leg", "jobs", "seconds", "note"],
            [
                ["cold verify", 1, f"{t_cold:.3f}",
                 f"explore max_configs={COLD_CONFIGS}"],
                ["cache hit", 1, f"{t_hit:.4f}",
                 f"{speedup:.0f}x faster (min of {CACHE_HIT_REPS})"],
                ["saturation", SATURATION_JOBS, f"{t_saturation:.2f}",
                 f"{throughput:.2f} jobs/s, {busy} busy refusals, "
                 "capacity 2"],
            ],
            title="E17 — serve daemon: cold vs memoized latency, "
                  "saturation throughput",
        ),
        record={
            "experiment": "E17",
            "params": {
                "cold_max_configs": COLD_CONFIGS,
                "saturation_jobs": SATURATION_JOBS,
                "queue_capacity": 2,
            },
            "cold_s": round(t_cold, 4),
            "cache_hit_s": round(t_hit, 5),
            "cache_speedup": round(speedup, 1),
            "saturation_s": round(t_saturation, 3),
            "saturation_jobs_per_s": round(throughput, 3),
            "busy_refusals": busy,
            "verdict": "ok",
        },
    )
