"""E13 — the parallel, symmetry-reduced exploration engine.

Regenerated claims (see ``docs/explorer.md`` for the engine itself):

* **Symmetry dedup**: on anonymous instances with symmetric workloads,
  quotienting the visited set by process-identity orbits
  (``canonicalize=True``) shrinks the explored state space ≥ 2× — measured
  here at ~5× for (n=3, m=1, k=1) and ~15× for (n=4, m=1, k=3) — while
  certifying the *same* verdict and closure as the full exploration.
* **Worker parity**: sharding frontier expansion across worker processes
  changes wall-clock only, never the result — ``workers=4`` reports
  bit-identical outcomes to ``workers=1``.  The recorded speedup depends
  on the host's core count (a single-core host shows pool overhead
  instead of a win; the table records both cores and times).

The dedup ratio is the paper-relevant number: anonymous algorithms
(Figure 5, §6) are symmetric by construction, so orbit reduction is free
coverage — the same certification at a fraction of the states.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro import OneShotSetAgreement, System
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.tables import format_table
from repro.explore import explore_progress_closure, explore_safety

#: (n, m, k) anonymous one-shot instances with all-equal inputs — the
#: maximal orbit.  Chosen to complete exhaustively in seconds.
DEDUP_GRID = [(3, 1, 1), (4, 1, 3)]


def test_symmetry_dedup_ratio(emit):
    """Orbit-quotiented exploration: same verdict, ≥2× fewer states."""
    rows = []
    best_ratio = 0.0
    for n, m, k in DEDUP_GRID:
        system = System(
            AnonymousOneShotSetAgreement(n=n, m=m, k=k),
            workloads=[["v"]] * n,
        )
        t0 = time.perf_counter()
        plain = explore_safety(system, k=k, max_configs=300_000)
        t_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        canon = explore_safety(
            system, k=k, max_configs=300_000, canonicalize=True
        )
        t_canon = time.perf_counter() - t0

        assert plain.complete and canon.complete
        assert plain.ok and canon.ok
        ratio = plain.configs_discovered / canon.configs_discovered
        best_ratio = max(best_ratio, ratio)
        rows.append((
            n, m, k,
            plain.configs_discovered, canon.configs_discovered,
            f"{ratio:.2f}x", f"{t_plain:.2f}", f"{t_canon:.2f}",
        ))
    # The acceptance bar: at least one anonymous instance dedups >= 2x.
    assert best_ratio >= 2.0, f"best dedup ratio {best_ratio:.2f} < 2"
    text = format_table(
        ["n", "m", "k", "states (full)", "states (orbit)", "dedup",
         "t_full (s)", "t_orbit (s)"],
        rows,
        title="E13a — symmetry reduction on anonymous instances "
              "(identical verdicts, complete closures)",
    )
    emit("explore_parallel_dedup", text, record={
        "experiment": "E13a",
        "params": {"grid": DEDUP_GRID, "max_configs": 300_000},
        "best_dedup_ratio": round(best_ratio, 2),
        "verdict": "ok",
    })


def test_parallel_worker_speedup(emit):
    """Worker sharding: identical results; wall-clock scales with cores."""
    system = System(
        OneShotSetAgreement(n=3, m=1, k=2), workloads=[["a"], ["b"], ["c"]]
    )
    timings = {}
    results = {}
    for workers in (1, 4):
        t0 = time.perf_counter()
        results[workers] = explore_progress_closure(
            system, m=1, max_configs=2_000, solo_budget=2_000,
            workers=workers, batch_size=32,
        )
        timings[workers] = time.perf_counter() - t0
    # Parity is the hard guarantee; speedup depends on the host.
    assert dataclasses.asdict(results[1]) == dataclasses.asdict(results[4])
    speedup = timings[1] / timings[4]
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert speedup > 1.0, (
            f"{cores} cores but workers=4 was not faster "
            f"({timings[1]:.2f}s -> {timings[4]:.2f}s)"
        )
    text = format_table(
        ["cores", "configs", "t_workers=1 (s)", "t_workers=4 (s)",
         "speedup", "identical results"],
        [(cores, results[1].configs_explored,
          f"{timings[1]:.2f}", f"{timings[4]:.2f}",
          f"{speedup:.2f}x", "yes")],
        title="E13b — worker sharding on the progress-closure oracle "
              "(deterministic merge: results are worker-count invariant)",
    )
    emit("explore_parallel_speedup", text, record={
        "experiment": "E13b",
        "params": {"n": 3, "m": 1, "k": 2, "max_configs": 2_000,
                   "batch_size": 32, "workers": [1, 4]},
        "cores": cores,
        "seconds_workers_1": round(timings[1], 3),
        "seconds_workers_4": round(timings[4], 3),
        "speedup": round(speedup, 2),
        "verdict": "identical",
    })
