"""E14 — chaos campaign throughput and engine self-healing overhead.

Two tables:

* **Campaign throughput**: trials/second for the seeded crash and
  corruption families against each algorithm, with the retry and
  violation counts — the controls of `docs/verification.md` §6 run at
  benchmark scale (crash family: zero violations; corruption family: at
  least one certified violation per algorithm).
* **Self-healing overhead**: the same exploration run healthy, with one
  injected worker death (pool rebuild + batch resubmission), and under
  persistent death (degradation to serial), recording wall-clock, retry
  count, and the degradation flag — with verdicts asserted bit-identical
  across all three.
"""

from __future__ import annotations

import dataclasses
import time

from repro import (
    AnonymousRepeatedSetAgreement,
    OneShotSetAgreement,
    RepeatedSetAgreement,
    System,
)
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.explore import explore_safety
from repro.faults import build_family, run_campaign
from repro.faults.chaos import arm_worker_kills

ALGORITHMS = [
    ("oneshot", lambda: System(
        OneShotSetAgreement(n=4, m=2, k=2), workloads=distinct_inputs(4))),
    ("repeated", lambda: System(
        RepeatedSetAgreement(n=4, m=2, k=2),
        workloads=distinct_inputs(4, instances=2))),
    ("anonymous", lambda: System(
        AnonymousRepeatedSetAgreement(n=4, m=2, k=2),
        workloads=distinct_inputs(4, instances=2))),
    ("anonymous-oneshot", lambda: System(
        AnonymousOneShotSetAgreement(n=4, m=2, k=2),
        workloads=distinct_inputs(4))),
]

TRIALS = 12
SEED = 2026


def test_campaign_throughput(emit):
    """Trials/s per (algorithm, family); controls hold at benchmark scale."""
    rows = []
    for name, factory in ALGORITHMS:
        for family in ("crashes", "corruption"):
            system = factory()
            plans = build_family(family, system, trials=TRIALS, seed=SEED)
            report = run_campaign(
                system, plans, family=family, k=2, budget=4_000,
                max_retries=2,
            )
            if family == "crashes":
                assert report.crash_safety_holds()
                assert not report.certified_violations
            else:
                assert report.certified_violations
            rows.append((
                name,
                family,
                len(report.trials),
                f"{len(report.trials) / report.elapsed_seconds:.1f}",
                report.retries,
                len(report.certified_violations),
                len(report.outcomes("inconclusive")),
            ))
    emit("fault_campaign_throughput", format_table(
        ["algorithm", "family", "trials", "trials/s", "retries",
         "certified", "inconclusive"],
        rows,
        title=f"E14: campaign throughput ({TRIALS} trials, seed {SEED})",
    ), record={
        "experiment": "E14a",
        "params": {"trials": TRIALS, "seed": SEED, "budget": 4_000,
                   "max_retries": 2, "k": 2},
        "campaigns": [
            {"algorithm": algo, "family": fam, "trials": trials,
             "trials_per_s": float(rate), "retries": retries,
             "certified": certified, "inconclusive": inconclusive}
            for algo, fam, trials, rate, retries, certified, inconclusive
            in rows
        ],
        "verdict": "ok",
    })


def _verdict(result):
    record = dataclasses.asdict(result)
    record.pop("worker_retries")
    record.pop("degraded")
    return record


def test_self_healing_overhead(emit, tmp_path):
    """Healthy vs healed vs degraded exploration: cost, same verdicts."""
    def explore(chaos=None, timeout=None, retries=2):
        system = System(
            OneShotSetAgreement(n=3, m=1, k=1),
            workloads=[["a"], ["b"], ["c"]],
        )
        t0 = time.perf_counter()
        result = explore_safety(
            system, 1, max_configs=3_000, workers=2, batch_size=16,
            batch_timeout=timeout, max_retries=retries, chaos=chaos,
        )
        return result, time.perf_counter() - t0

    healthy, t_healthy = explore(timeout=60.0)
    one_kill, t_one = explore(
        chaos=arm_worker_kills(str(tmp_path / "one"), 1), timeout=10.0,
        retries=3,
    )
    degraded, t_degraded = explore(
        chaos=arm_worker_kills(str(tmp_path / "many"), 64), timeout=2.0,
    )

    assert one_kill.worker_retries >= 1 and not one_kill.degraded
    assert degraded.degraded
    assert _verdict(one_kill) == _verdict(healthy)
    assert _verdict(degraded) == _verdict(healthy)

    rows = [
        ("healthy", f"{t_healthy:.2f}", healthy.worker_retries,
         healthy.degraded, healthy.configs_explored),
        ("1 worker death", f"{t_one:.2f}", one_kill.worker_retries,
         one_kill.degraded, one_kill.configs_explored),
        ("persistent death", f"{t_degraded:.2f}", degraded.worker_retries,
         degraded.degraded, degraded.configs_explored),
    ]
    emit("fault_self_healing", format_table(
        ["condition", "seconds", "retries", "degraded", "explored"],
        rows,
        title="E14: self-healing overhead (verdicts bit-identical)",
    ), record={
        "experiment": "E14b",
        "params": {"n": 3, "m": 1, "k": 1, "max_configs": 3_000,
                   "workers": 2, "batch_size": 16},
        "seconds_healthy": round(t_healthy, 3),
        "seconds_one_kill": round(t_one, 3),
        "seconds_degraded": round(t_degraded, 3),
        "retries_one_kill": one_kill.worker_retries,
        "verdict": "identical",
    })
