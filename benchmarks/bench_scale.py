"""E12 — scale: decision cost growth with n (simulation headroom).

The paper's bounds are asymptotic in n; this experiment verifies the
*simulator* sustains the regimes the other experiments rely on and
measures how decision cost grows:

* a solo pass of Figure 3 performs Θ(r) = Θ(n) updates+scans before its
  snapshot is uniform, so solo decision steps grow linearly in n;
* m-bounded episodes at n up to 48 complete well inside budget;
* the covering construction's spine length grows with n (more processes to
  freeze), staying tractable.
"""

from __future__ import annotations

import pytest

from repro import OneShotSetAgreement, RepeatedSetAgreement, System, run_solo
from repro.bench.sweep import bounded_adversary_run
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.lowerbounds import covering_construction

SOLO_NS = (4, 8, 16, 32, 48)


def solo_steps(n):
    system = System(OneShotSetAgreement(n=n, m=1, k=1),
                    workloads=distinct_inputs(n))
    return run_solo(system, 0, max_steps=1_000_000).steps


def test_solo_cost_grows_linearly(emit):
    rows = []
    steps = []
    for n in SOLO_NS:
        count = solo_steps(n)
        steps.append(count)
        rows.append((n, n + 1, count, round(count / n, 1)))
    # Linear shape: steps/n stays within a narrow band.
    ratios = [count / n for n, count in zip(SOLO_NS, steps)]
    assert max(ratios) / min(ratios) < 2.0
    text = format_table(
        ["n", "components", "solo steps to decide", "steps/n"],
        rows,
        title="E12 — solo decision cost of Figure 3 grows linearly in n",
    )
    emit("scale_solo", text)


def test_bounded_episodes_scale(emit):
    rows = []
    for n in (8, 16, 32, 48):
        system = System(OneShotSetAgreement(n=n, m=2, k=3),
                        workloads=distinct_inputs(n))
        execution = bounded_adversary_run(
            system, survivors=[0, 1], seed=7, prelude_steps=3 * n,
            max_steps=2_000_000,
        )
        rows.append((n, execution.steps))
        assert system.decided_all(execution.config, [0, 1])
    text = format_table(
        ["n", "episode steps (m=2, k=3)"],
        rows,
        title="E12 — m-bounded episodes at scale",
    )
    emit("scale_bounded", text)


def test_covering_scales(emit):
    rows = []
    for n in (3, 5, 7, 9):
        protocol = RepeatedSetAgreement(n=n, m=1, k=1, components=n - 1)
        system = System(protocol,
                        workloads=distinct_inputs(n, instances=12))
        result = covering_construction(system, m=1, k=1)
        assert result.success
        rows.append((n, n - 1, len(result.schedule)))
    text = format_table(
        ["n", "registers attacked", "certified schedule steps"],
        rows,
        title="E12 — Theorem 2 construction at growing n (consensus)",
    )
    emit("scale_covering", text)


@pytest.mark.benchmark(group="scale")
@pytest.mark.parametrize("n", [8, 16, 32])
def test_bench_solo_scale(benchmark, n):
    steps = benchmark(solo_steps, n)
    assert steps > 0
