"""E16 — the packed-state backend against the engine it replaced.

E13 established the engine's parallel story and, honestly, its weak
spot: on a shared single-core host, worker sharding *lost* wall-clock
(E13b recorded a 0.71x "speedup"), because every pool boundary pickled
whole frozen-dataclass graphs and every successor paid a recursive
``stable_fingerprint`` walk.  PR 6 replaced both with the packed codec
(``repro.explore.packed``; cost model in ``docs/performance.md``).
This file regenerates the before/after:

* **E16a (serial)**: the E13a anonymous workload, explored end-to-end
  under the ``legacy`` backend (pre-packed keying, kept for exactly
  this measurement) vs the codec-keyed ``reference`` and ``packed``
  backends.  The acceptance bar is >= 3x on the canonicalized
  exploration; interleaved best-of-N CPU time keeps the ratio honest on
  noisy hosts.
* **E16b (pool boundary)**: the E13b progress-closure workload across
  backends and worker counts, plus the deterministic part of the story
  — bytes per standalone serialized record (journal records, resumed
  frontier entries, lone states crossing the pool).  Wall-clock speedup
  from workers remains host-dependent (asserted only on >= 4 cores, as
  in E13b); the per-record byte ratio is core-count independent.

Every combination must report a bit-identical verdict: the backends may
only change how fast the answer arrives, never the answer.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time

from repro import OneShotSetAgreement, System
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.tables import format_table
from repro.errors import NotEnabledError
from repro.explore import explore_progress_closure, explore_safety
from repro.explore.packed import make_backend

#: Backends measured serially; ``legacy`` is the pre-packed baseline.
SERIAL_BACKENDS = ("legacy", "reference", "packed")

#: The E16a acceptance bar (canonicalized serial speedup vs legacy).
SERIAL_SPEEDUP_FLOOR = 3.0

#: Interleaved repetitions per backend (best-of, CPU time).
REPS = 5


def anonymous_system():
    return System(
        AnonymousOneShotSetAgreement(n=4, m=1, k=3), workloads=[["v"]] * 4
    )


def oneshot_system():
    return System(
        OneShotSetAgreement(n=3, m=1, k=2), workloads=[["a"], ["b"], ["c"]]
    )


def best_cpu_times(run, backends=SERIAL_BACKENDS, reps=REPS):
    """Interleaved best-of-``reps`` CPU seconds for each backend.

    Round-robin over backends inside each repetition, timed with
    ``time.process_time``: host frequency drift and scheduling noise hit
    every backend alike instead of whichever ran last.
    """
    times = {name: [] for name in backends}
    for _ in range(reps):
        for name in backends:
            t0 = time.process_time()
            run(name)
            times[name].append(time.process_time() - t0)
    return {name: min(series) for name, series in times.items()}


def test_serial_throughput_vs_legacy(emit):
    """E16a: >= 3x serial throughput on the E13a canonicalized workload."""
    results = {}

    def run_canon(backend):
        results[backend] = explore_safety(
            anonymous_system(), k=3, max_configs=4_000, canonicalize=True,
            backend=backend,
        )
        return results[backend]

    def run_plain(backend):
        return explore_safety(
            anonymous_system(), k=3, max_configs=4_000, backend=backend
        )

    canon = best_cpu_times(run_canon)
    plain = best_cpu_times(run_plain)

    verdicts = {
        name: dataclasses.asdict(result) for name, result in results.items()
    }
    assert verdicts["legacy"] == verdicts["reference"] == verdicts["packed"]

    canon_speedup = canon["legacy"] / canon["packed"]
    plain_speedup = plain["legacy"] / plain["packed"]
    assert canon_speedup >= SERIAL_SPEEDUP_FLOOR, (
        f"packed serial speedup {canon_speedup:.2f}x under the "
        f"{SERIAL_SPEEDUP_FLOOR}x bar (legacy {canon['legacy']:.3f}s cpu, "
        f"packed {canon['packed']:.3f}s cpu)"
    )

    rows = [
        (mode, f"{t['legacy']:.3f}", f"{t['reference']:.3f}",
         f"{t['packed']:.3f}", f"{t['legacy'] / t['packed']:.2f}x")
        for mode, t in (("canonicalized", canon), ("plain", plain))
    ]
    text = format_table(
        ["exploration", "legacy (s cpu)", "reference (s cpu)",
         "packed (s cpu)", "packed speedup"],
        rows,
        title="E16a — serial exploration, E13a workload (n=4, m=1, k=3 "
              "anonymous; identical verdicts across backends)",
    )
    emit("packed_backend_serial", text, record={
        "experiment": "E16a",
        "params": {"n": 4, "m": 1, "k": 3, "max_configs": 4_000,
                   "reps": REPS},
        "cpu_seconds_canonicalized": {k: round(v, 3) for k, v in canon.items()},
        "cpu_seconds_plain": {k: round(v, 3) for k, v in plain.items()},
        "speedup_canonicalized": round(canon_speedup, 2),
        "speedup_plain": round(plain_speedup, 2),
        "speedup_floor": SERIAL_SPEEDUP_FLOOR,
        "verdict": "identical",
    })


def frontier_sample(system, count):
    """The first *count* reachable configurations (BFS order)."""
    configs = [system.initial_configuration()]
    frontier = list(configs)
    while frontier and len(configs) < count:
        config = frontier.pop(0)
        for pid in range(len(config.procs)):
            try:
                step = system.step(config, pid)
            except NotEnabledError:
                continue
            if step is not None:
                configs.append(step.config)
                frontier.append(step.config)
    return configs[:count]


def test_pool_boundary_and_worker_speedup(emit):
    """E16b: the E13b workload across backends, plus IPC bytes per chunk."""
    system = oneshot_system()
    timings = {}
    results = {}
    for backend in ("reference", "packed"):
        for workers in (1, 4):
            t0 = time.perf_counter()
            results[backend, workers] = explore_progress_closure(
                oneshot_system(), m=1, max_configs=2_000, solo_budget=2_000,
                workers=workers, batch_size=32, backend=backend,
            )
            timings[backend, workers] = time.perf_counter() - t0

    verdicts = {
        key: dataclasses.asdict(result) for key, result in results.items()
    }
    baseline = verdicts["reference", 1]
    assert all(v == baseline for v in verdicts.values())

    # The deterministic half of the pool-boundary claim: bytes per
    # *standalone* record — one configuration crossing a boundary alone,
    # which is exactly what each journal record and each resumed frontier
    # entry costs.  (Pickling a whole chunk as one object is measured
    # too, but not asserted: pickle's memo dedups sub-objects shared by
    # identity across sibling configurations, an advantage that evaporates
    # as soon as the siblings arrive from different worker processes —
    # see docs/performance.md.)
    sample = frontier_sample(system, 64)
    backend = make_backend("packed")
    carriers = [backend.carrier(config) for config in sample]
    reference_bytes = sum(
        len(pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL))
        for config in sample
    )
    packed_bytes = sum(len(carrier.data) for carrier in carriers)
    chunk_pickled = len(pickle.dumps(sample, protocol=pickle.HIGHEST_PROTOCOL))
    chunk_packed = len(pickle.dumps(carriers, protocol=pickle.HIGHEST_PROTOCOL))
    ipc_ratio = reference_bytes / packed_bytes
    assert ipc_ratio > 1.5, (
        f"packed record ({packed_bytes / len(sample):.0f} B avg) not "
        f"clearly smaller than a standalone pickled configuration "
        f"({reference_bytes / len(sample):.0f} B avg)"
    )

    cores = os.cpu_count() or 1
    speedups = {
        backend: timings[backend, 1] / timings[backend, 4]
        for backend in ("reference", "packed")
    }
    if cores >= 4:
        # Same gate as E13b: multi-worker wall-clock wins need cores.
        assert speedups["packed"] > 1.0, (
            f"{cores} cores but packed workers=4 was not faster "
            f"({timings['packed', 1]:.2f}s -> {timings['packed', 4]:.2f}s)"
        )

    rows = [
        (backend, f"{timings[backend, 1]:.2f}", f"{timings[backend, 4]:.2f}",
         f"{speedups[backend]:.2f}x")
        for backend in ("reference", "packed")
    ]
    text = format_table(
        ["backend", "t_workers=1 (s)", "t_workers=4 (s)", "speedup"],
        rows,
        title=f"E16b — E13b workload by backend on {cores} core(s); "
              f"standalone record: {reference_bytes // len(sample)} B "
              f"pickled vs {packed_bytes // len(sample)} B packed "
              f"({ipc_ratio:.1f}x smaller)",
    )
    emit("packed_backend_parallel", text, record={
        "experiment": "E16b",
        "params": {"n": 3, "m": 1, "k": 2, "max_configs": 2_000,
                   "batch_size": 32, "workers": [1, 4]},
        "cores": cores,
        "seconds": {
            f"{backend}_workers_{workers}": round(value, 3)
            for (backend, workers), value in timings.items()
        },
        "record_bytes_reference": reference_bytes,
        "record_bytes_packed": packed_bytes,
        "record_bytes_ratio": round(ipc_ratio, 2),
        "chunk_bytes_pickled_shared": chunk_pickled,
        "chunk_bytes_packed": chunk_packed,
        "verdict": "identical",
    })


def test_packed_smoke(emit):
    """CI smoke: tiny-budget packed run matches reference and keeps pace.

    Small enough for every CI run (a few seconds), strong enough to
    catch a packed-path regression: identical verdict, and packed serial
    throughput within 25% of reference (they share the codec-keyed hot
    path, so a larger gap means the packed carrier plumbing broke).
    """
    results = {}

    def run(backend):
        results[backend] = explore_safety(
            oneshot_system(), k=2, max_configs=1_500, backend=backend
        )

    times = best_cpu_times(run, backends=("reference", "packed"), reps=3)
    assert dataclasses.asdict(results["reference"]) == dataclasses.asdict(
        results["packed"]
    )
    ratio = times["reference"] / times["packed"]
    assert ratio >= 0.75, (
        f"packed fell behind reference by more than 25% "
        f"(reference {times['reference']:.3f}s cpu, "
        f"packed {times['packed']:.3f}s cpu)"
    )
    text = format_table(
        ["reference (s cpu)", "packed (s cpu)", "packed/reference pace"],
        [(f"{times['reference']:.3f}", f"{times['packed']:.3f}",
          f"{ratio:.2f}x")],
        title="E16 smoke — tiny-budget backend pace check "
              "(identical verdicts)",
    )
    emit("packed_backend_smoke", text, record={
        "experiment": "E16-smoke",
        "params": {"n": 3, "m": 1, "k": 2, "max_configs": 1_500, "reps": 3},
        "cpu_seconds": {k: round(v, 3) for k, v in times.items()},
        "pace_ratio": round(ratio, 2),
        "verdict": "identical",
    })
