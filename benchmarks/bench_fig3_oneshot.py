"""E3 — Figure 3 / Theorem 7: the one-shot algorithm and the [4] baseline.

Three claims of §4.1 are regenerated:

* the algorithm decides under every m-bounded adversary at exactly
  ``n + 2m − k`` snapshot components (step-complexity sweep over n, m, k);
* space vs the DFGR'13 baseline at ``m = 1``: ours ``n−k+2`` registers vs
  the baseline's ``2(n−k)`` — ours wins strictly for ``k < n−2``, ties at
  ``k = n−2``, and the paper's §7 notes the baseline's 2-register win at
  ``k = n−1`` (outside our reconstruction's regime; asserted as excluded);
* both algorithms produce safe executions on identical adversaries.
"""

from __future__ import annotations

import pytest

from repro import BaselineOneShotSetAgreement, OneShotSetAgreement, System
from repro.bench.sweep import bounded_adversary_run, sweep_protocol
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.errors import ConfigurationError
from repro.spec import assert_execution_safe

SWEEP_GRID = [(4, 1, 1), (4, 1, 2), (4, 2, 2), (6, 1, 1), (6, 2, 3),
              (8, 1, 2), (8, 2, 4), (10, 1, 1), (10, 3, 5)]


def test_oneshot_step_complexity_sweep(emit):
    rows = sweep_protocol(
        lambda n, m, k: OneShotSetAgreement(n=n, m=m, k=k),
        SWEEP_GRID,
        seeds=(1, 2, 3),
    )
    table_rows = [
        (r.n, r.m, r.k, r.registers, r.mean_steps, r.max_steps,
         r.distinct_outputs)
        for r in rows
    ]
    for r in rows:
        assert r.registers == r.n + 2 * r.m - r.k
        assert r.distinct_outputs <= r.k
    text = format_table(
        ["n", "m", "k", "components", "mean steps", "max steps",
         "distinct outputs"],
        table_rows,
        title="E3 / Figure 3 — one-shot decision episodes (m-bounded adversary)",
    )
    emit("fig3_oneshot_sweep", text)


def test_space_crossover_vs_baseline(emit):
    """Who wins on space, ours (n−k+2) vs baseline (2(n−k)), and where."""
    rows = []
    n = 8
    for k in range(1, n - 1):
        ours = OneShotSetAgreement(n=n, m=1, k=k).components
        baseline = 2 * (n - k)
        winner = "figure3" if ours < baseline else (
            "tie" if ours == baseline else "baseline"
        )
        rows.append((n, k, ours, baseline, winner))
        if k < n - 2:
            assert ours < baseline
        elif k == n - 2:
            assert ours == baseline
    text = format_table(
        ["n", "k", "figure3 (n-k+2)", "baseline [4] (2(n-k))", "winner"],
        rows,
        title="E3 — space crossover at m=1 (crossover at k = n-2, per §4.1)",
    )
    emit("fig3_baseline_crossover", text)


def test_baseline_refuses_k_equal_n_minus_1():
    with pytest.raises(ConfigurationError):
        BaselineOneShotSetAgreement(n=5, k=4)


def test_baseline_safe_and_live_on_same_adversaries():
    for seed in (1, 2, 3):
        for n, k in [(5, 2), (6, 3), (8, 1)]:
            system = System(
                BaselineOneShotSetAgreement(n=n, k=k),
                workloads=distinct_inputs(n),
            )
            execution = bounded_adversary_run(system, survivors=[0], seed=seed)
            assert_execution_safe(execution, k=k)


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("n", [4, 8, 12])
def test_bench_oneshot_episode(benchmark, n):
    """Time one full m-bounded decision episode at m=1, k=1."""

    def episode():
        system = System(
            OneShotSetAgreement(n=n, m=1, k=1),
            workloads=distinct_inputs(n),
        )
        return bounded_adversary_run(system, survivors=[0], seed=7)

    execution = benchmark(episode)
    assert execution.config.procs[0].outputs


@pytest.mark.benchmark(group="fig3-baseline")
@pytest.mark.parametrize("protocol_name", ["figure3", "baseline"])
def test_bench_figure3_vs_baseline_episode(benchmark, protocol_name):
    """Step-time comparison at n=8, k=2, m=1 on identical adversaries."""
    n, k = 8, 2

    def episode():
        if protocol_name == "figure3":
            protocol = OneShotSetAgreement(n=n, m=1, k=k)
        else:
            protocol = BaselineOneShotSetAgreement(n=n, k=k)
        system = System(protocol, workloads=distinct_inputs(n))
        return bounded_adversary_run(system, survivors=[0], seed=11)

    execution = benchmark(episode)
    assert execution.config.procs[0].outputs
