"""E8 — ablation: adversary severity against Figures 3 and 4.

Obstruction-free algorithms promise safety always and progress only under
contention bounds; this ablation quantifies how much the adversary's
*style* costs before the m-bounded tail begins.  Preludes compared:

* fair round-robin (benign),
* seeded uniform random,
* the writer-priority heuristic (maximal overwriting),
* crash-failure (all but the survivors crash mid-prelude).

All runs must stay safe; the table reports decision latency per prelude.
"""

from __future__ import annotations

import pytest

from repro import (
    CrashScheduler,
    OneShotSetAgreement,
    RandomScheduler,
    RepeatedSetAgreement,
    RoundRobinScheduler,
    System,
    WriterPriorityScheduler,
    run,
)
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.sched import EventuallyBoundedScheduler
from repro.spec import assert_execution_safe

N, M, K = 6, 1, 2
PRELUDE_STEPS = 150


def preludes():
    return {
        "round-robin": RoundRobinScheduler(),
        "random(seed=5)": RandomScheduler(seed=5),
        "writer-priority": WriterPriorityScheduler(),
        "crash-half": CrashScheduler(
            crashes={pid: 40 for pid in range(N // 2)},
            base=RandomScheduler(seed=9),
        ),
    }


def episode(protocol, prelude):
    system = System(protocol, workloads=distinct_inputs(N, instances=2)
                    if protocol.name.startswith("repeated")
                    else distinct_inputs(N))
    scheduler = EventuallyBoundedScheduler(
        survivors=[N - 1], prelude_steps=PRELUDE_STEPS, prelude=prelude
    )
    execution = run(system, scheduler, max_steps=500_000)
    assert_execution_safe(execution, k=K)
    return execution


def test_adversary_ablation(emit):
    rows = []
    for protocol_name, factory in (
        ("figure3", lambda: OneShotSetAgreement(n=N, m=M, k=K)),
        ("figure4", lambda: RepeatedSetAgreement(n=N, m=M, k=K)),
    ):
        for prelude_name, prelude in preludes().items():
            execution = episode(factory(), prelude)
            survivor_done = len(execution.config.procs[N - 1].outputs)
            rows.append(
                (protocol_name, prelude_name, execution.steps,
                 max(0, execution.steps - PRELUDE_STEPS), survivor_done)
            )
            assert survivor_done >= 1
    text = format_table(
        ["protocol", "prelude adversary", "total steps", "post-prelude steps",
         "survivor decisions"],
        rows,
        title=(
            "E8 — adversary ablation (n=6, m=1, k=2; survivor = p5, "
            f"prelude {PRELUDE_STEPS} steps)"
        ),
    )
    emit("ablation_adversary", text)


@pytest.mark.benchmark(group="ablation-adversary")
@pytest.mark.parametrize("prelude_name", ["round-robin", "random(seed=5)",
                                          "writer-priority"])
def test_bench_adversary(benchmark, prelude_name):
    def one():
        return episode(OneShotSetAgreement(n=N, m=M, k=K),
                       preludes()[prelude_name])

    execution = benchmark(one)
    assert execution.config.procs[N - 1].outputs
