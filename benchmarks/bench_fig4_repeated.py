"""E4 — Figure 4 / Theorem 8: repeated agreement across instances.

Regenerated claims:

* per-instance k-Agreement and Validity hold over multi-instance runs under
  m-bounded adversaries (the sweep asserts safety on every run);
* the *shortcut* mechanisms work and matter: decisions that adopt another
  process's published history (line 15–16) or one's own (lines 9–10)
  complete without executing the full loop — we count them;
* space equals min(n + 2m − k, n): the same as one-shot (Theorem 8).
"""

from __future__ import annotations

import pytest

from repro import RepeatedSetAgreement, System
from repro.bench.sweep import bounded_adversary_run, sweep_protocol
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs
from repro.runtime.events import DecideEvent, InvokeEvent, MemoryEvent
from repro.spec import assert_execution_safe

GRID = [(3, 1, 1), (4, 1, 2), (4, 2, 2), (6, 1, 1), (6, 2, 3), (8, 2, 4)]


def shortcut_fraction(execution) -> float:
    """Fraction of decisions reached without any snapshot update in that
    invocation — i.e. via the local-history shortcut of lines 9-10, or an
    immediate higher-instance adoption."""
    per_key_memory = {}
    for event in execution.events:
        if isinstance(event, MemoryEvent):
            key = (event.pid, event.invocation)
            per_key_memory[key] = per_key_memory.get(key, 0) + 1
    decisions = [e for e in execution.events if isinstance(e, DecideEvent)]
    if not decisions:
        return 0.0
    free = sum(
        1 for d in decisions if per_key_memory.get((d.pid, d.invocation), 0) <= 1
    )
    return free / len(decisions)


def test_repeated_multi_instance_sweep(emit):
    from repro import RoundRobinScheduler, run

    rows = []
    for n, m, k in GRID:
        protocol = RepeatedSetAgreement(n=n, m=m, k=k)
        system = System(protocol, workloads=distinct_inputs(n, instances=4))
        execution = bounded_adversary_run(
            system, survivors=list(range(m)), seed=3, prelude_steps=120
        )
        instances_decided = max(
            (len(p.outputs) for p in execution.config.procs), default=0
        )
        assert instances_decided == 4  # survivors finished their workloads
        # Drain the laggards one at a time (solo, so termination is
        # guaranteed): they catch up mostly through the history shortcuts
        # (lines 9-10 and 15-16), which is what we then count.
        from repro.runtime.runner import run_solo

        config = execution.config
        for pid in range(m, n):
            drain = run_solo(system, pid, initial=config, max_steps=200_000)
            execution.events.extend(drain.events)
            execution.schedule.extend(drain.schedule)
            config = drain.config
        execution.config = config
        assert_execution_safe(execution, k=k)
        rows.append(
            (n, m, k, system.layout.register_count(), instances_decided,
             execution.steps, f"{shortcut_fraction(execution):.0%}")
        )
    text = format_table(
        ["n", "m", "k", "components", "instances", "steps",
         "shortcut decisions"],
        rows,
        title="E4 / Figure 4 — repeated agreement over 4 instances",
    )
    emit("fig4_repeated_sweep", text)


def test_repeated_space_matches_theorem8():
    for n, m, k in GRID:
        protocol = RepeatedSetAgreement(n=n, m=m, k=k)
        assert protocol.components == n + 2 * m - k


def test_history_adoption_propagates_outputs():
    """A process that lags whole instances adopts the published history:
    its outputs for caught-up instances equal earlier deciders' outputs."""
    n, m, k = 3, 1, 1
    protocol = RepeatedSetAgreement(n=n, m=m, k=k)
    system = System(protocol, workloads=distinct_inputs(n, instances=3))
    # p0 runs three instances alone; then p1 runs and must adopt them.
    from repro.runtime.runner import run_solo

    execution = run_solo(system, 0)
    tail = run_solo(system, 1, initial=execution.config)
    outputs0 = tail.config.procs[0].outputs
    outputs1 = tail.config.procs[1].outputs
    assert outputs0 == outputs1  # consensus instance-by-instance


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("instances", [1, 4, 8])
def test_bench_repeated_instances(benchmark, instances):
    """Time scaling in the number of instances (n=4, m=1, k=1)."""
    n = 4

    def episode():
        system = System(
            RepeatedSetAgreement(n=n, m=1, k=1),
            workloads=distinct_inputs(n, instances=instances),
        )
        return bounded_adversary_run(
            system, survivors=[0], seed=5, prelude_steps=40
        )

    execution = benchmark(episode)
    assert len(execution.config.procs[0].outputs) == instances
