"""E10 — ablation: the preference funnel (operational Lemmas 4-6).

The algorithms' correctness is, operationally, a funnel: the set of
distinct values alive in the snapshot collapses until at most ``m``
survive, after which everyone left decides.  This experiment measures the
funnel on m-bounded episodes of Figure 3:

* the snapshot **converges** to ≤ m distinct values in every episode
  (Corollary 6's operational content), and stays there;
* convergence time grows with the contended prelude's length;
* preference adoptions and location advances partition the loop
  iterations (Lemma 5's dichotomy), measured per process.
"""

from __future__ import annotations

import pytest

from repro import OneShotSetAgreement, System
from repro.analysis import (
    convergence_step,
    distinct_values_over_time,
    location_advances,
    preference_changes,
)
from repro.bench.sweep import bounded_adversary_run
from repro.bench.tables import format_table
from repro.bench.workloads import distinct_inputs

GRID = [(4, 1, 1), (6, 1, 2), (6, 2, 3), (8, 2, 4)]


def episode(n, m, k, seed, prelude_steps=80):
    system = System(OneShotSetAgreement(n=n, m=m, k=k),
                    workloads=distinct_inputs(n))
    return bounded_adversary_run(
        system, survivors=list(range(m)), seed=seed,
        prelude_steps=prelude_steps,
    )


def test_funnel_converges_below_m(emit):
    rows = []
    for n, m, k in GRID:
        execution = episode(n, m, k, seed=6)
        series = distinct_values_over_time(execution)
        step = convergence_step(execution, m=m)
        assert step is not None, "episode never converged to <= m values"
        assert all(v <= m for v in series[step:])
        peak = max(series)
        adoptions = sum(preference_changes(execution).values())
        advances = sum(location_advances(execution).values())
        rows.append((n, m, k, execution.steps, peak, step, adoptions,
                     advances))
    text = format_table(
        ["n", "m", "k", "steps", "peak distinct values",
         "converged at step", "adoptions", "advances"],
        rows,
        title="E10 — preference funnel under m-bounded adversaries",
    )
    emit("funnel", text)


def test_convergence_scales_with_prelude(emit):
    rows = []
    last = -1
    for prelude in (20, 80, 200):
        execution = episode(6, 1, 2, seed=11, prelude_steps=prelude)
        step = convergence_step(execution, m=1)
        assert step is not None
        rows.append((prelude, execution.steps, step))
        assert step >= last or step >= prelude // 4  # grows with prelude
        last = step
    text = format_table(
        ["prelude steps", "total steps", "converged at step"],
        rows,
        title="E10 — convergence point vs contended prelude length "
              "(n=6, m=1, k=2)",
    )
    emit("funnel_prelude", text)


@pytest.mark.benchmark(group="funnel")
def test_bench_funnel_analysis(benchmark):
    execution = episode(6, 2, 3, seed=6)

    def analyse():
        series = distinct_values_over_time(execution)
        return convergence_step(execution, m=2), max(series)

    step, peak = benchmark(analyse)
    assert step is not None and peak >= 2
