#!/usr/bin/env python3
"""A replicated bank ledger over repeated consensus (Herlihy's motivation).

The paper studies *repeated* set agreement because long-lived objects are
built from a sequence of agreement instances (Herlihy's universal
construction [8]).  This example runs that application in miniature:

* three replicas of a bank ledger each submit their own stream of
  transactions;
* slot ``t`` of the shared log is decided by instance ``t`` of repeated
  consensus — Figure 4 with m = k = 1, the regime where the paper proves
  the space complexity is *exactly* n registers;
* every replica applies the agreed log and ends in the identical state,
  no matter how adversarial the interleaving was.

Run:  python examples/replicated_log.py
"""

from repro import RandomScheduler
from repro.agreement.universal import ReplicatedStateMachine


def apply_transaction(balances: dict, command: tuple) -> dict:
    """Deterministic ledger transition: ('transfer', frm, to, amount)."""
    kind, frm, to, amount = command
    assert kind == "transfer"
    updated = dict(balances)
    if updated.get(frm, 0) >= amount:  # insufficient funds = no-op
        updated[frm] = updated.get(frm, 0) - amount
        updated[to] = updated.get(to, 0) + amount
    return updated


def main() -> None:
    rsm = ReplicatedStateMachine(
        n=3,
        apply_fn=apply_transaction,
        initial_state={"alice": 100, "bob": 50, "carol": 10},
    )

    commands = [
        [("transfer", "alice", "bob", 30), ("transfer", "alice", "carol", 20)],
        [("transfer", "bob", "carol", 40), ("transfer", "carol", "alice", 5)],
        [("transfer", "carol", "bob", 10), ("transfer", "bob", "alice", 15)],
    ]

    result = rsm.run(commands, scheduler=RandomScheduler(seed=2024))

    print(f"protocol: {rsm.protocol.describe()}  "
          f"(repeated consensus: exactly n = {rsm.n} registers, "
          "Theorems 2 + 8)")
    print(f"\nexecution: {result.execution.steps} steps, "
          f"{result.slots} slots agreed\n")
    print("agreed log:")
    for slot, command in enumerate(result.log, start=1):
        print(f"  slot {slot}: {command}")
    if result.rejected:
        print("\nlosing proposals (their submitters adopted the winners):")
        for pid, command in result.rejected:
            print(f"  replica {pid}: {command}")
    print(f"\nfinal replicated state: {result.final_state}")
    total = sum(result.final_state.values())
    assert total == 160, "money must be conserved"
    print(f"conservation check: total = {total} ✓")

    # ---- the Herlihy-faithful mode: losing commands are re-proposed ----
    print("\nadaptive mode (dynamic workloads; no transaction is dropped):")
    adaptive = rsm.run_adaptive(commands, scheduler=RandomScheduler(seed=7))
    assert adaptive.rejected == ()
    assert len(adaptive.log) == sum(len(c) for c in commands)
    print(f"  {len(adaptive.log)} transactions agreed across "
          f"{adaptive.slots} consensus instances "
          f"({adaptive.execution.steps} steps)")
    print(f"  final replicated state: {adaptive.final_state}")
    assert sum(adaptive.final_state.values()) == 160


if __name__ == "__main__":
    main()
