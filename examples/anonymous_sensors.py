#!/usr/bin/env python3
"""Anonymous sensor fusion with Figure 5, including starvation rescue.

Scenario: a fleet of identical, unnumbered sensors (no serial numbers, no
identifiers — anonymity is the whole point) repeatedly agrees on at most
``k`` representative readings per measurement round, so downstream
consumers see a bounded set of values instead of one per sensor.

This uses the paper's anonymous repeated algorithm (Figure 5), which costs
``(m+1)(n−k) + m² + 1`` registers (Theorem 11), and demonstrates the
algorithm's signature trick: on a *non-blocking* anonymous snapshot, a
sensor whose scans are perpetually invalidated by a chattier one still
finishes each round by polling the shared output register ``H``.

Run:  python examples/anonymous_sensors.py
"""

from repro import AnonymousRepeatedSetAgreement, System, run
from repro.objects import implemented_snapshot_layout
from repro.runtime.events import DecideEvent
from repro.sched import CyclicScheduler, EventuallyBoundedScheduler, \
    RandomScheduler, phases
from repro.spec import assert_execution_safe


def fused_rounds(execution, rounds):
    for t in range(1, rounds + 1):
        readings = sorted(set(execution.instance_outputs(t)))
        yield t, readings


def main() -> None:
    n, m, k, rounds = 4, 1, 2, 3
    protocol = AnonymousRepeatedSetAgreement(n=n, m=m, k=k)
    print(f"protocol: {protocol.describe()}  "
          f"(anonymous; {(m+1)*(n-k) + m*m + 1} registers, Theorem 11)")

    # Each sensor proposes its raw reading per round; globally they differ.
    readings = [
        [f"{21.0 + s * 0.3 + r:.1f}C" for r in range(rounds)]
        for s in range(n)
    ]
    system = System(protocol, workloads=readings)
    scheduler = EventuallyBoundedScheduler(
        survivors=[0], prelude_steps=150, prelude=RandomScheduler(seed=7)
    )
    execution = run(system, scheduler, max_steps=200_000)
    assert_execution_safe(execution, k=k)

    print(f"\nfusion run: {execution.steps} steps")
    for t, fused in fused_rounds(execution, rounds):
        print(f"  round {t}: fused readings {fused} (<= k = {k})")

    # ---- starvation rescue on the register-level non-blocking snapshot ----
    print("\nstarvation rescue (non-blocking snapshot substrate):")
    protocol = AnonymousRepeatedSetAgreement(n=2, m=1, k=1)
    layout = implemented_snapshot_layout(protocol, "anonymous-double-collect")
    system = System(
        protocol,
        workloads=[[f"{20 + t}.0C" for t in range(50)], ["23.5C"]],
        layout=layout,
    )
    # Sensor 0 streams rounds; sensor 1 gets 4 steps per 20 of sensor 0's —
    # its double-collect scans never stabilize.
    scheduler = CyclicScheduler(phases([0] * 20, [1] * 4))
    execution = run(
        system, scheduler, max_steps=200_000,
        stop=lambda config, events: len(config.procs[1].outputs) >= 1,
    )
    assert_execution_safe(execution, k=1)
    decide = next(e for e in execution.events
                  if isinstance(e, DecideEvent) and e.pid == 1)
    thread = "H-poll thread" if decide.thread == 1 else "snapshot loop"
    print(f"  starved sensor decided {decide.output!r} via the {thread} "
          f"after {execution.steps} total steps")
    assert decide.thread == 1, "expected the register-H rescue path"


if __name__ == "__main__":
    main()
