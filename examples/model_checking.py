#!/usr/bin/env python3
"""Model checking the paper's algorithm — and breaking it on purpose.

The library's explorer enumerates *every* execution of a small instance.
This example:

1. exhaustively verifies Figure 3's one-shot consensus at n = 2 (its full
   reachable configuration space), with the partial-order reduction on;
2. removes one snapshot component and lets the explorer find a concrete
   interleaving that makes two processes decide differently;
3. replays the witness schedule and renders it as a space-time diagram —
   a picture of the paper's lower-bound intuition: with too few registers,
   one process's evidence can be overwritten before anyone else sees it.

Run:  python examples/model_checking.py
"""

from repro import OneShotSetAgreement, System, replay
from repro.explore import explore_safety
from repro.spec.properties import check_k_agreement
from repro.trace import space_time_diagram


def main() -> None:
    # 1. Nominal: r = n+2m-k = 3 components. Exhaustively safe.
    nominal = System(
        OneShotSetAgreement(n=2, m=1, k=1),
        workloads=[["red"], ["blue"]],
    )
    result = explore_safety(nominal, k=1, reduction="local-first")
    print("nominal (3 components):", result.summary())
    assert result.complete and result.ok

    # 2. Starved: 2 components. The explorer finds a violation.
    starved = System(
        OneShotSetAgreement(n=2, m=1, k=1, components=2),
        workloads=[["red"], ["blue"]],
    )
    result = explore_safety(starved, k=1)
    print("starved (2 components):", result.summary())
    witness = result.safety_violations[0]
    print(f"witness: {witness.detail}; schedule {list(witness.schedule)}")

    # 3. Replay and draw it.
    execution = replay(starved, witness.schedule)
    violations = check_k_agreement(execution, k=1)
    assert violations, "the witness must reproduce the violation"
    print("\nthe violating execution, step by step:")
    print(space_time_diagram(execution))
    print(f"\noutputs: p0 -> {execution.config.procs[0].outputs}, "
          f"p1 -> {execution.config.procs[1].outputs}")
    print("two different consensus outputs — k-Agreement broken, exactly "
          "as Theorem 2 predicts below n+m-k registers.")


if __name__ == "__main__":
    main()
