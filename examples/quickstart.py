#!/usr/bin/env python3
"""Quickstart: solve k-set agreement among simulated asynchronous processes.

This walks the core public API end to end:

1. build a protocol — Figure 3 of the paper, m-obstruction-free k-set
   agreement using a snapshot of n+2m−k components;
2. wrap it in a ``System`` with one proposal per process;
3. run it under an adversary (scheduler) of your choice;
4. check the paper's correctness properties on the resulting execution.

Run:  python examples/quickstart.py
"""

from repro import (
    OneShotSetAgreement,
    RoundRobinScheduler,
    EventuallyBoundedScheduler,
    RandomScheduler,
    System,
    run,
)
from repro.spec import assert_execution_safe, execution_stats


def main() -> None:
    n, m, k = 5, 2, 3  # five processes, any three values may win,
    #                    termination guaranteed while <= 2 keep running

    protocol = OneShotSetAgreement(n=n, m=m, k=k)
    print(f"protocol: {protocol.describe()}")
    print(f"snapshot components (n+2m-k): {protocol.components}")

    # Each process proposes its own flavour.
    flavours = ["vanilla", "chocolate", "pistachio", "mango", "stracciatella"]
    system = System(protocol, workloads=[[f] for f in flavours])
    print(f"registers provisioned: {system.layout.register_count()}")

    # A fair scheduler happens to let everyone finish here; the *guarantee*
    # however only kicks in once at most m processes keep taking steps,
    # which EventuallyBoundedScheduler models directly.
    execution = run(system, RoundRobinScheduler(), max_steps=50_000)
    assert_execution_safe(execution, k=k)

    outputs = execution.instance_outputs(1)
    print(f"\nround-robin run: {execution.steps} steps")
    for pid, flavour in enumerate(flavours):
        decided = execution.config.procs[pid].outputs
        print(f"  p{pid} proposed {flavour!r:16} decided {decided[0]!r}")
    print(f"distinct outputs: {sorted(set(outputs))} (k = {k})")

    # Same system under a hostile prelude, then an m-bounded tail: the two
    # survivors must finish no matter how messy the prelude was.
    survivors = [1, 4]
    scheduler = EventuallyBoundedScheduler(
        survivors=survivors, prelude_steps=200, prelude=RandomScheduler(seed=42)
    )
    execution = run(System(protocol, workloads=[[f] for f in flavours]),
                    scheduler, max_steps=100_000)
    assert_execution_safe(execution, k=k)
    stats = execution_stats(execution)
    print(f"\nadversarial run: {stats.total_steps} steps, "
          f"{stats.memory_steps} memory accesses, "
          f"{stats.registers_written} registers written")
    for pid in survivors:
        print(f"  survivor p{pid} decided "
              f"{execution.config.procs[pid].outputs[0]!r}")


if __name__ == "__main__":
    main()
