#!/usr/bin/env python3
"""Adversary playground: schedulers, substrates, and a procedural protocol.

Three vignettes on the simulation runtime itself:

1. how the *same* protocol behaves under increasingly hostile adversaries
   (round-robin, seeded random, writer-priority, crash);
2. what implementing the snapshot from real registers costs — the same
   run, step-counted on four substrates;
3. writing a quick one-off protocol as a plain generator function
   (``ProceduralProtocol``) instead of a state machine.

Run:  python examples/adversary_playground.py
"""

from repro import (
    CrashScheduler,
    OneShotSetAgreement,
    RandomScheduler,
    RoundRobinScheduler,
    System,
    WriterPriorityScheduler,
    run,
)
from repro.bench.workloads import distinct_inputs
from repro.memory.layout import snapshot_layout
from repro.memory.ops import ScanOp, UpdateOp
from repro.objects import implemented_snapshot_layout
from repro.runtime.procedural import ProceduralProtocol
from repro.sched import EventuallyBoundedScheduler
from repro.spec import assert_execution_safe, execution_stats


def adversary_vignette() -> None:
    print("=== 1. adversary severity (Figure 3, n=6, m=1, k=2) ===")
    n, m, k = 6, 1, 2
    adversaries = {
        "round-robin": RoundRobinScheduler(),
        "random": RandomScheduler(seed=13),
        "writer-priority": WriterPriorityScheduler(),
        "crash-3-of-6": CrashScheduler(
            crashes={0: 30, 1: 50, 2: 70}, base=RandomScheduler(seed=13)
        ),
    }
    for name, prelude in adversaries.items():
        system = System(OneShotSetAgreement(n=n, m=m, k=k),
                        workloads=distinct_inputs(n))
        scheduler = EventuallyBoundedScheduler(
            survivors=[5], prelude_steps=120, prelude=prelude
        )
        execution = run(system, scheduler, max_steps=300_000)
        assert_execution_safe(execution, k=k)
        print(f"  {name:16} survivor decided "
              f"{execution.config.procs[5].outputs[0]!r} "
              f"after {execution.steps} total steps")


def substrate_vignette() -> None:
    print("\n=== 2. snapshot substrates (same protocol, same adversary) ===")
    for kind in ("atomic", "double-collect", "wait-free", "swmr"):
        protocol = OneShotSetAgreement(n=5, m=1, k=2)
        layout = implemented_snapshot_layout(protocol, kind)
        system = System(protocol, workloads=distinct_inputs(5), layout=layout)
        scheduler = EventuallyBoundedScheduler(
            survivors=[0], prelude_steps=60, prelude=RandomScheduler(seed=6)
        )
        execution = run(system, scheduler, max_steps=2_000_000)
        assert_execution_safe(execution, k=2)
        stats = execution_stats(execution)
        print(f"  {kind:24} {layout.register_count():2d} registers, "
              f"{stats.memory_steps:5d} memory steps")


def procedural_vignette() -> None:
    print("\n=== 3. a procedural one-off: racy max-finder ===")

    def max_finder(ctx, value):
        """Everyone publishes, scans, and decides the max seen (no
        agreement guarantee — just a demo of the generator API)."""
        yield UpdateOp("A", ctx.pid, value)
        scan = yield ScanOp("A")
        return max((v for v in scan if isinstance(v, int)), default=value)

    protocol = ProceduralProtocol(
        max_finder, layout=snapshot_layout("A", 3), name="max-finder"
    )
    system = System(protocol, workloads=[[3], [11], [7]])
    execution = run(system, RoundRobinScheduler(), max_steps=1_000)
    print(f"  inputs 3, 11, 7 -> decisions "
          f"{[p.outputs[0] for p in execution.config.procs]}")


def main() -> None:
    adversary_vignette()
    substrate_vignette()
    procedural_vignette()


if __name__ == "__main__":
    main()
