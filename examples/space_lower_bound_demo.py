#!/usr/bin/env python3
"""Watch the lower-bound proofs run: covering (Thm 2) and clones (Lemma 9).

Both of the paper's lower-bound arguments are *constructive*: given an
algorithm with too few registers, they build a concrete execution that
violates k-Agreement.  This library implements the constructions; this
example aims them at the paper's own algorithms, deliberately
under-provisioned, and prints the play-by-play.

Run:  python examples/space_lower_bound_demo.py
"""

from repro import RepeatedSetAgreement, System
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.workloads import distinct_inputs
from repro.lowerbounds import covering_construction
from repro.lowerbounds.bounds import figure1_table
from repro.lowerbounds.cloning import lemma9_glue


def covering_demo() -> None:
    n, m, k = 4, 1, 2
    bound = n + m - k
    attacked = bound - 1
    print(f"=== Theorem 2 covering construction ===")
    print(f"n={n}, m={m}, k={k}: repeated set agreement needs >= {bound} "
          f"registers; attacking Figure 4 with only {attacked}.\n")

    protocol = RepeatedSetAgreement(n=n, m=m, k=k, components=attacked)
    system = System(protocol, workloads=distinct_inputs(n, instances=12))
    result = covering_construction(system, m=m, k=k)
    for line in result.narrative:
        print(f"  {line}")
    print(f"\n  => {result.summary()}")
    assert result.success


def clone_demo() -> None:
    k = 1
    print(f"\n=== Lemma 9 clone glue (anonymous) ===")
    print(f"k={k}: gluing {k+1} solo runs of the anonymous one-shot "
          "algorithm, under-provisioned to 2 registers.\n")

    def factory(n):
        return AnonymousOneShotSetAgreement(n=n, m=1, k=k, components=2)

    result = lemma9_glue(factory, k=k, inputs=["hot", "cold"])
    for line in result.narrative:
        print(f"  {line}")
    print(f"\n  => {result.summary()}")
    assert result.success


def main() -> None:
    covering_demo()
    clone_demo()
    print("\n=== Figure 1 for the covering demo's parameters ===")
    for cell, bound in figure1_table(4, 1, 2).items():
        print(f"  {cell:35} {bound}")


if __name__ == "__main__":
    main()
