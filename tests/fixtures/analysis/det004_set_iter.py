"""Seeded DET004 violations: set iteration order leaking into output."""


def first_preference(values: list):
    """Iterating a set comprehension: order is PYTHONHASHSEED-dependent."""
    for value in {v for v in values}:
        return value
    return None


def union_order(left: list, right: set) -> list:
    """A set-algebra result iterated without sorting."""
    return [value for value in set(left) | right]
