"""Seeded MUT002 violation: a mutable dataclass in state-module position."""

from dataclasses import dataclass


@dataclass
class LeakyState:
    """Not frozen: aliased references can be mutated after fingerprinting."""

    value: int
    tag: str
