"""Seeded DET003 violation: object identity as a key."""


def identity_key(frame: object) -> int:
    """id() differs between interpreter processes; replay diverges."""
    return id(frame)
