"""Seeded MUT001 violations: mutating state a caller still holds."""


def zero_counter(config) -> None:
    """Assigns through a parameter: the caller's value changes under it."""
    config.steps = 0


def force_write(frame, value) -> None:
    """object.__setattr__ bypasses frozen-dataclass protection."""
    object.__setattr__(frame, "slot", value)
