"""Seeded CONC003 violation: a bare write-mode open on a shared path.

No lock is held and neither ``os.fsync`` nor ``os.replace`` appears in
the function — a concurrent reader can observe the file half-written.
"""


def publish_status(path: str, status: str) -> None:
    """Writes the shared status file in place, unprotected."""
    with open(path, "w") as handle:
        handle.write(status)
