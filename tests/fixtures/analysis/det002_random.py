"""Seeded DET002 violations: global RNG use and an unseeded Random()."""

import random
from random import Random


def pick(candidates: list):
    """Draws from the shared global RNG — differs across processes."""
    return random.choice(candidates)


def fresh_rng() -> Random:
    """Random() with no seed argument is seeded from the OS."""
    return Random()
