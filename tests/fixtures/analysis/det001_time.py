"""Seeded DET001 violation: a wall-clock read in step-path-shaped code."""

import time


def stamp_step(event: dict) -> dict:
    """Attaches a wall-clock timestamp — replay would diverge."""
    return {**event, "at": time.time()}
