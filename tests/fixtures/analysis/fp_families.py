"""Broken algorithm shells for the static footprint checker's tests.

Each class mirrors the real ``SetAgreementAutomaton`` surface the checker
walks (``nominal_components`` / ``default_layout`` / op construction) but
seeds exactly one FP* violation.  The classes are shells — never
instantiated, never stepped; the checker only parses them.
"""

from repro.agreement.base import SNAPSHOT
from repro.memory.layout import merge_layouts, register_layout, snapshot_layout
from repro.memory.ops import ScanOp, UpdateOp, WriteOp


def mystery_layout(name: str):
    """An allocation helper the footprint walker does not know (FP003)."""
    return register_layout(name, 1)


class RegressedSetAgreement:
    """FP001: one register more than the Figure 1 contract allows."""

    def nominal_components(self):
        """n + 2m - k + 1: a classic off-by-one space regression."""
        return self.n + 2 * self.m - self.k + 1

    def default_layout(self):
        """Snapshot sized by the (regressed) component count."""
        return snapshot_layout(SNAPSHOT, self.components)

    def observe(self):
        """A legitimate access to the declared snapshot."""
        return ScanOp(SNAPSHOT)


class UndeclaredAccessSetAgreement:
    """FP002: writes an object its layout never allocates."""

    def nominal_components(self):
        """The correct Figure 3/4 count."""
        return self.n + 2 * self.m - self.k

    def default_layout(self):
        """Declares only the snapshot..."""
        return snapshot_layout(SNAPSHOT, self.components)

    def announce(self, preference):
        """...but also posts to an undeclared register bank Z."""
        UpdateOp(SNAPSHOT, 0, preference)
        return WriteOp("Z", 0, preference)


class OpaqueAllocationSetAgreement:
    """FP003: allocates through a helper the checker cannot account."""

    def nominal_components(self):
        """The trivial n-register count."""
        return self.n

    def default_layout(self):
        """merge with an opaque helper: refuse to under-count silently."""
        return merge_layouts(
            snapshot_layout(SNAPSHOT, self.components),
            mystery_layout("X"),
        )
