"""Fixture modules for the ``repro analyze`` rule tests.

``known_good`` is a near-miss gauntlet: code that *looks* like each
hazard but is deterministic, and must produce zero findings.  Each
``det*``/``mut*`` module seeds exactly one rule violation;
``suppressed`` carries a real violation silenced by the documented
``# repro: allow(...)`` comment; ``fp_families`` defines deliberately
broken algorithm shells for the footprint checker (an extra-register
regression, an undeclared access, an opaque allocation).

These modules are linted as *files* (AST only) — nothing imports the
``det*``/``mut*`` ones, so their hazards never execute.
"""
