"""A real DET001 violation silenced by the documented suppression comment."""

import time


def wall_deadline(seconds: float) -> float:
    """Deadline arithmetic is allowed to read the clock, explicitly."""
    return time.time() + seconds  # repro: allow(DET001)


def wall_start() -> float:
    """Same suppression, own-line form (covers the line below)."""
    # repro: allow(DET001)
    return time.time()
