"""Seeded CONC002 violation: an ad-hoc class crossing the pool boundary.

``Payload`` transits pickling via the worker's parameter annotation but
is neither a frozen+slots dataclass nor does it define a reduction
protocol — default pickling ships its whole mutable ``__dict__``.
"""


class Payload:
    """Ad-hoc mutable bag; no __reduce__, no __getstate__/__setstate__."""

    def __init__(self, values: list) -> None:
        self.values = list(values)
        self.cursor = 0


def _consume(payload: Payload) -> int:
    """Pool worker entry point taking the ad-hoc class as its argument."""
    return len(payload.values)


def run(pool, payloads: list) -> list:
    """Coordinator: ships ``_consume`` (and so ``Payload``) to workers."""
    return pool.map(_consume, payloads)
