"""Seeded DET005 violations: ambient-environment reads."""

import os


def ambient_seed() -> str:
    """os.environ read inside step-path-shaped code."""
    return os.environ["REPRO_SEED"]


def entropy() -> bytes:
    """os.urandom is nondeterministic by definition."""
    return os.urandom(8)
