"""Near-miss gauntlet: hazard-shaped code that is actually deterministic.

Every pattern here sits just on the allowed side of a lint rule; the
known-good test asserts this module produces zero findings under
``--all-rules``.
"""

from dataclasses import dataclass, replace
from random import Random


@dataclass(frozen=True, slots=True)
class GoodState:
    """Frozen, slotted: the required shape for state dataclasses."""

    ident: int
    label: str


def seeded_stream(seed: int, length: int) -> list:
    """random.Random with an injected seed is fine (DET002 near-miss)."""
    rng = Random(seed)
    return [rng.random() for _ in range(length)]


def ordered_union(left: frozenset, right: frozenset) -> list:
    """Set algebra consumed through sorted() is fine (DET004 near-miss)."""
    return sorted(left | right)


def set_cardinality(values: list) -> int:
    """Constructing a set for len/membership is fine (DET004 near-miss)."""
    return len({value for value in values})


def stable_key(state: GoodState) -> int:
    """An attribute named ``id`` is not the id() builtin (DET003 near-miss)."""
    return state.ident


def advance(state: GoodState) -> GoodState:
    """replace() builds a new value instead of mutating (MUT001 near-miss)."""
    return replace(state, ident=state.ident + 1)


def timestamp_field(record: dict) -> object:
    """Reading a key called 'time' is not a clock read (DET001 near-miss)."""
    return record["time"]
