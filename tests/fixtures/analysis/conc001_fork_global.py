"""Seeded CONC001 violation: a worker-reachable write to a module global.

``_memo`` is inherited by every forked pool worker; each worker's copy
then diverges silently as ``_expand`` populates it.
"""

_memo = {}


def _expand(item: int) -> int:
    """Pool worker entry point (submitted below) writing a shared global."""
    if item not in _memo:
        _memo[item] = item * item
    return _memo[item]


def run(pool, items: list) -> list:
    """Coordinator: ships ``_expand`` across the pool boundary."""
    return pool.map(_expand, items)
