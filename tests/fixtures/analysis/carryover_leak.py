"""Regression: a trailing allow must not leak onto the following line."""

import time
t0 = time.time()  # repro: allow(DET001)
t1 = time.time()
