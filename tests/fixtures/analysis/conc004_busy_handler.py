"""Seeded CONC004 violation: a signal handler doing more than flag-setting.

The registered handler prints (stream I/O can deadlock inside a handler
that interrupted a write to the same stream) and acquires a lock (fatal
if the interrupted code already holds it).
"""

import signal
import threading

_lock = threading.Lock()


def _handler(signum, frame) -> None:
    """Registered below; does allocation-heavy, lock-taking work."""
    print("terminating")
    _lock.acquire()


def install() -> None:
    """Registers the busy handler for SIGTERM."""
    signal.signal(signal.SIGTERM, _handler)
