"""Seeded CONC005 violations: allow comments that have rotted.

The first suppresses a rule that fires nowhere near it; the second
names a rule ID that does not exist in the catalog.
"""


def add_one(x: int) -> int:
    """No DET001 finding on this line, so the allow is stale."""
    return x + 1  # repro: allow(DET001)


def double(y: int) -> int:
    """Names an unknown rule ID."""
    return y * 2  # repro: allow(ZZZ999)
