"""Seeded MUT003 violation: frozen but without slots=True."""

from dataclasses import dataclass


@dataclass(frozen=True)
class AlmostGoodState:
    """Frozen but unslotted: stray attribute creation succeeds silently."""

    value: int
