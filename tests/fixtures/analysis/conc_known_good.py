"""False-positive regression shells, one per concurrency pass.

Every function here sits just on the allowed side of a CONC rule; the
known-good test asserts this module produces zero findings even with
``all_rules=True``.
"""

import fcntl
import os
import signal
from dataclasses import dataclass

_limit = 100


@dataclass(frozen=True, slots=True)
class FrozenUnit:
    """The required boundary shape: frozen+slots (CONC002 near-miss)."""

    ident: int
    label: str


class ReducibleUnit:
    """Ad-hoc class made boundary-safe by a reduction (CONC002 near-miss)."""

    def __init__(self, ident: int = 0) -> None:
        self.ident = ident
        self.scratch = []

    def __reduce__(self):
        return (ReducibleUnit, (self.ident,))


def _expand(unit: FrozenUnit) -> int:
    """Worker that only *reads* a module global (CONC001 near-miss)."""
    return min(unit.ident, _limit)


def _consume(unit: ReducibleUnit) -> int:
    """Worker whose boundary type carries its own reduction."""
    cache = {}
    cache[unit.ident] = unit.ident  # a local, not a global (CONC001 near-miss)
    return cache[unit.ident]


def run(pool, frozen_units: list, reducible_units: list) -> list:
    """Coordinator: both boundary types are pickle-disciplined."""
    return pool.map(_expand, frozen_units) + pool.map(_consume, reducible_units)


def sealed_write(path: str, payload: str) -> None:
    """The sanctioned sealed pattern: write -> fsync -> rename."""
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def locked_append(path: str, record: str) -> None:
    """The sanctioned flock discipline: the lock is taken in-function."""
    with open(path, "a") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        handle.write(record)


def justified_write(path: str) -> None:
    """A real CONC003 finding silenced by a justified allow — the CONC005
    audit must see this annotation as *used*, not stale."""
    # Single-writer debug artifact, never read concurrently.
    # repro: allow(CONC003)
    open(path, "w").close()


_terminated = False


def _flag_handler(signum, frame) -> None:
    """A disciplined handler: sets a flag, closes an fd (CONC004 near-miss)."""
    global _terminated
    _terminated = True
    os.close(0)


def install() -> None:
    """Registers the disciplined handler."""
    signal.signal(signal.SIGTERM, _flag_handler)
