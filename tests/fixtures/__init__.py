"""Static fixture trees consumed by tests (not test modules themselves)."""
