"""Negative results: naive 2-register (n−1)-set agreement candidates fail.

The paper's §7 notes that the DFGR'13 algorithm [4] solves k = n−1 with
*two* registers — below what Figure 3's analysis supports — and its title
calls the technique "black art".  Our baseline reconstruction (DESIGN.md
§2) therefore refuses k = n−1.  This module documents *why* that corner is
hard: three natural straw-man algorithms for the k = n−1 / two-register
regime, each refuted by the exhaustive model checker within milliseconds,
witness schedules included.

The straw men (all obstruction-free by construction):

* ``WriteBothVerify`` — publish to Y then X, re-read both, decide own value
  when both reads return it.  Fails to the *sandwich*: a late solo process
  overwrites both registers and legitimately sees only itself.
* ``ReadFirst`` — same, but read Y before the first write and adopt.  Fails
  when both processes read early (⊥) and then run complete passes back to
  back.
* ``InterleavedReads`` — write Y, read X, write X, read Y, with value-based
  adoption.  Fails to a stale-own-value confirmation: a process adopts,
  flips back on its own old X write, and certifies a pass on registers
  holding only its stale values.

These tests pin the refutations (and the witnesses' replayability) so the
straw men stay dead; anyone attempting a faithful [4] reconstruction can
start from here.
"""

from dataclasses import dataclass, replace
from typing import Optional

import pytest

from repro._types import Params, Value, is_bot
from repro.errors import ProtocolViolation
from repro.memory.layout import BankSpec, MemoryLayout, PrimitiveBinding
from repro.memory.ops import ReadOp, WriteOp
from repro.runtime.automaton import Decide, ProtocolAutomaton
from repro.runtime.runner import replay
from repro.runtime.system import System
from repro.explore import explore_safety
from repro.spec.properties import check_k_agreement


@dataclass(frozen=True)
class _S:
    pref: Value
    phase: str
    decision: Optional[Value] = None


class _TwoRegisterBase(ProtocolAutomaton):
    """Shared scaffolding: two MWMR registers X and Y."""

    n_threads = 1

    def __init__(self, n: int) -> None:
        super().__init__(Params(n=n, m=1, k=n - 1))
        self.n = n

    def default_layout(self) -> MemoryLayout:
        return MemoryLayout(
            (BankSpec("X__bank", 1), BankSpec("Y__bank", 1)),
            {
                "X": PrimitiveBinding("registers", "X__bank"),
                "Y": PrimitiveBinding("registers", "Y__bank"),
            },
        )

    def begin(self, ctx, persistent, value, invocation):
        return (_S(pref=value, phase=self.initial_phase),)


class WriteBothVerify(_TwoRegisterBase):
    name = "straw-write-both-verify"
    initial_phase = "wy"

    def pending(self, ctx, thread, st):
        ops = {
            "wy": WriteOp("Y", 0, (st.pref, ctx.identifier)),
            "wx": WriteOp("X", 0, (st.pref, ctx.identifier)),
            "ry": ReadOp("Y", 0),
            "rx": ReadOp("X", 0),
        }
        if st.phase in ops:
            return ops[st.phase]
        return Decide(output=st.decision, persistent=None)

    def apply(self, ctx, thread, st, resp):
        if st.phase == "wy":
            return replace(st, phase="wx")
        if st.phase == "wx":
            return replace(st, phase="ry")
        if st.phase == "ry":
            if not is_bot(resp) and resp == (st.pref, ctx.identifier):
                return replace(st, phase="rx")
            return _S(pref=resp[0], phase="wy")
        if st.phase == "rx":
            if not is_bot(resp) and resp == (st.pref, ctx.identifier):
                return replace(st, phase="dec", decision=st.pref)
            return _S(pref=resp[0], phase="wy")
        raise ProtocolViolation(st.phase)


class ReadFirst(WriteBothVerify):
    name = "straw-read-first"
    initial_phase = "r0"

    def pending(self, ctx, thread, st):
        if st.phase == "r0":
            return ReadOp("Y", 0)
        return super().pending(ctx, thread, st)

    def apply(self, ctx, thread, st, resp):
        if st.phase == "r0":
            if not is_bot(resp):
                return _S(pref=resp[0], phase="wy")
            return replace(st, phase="wy")
        return super().apply(ctx, thread, st, resp)


class InterleavedReads(_TwoRegisterBase):
    name = "straw-interleaved-reads"
    initial_phase = "wy"

    def pending(self, ctx, thread, st):
        ops = {
            "wy": WriteOp("Y", 0, (st.pref, ctx.identifier)),
            "rx": ReadOp("X", 0),
            "wx": WriteOp("X", 0, (st.pref, ctx.identifier)),
            "ry": ReadOp("Y", 0),
        }
        if st.phase in ops:
            return ops[st.phase]
        return Decide(output=st.decision, persistent=None)

    def apply(self, ctx, thread, st, resp):
        if st.phase == "wy":
            return replace(st, phase="rx")
        if st.phase == "rx":
            if not is_bot(resp) and resp[0] != st.pref:
                return _S(pref=resp[0], phase="wy")
            return replace(st, phase="wx")
        if st.phase == "wx":
            return replace(st, phase="ry")
        if st.phase == "ry":
            if not is_bot(resp) and resp[0] == st.pref:
                return replace(st, phase="dec", decision=st.pref)
            if not is_bot(resp):
                return _S(pref=resp[0], phase="wy")
            return _S(pref=st.pref, phase="wy")
        raise ProtocolViolation(st.phase)


STRAW_MEN = [WriteBothVerify, ReadFirst, InterleavedReads]


@pytest.mark.parametrize("straw_cls", STRAW_MEN)
def test_straw_man_refuted_at_n2(straw_cls):
    """Each candidate already fails consensus (the n=2 face of k=n−1)."""
    system = System(straw_cls(2), workloads=[["a"], ["b"]])
    result = explore_safety(system, k=1, max_configs=500_000)
    assert result.safety_violations, (
        f"{straw_cls.name} unexpectedly survived — a 2-register consensus "
        "this simple would be a publishable surprise; check the checker"
    )


@pytest.mark.parametrize("straw_cls", STRAW_MEN)
def test_straw_man_witness_replays(straw_cls):
    system = System(straw_cls(2), workloads=[["a"], ["b"]])
    result = explore_safety(system, k=1, max_configs=500_000)
    witness = result.safety_violations[0]
    execution = replay(system, witness.schedule)
    assert check_k_agreement(execution, k=1)


def test_straw_men_are_obstruction_free():
    """The candidates fail on safety, not on progress: solo runs decide.

    (This is what makes them seductive straw men.)"""
    from repro.runtime.runner import run_solo

    for straw_cls in STRAW_MEN:
        system = System(straw_cls(3), workloads=[["a"], ["b"], ["c"]])
        execution = run_solo(system, 0, max_steps=1_000)
        assert execution.config.procs[0].outputs == ("a",)
