"""Determinism contracts of the telemetry subsystem.

Three guarantees, each load-bearing for the paper's reproducibility
claims (see ``docs/observability.md``):

* **Golden streams** — the same seeded workload emits byte-identical
  JSONL after normalizing the volatile section away, across repeated
  runs and across worker counts.
* **Observer neutrality** — running with telemetry on produces the
  bit-identical verdict (full ``dataclasses.asdict``, history fields
  included) as running with it off.  Instrumentation must never perturb
  the run it observes.
* **Footprint invariance** — the register-write footprint
  (``memory_steps`` / ``write_steps`` / ``registers_written``) is a
  function of the explored graph only: worker count, batch size, and
  interrupt/resume cannot change it, because each reachable edge is
  stepped exactly once no matter how the frontier is sharded.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import OneShotSetAgreement, System, telemetry
from repro.cli import main
from repro.durable.watchdog import Watchdog
from repro.explore import explore_safety
from repro.telemetry.schema import (
    SCHEMA_VERSION, normalized_stream, validate_stream,
)
from repro.telemetry.sinks import JsonlSink


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def make_system():
    return System(
        OneShotSetAgreement(n=3, m=1, k=2), workloads=[["a"], ["b"], ["c"]]
    )


def traced_explore(directory, **kwargs):
    """One telemetered exploration writing its stream to *directory*."""
    session = telemetry.start(
        command="explore", mode="jsonl", sinks=[JsonlSink(str(directory))],
        attrs={"schema": SCHEMA_VERSION, "n": 3, "m": 1, "k": 2},
    )
    try:
        result = explore_safety(
            make_system(), 2, max_configs=800, batch_size=32, **kwargs
        )
    finally:
        session.close(exit_code=0, verdict="ok")
    return result


class TestGoldenStreams:
    def test_repeated_runs_normalize_byte_identically(self, tmp_path):
        first = traced_explore(tmp_path / "first")
        telemetry.reset()
        second = traced_explore(tmp_path / "second")
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
        assert validate_stream(tmp_path / "first") == []
        assert normalized_stream(tmp_path / "first") == normalized_stream(
            tmp_path / "second"
        )

    def test_parallel_streams_are_golden_too(self, tmp_path):
        """Repeated workers=2 runs normalize identically: pool scheduling
        noise must never leak into the deterministic projection (chunk
        latencies are volatile; chunk counts and merge order are not).
        Across *different* worker counts the batch decomposition — and so
        the span sequence — legitimately differs; what is invariant there
        is the verdict, which is asserted in full.
        """
        first = traced_explore(tmp_path / "w2-first", workers=2)
        telemetry.reset()
        second = traced_explore(tmp_path / "w2-second", workers=2)
        telemetry.reset()
        serial = traced_explore(tmp_path / "w1", workers=1)
        assert normalized_stream(tmp_path / "w2-first") == normalized_stream(
            tmp_path / "w2-second"
        )
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
        assert dataclasses.asdict(first) == dataclasses.asdict(serial)

    def test_cli_streams_are_golden(self, tmp_path, capsys):
        argv = [
            "explore", "--protocol", "oneshot", "--n", "2", "--k", "1",
            "--max-configs", "200", "--telemetry", "jsonl",
        ]
        assert main(argv + ["--telemetry-dir", str(tmp_path / "a")]) == 0
        assert main(argv + ["--telemetry-dir", str(tmp_path / "b")]) == 0
        capsys.readouterr()
        assert validate_stream(tmp_path / "a") == []
        assert normalized_stream(tmp_path / "a") == normalized_stream(
            tmp_path / "b"
        )


class TestObserverNeutrality:
    def test_telemetry_on_vs_off_verdicts_are_bit_identical(self, tmp_path):
        plain = explore_safety(
            make_system(), 2, max_configs=800, batch_size=32
        )
        traced = traced_explore(tmp_path / "traced")
        assert dataclasses.asdict(plain) == dataclasses.asdict(traced)

    def test_footprint_is_computed_even_with_telemetry_off(self):
        assert telemetry.active() is None
        result = explore_safety(make_system(), 2, max_configs=800)
        assert result.memory_steps > 0
        assert result.write_steps > 0
        assert len(result.registers_written) > 0
        assert "footprint:" in result.footprint_summary()


class TestFootprintInvariance:
    def _footprint(self, result):
        return (
            result.memory_steps,
            result.write_steps,
            sorted(
                (c.bank, c.index) for c in result.registers_written
            ),
        )

    def test_invariant_across_workers_and_batch_sizes(self):
        baseline = explore_safety(make_system(), 2, max_configs=800)
        for kwargs in (
            {"workers": 2, "batch_size": 32},
            {"batch_size": 3},
            {"batch_size": 256},
        ):
            result = explore_safety(
                make_system(), 2, max_configs=800, **kwargs
            )
            assert self._footprint(result) == self._footprint(baseline)

    def test_invariant_across_interrupt_and_resume(self, tmp_path):
        baseline = explore_safety(make_system(), 2, max_configs=800)
        journal_dir = str(tmp_path / "journal")
        wd = Watchdog(deadline=1e-6)  # fires at the first batch boundary
        first_leg = explore_safety(
            make_system(), 2, max_configs=800, batch_size=32,
            journal_dir=journal_dir, watchdog=wd,
        )
        assert first_leg.interrupted == "deadline"
        assert first_leg.configs_explored < baseline.configs_explored
        resumed = explore_safety(
            make_system(), 2, max_configs=800, batch_size=32,
            journal_dir=journal_dir,
        )
        assert resumed.recovery is not None
        assert self._footprint(resumed) == self._footprint(baseline)

    def test_footprint_survives_the_cache_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = explore_safety(
            make_system(), 2, max_configs=800, cache_dir=cache_dir
        )
        cached = explore_safety(
            make_system(), 2, max_configs=800, cache_dir=cache_dir
        )
        assert self._footprint(cached) == self._footprint(first)
