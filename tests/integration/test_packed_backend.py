"""Bit-identity of the packed backend against the reference oracle.

``--backend=packed`` is only allowed to change *how fast* exploration
runs — never what it computes.  These tests pin that contract where it
could plausibly break (see ``docs/performance.md``):

* **Verdict identity** — full ``dataclasses.asdict`` equality of safety
  and progress results across backends, worker counts, and
  canonicalization.
* **Cross-backend resume** — both backends key caches and journals with
  the same packed fingerprints, so a run truncated under one backend
  resumes under the other without re-exploring anything.
* **CLI identity** — ``repro explore`` prints byte-identical output
  either way; the backend is invisible except in wall-clock.
* **Telemetry** — packed runs emit golden (normalized-byte-identical)
  streams, and the packed-only counters never perturb the verdict.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import OneShotSetAgreement, System, telemetry
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.cli import main
from repro.durable.watchdog import Watchdog
from repro.explore import explore_progress_closure, explore_safety
from repro.telemetry.schema import (
    SCHEMA_VERSION, normalized_stream, validate_stream,
)
from repro.telemetry.sinks import JsonlSink


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def make_system():
    return System(
        OneShotSetAgreement(n=3, m=1, k=2), workloads=[["a"], ["b"], ["c"]]
    )


def make_anonymous():
    return System(
        AnonymousOneShotSetAgreement(n=3, m=1, k=2), workloads=[["v"]] * 3
    )


def verdict(result):
    return dataclasses.asdict(result)


class TestVerdictIdentity:
    def test_safety_verdicts_are_bit_identical(self):
        reference = explore_safety(make_system(), 2, max_configs=800)
        packed = explore_safety(
            make_system(), 2, max_configs=800, backend="packed"
        )
        assert verdict(reference) == verdict(packed)

    def test_canonicalized_verdicts_are_bit_identical(self):
        reference = explore_safety(
            make_anonymous(), 2, max_configs=800, canonicalize=True
        )
        packed = explore_safety(
            make_anonymous(), 2, max_configs=800, canonicalize=True,
            backend="packed",
        )
        assert verdict(reference) == verdict(packed)

    def test_progress_closure_verdicts_are_bit_identical(self):
        reference = explore_progress_closure(
            make_system(), 1, max_configs=400, solo_budget=400, batch_size=32
        )
        packed = explore_progress_closure(
            make_system(), 1, max_configs=400, solo_budget=400, batch_size=32,
            backend="packed",
        )
        assert verdict(reference) == verdict(packed)

    def test_packed_workers_match_reference_serial(self):
        reference = explore_safety(
            make_system(), 2, max_configs=800, batch_size=32
        )
        packed = explore_safety(
            make_system(), 2, max_configs=800, batch_size=32,
            backend="packed", workers=2,
        )
        assert verdict(reference) == verdict(packed)

    def test_unsafe_counterexamples_are_bit_identical(self):
        # An under-provisioned instance is unsafe: the violation witness
        # and its schedule must match across backends exactly too.
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1, components=2),
            workloads=[["a"], ["b"]],
        )
        reference = explore_safety(system, 1)
        packed = explore_safety(system, 1, backend="packed")
        assert not reference.ok
        assert reference.safety_violations
        assert verdict(reference) == verdict(packed)


class TestCrossBackendResume:
    @pytest.mark.parametrize(
        "first,second",
        [("packed", "reference"), ("reference", "packed")],
        ids=["packed-then-reference", "reference-then-packed"],
    )
    def test_cache_truncation_resumes_across_backends(
        self, tmp_path, first, second
    ):
        uninterrupted = explore_safety(make_system(), 2, max_configs=800)
        cache_dir = str(tmp_path / "cache")
        truncated = explore_safety(
            make_system(), 2, max_configs=120, cache_dir=cache_dir,
            backend=first,
        )
        assert not truncated.complete
        resumed = explore_safety(
            make_system(), 2, max_configs=800, cache_dir=cache_dir,
            backend=second,
        )
        assert verdict(resumed) == verdict(uninterrupted)

    @pytest.mark.parametrize(
        "first,second",
        [("packed", "reference"), ("reference", "packed")],
        ids=["packed-then-reference", "reference-then-packed"],
    )
    def test_journal_interrupt_resumes_across_backends(
        self, tmp_path, first, second
    ):
        baseline = explore_safety(make_system(), 2, max_configs=800)
        journal_dir = str(tmp_path / "journal")
        interrupted = explore_safety(
            make_system(), 2, max_configs=800, batch_size=32,
            journal_dir=journal_dir, backend=first,
            watchdog=Watchdog(deadline=1e-6),
        )
        assert interrupted.interrupted == "deadline"
        resumed = explore_safety(
            make_system(), 2, max_configs=800, batch_size=32,
            journal_dir=journal_dir, backend=second,
        )
        assert resumed.recovery is not None
        assert resumed.configs_explored == baseline.configs_explored
        assert (resumed.memory_steps, resumed.write_steps) == (
            baseline.memory_steps, baseline.write_steps
        )

    def test_finished_packed_entry_served_to_reference_run(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        first = explore_safety(system, 1, cache_dir=cache_dir,
                               backend="packed")
        assert first.complete
        hit = explore_safety(system, 1, cache_dir=cache_dir)
        assert verdict(hit) == verdict(first)


class TestCliIdentity:
    ARGV = [
        "explore", "--protocol", "oneshot", "--n", "3", "--k", "2",
        "--max-configs", "400",
    ]

    def test_stdout_is_byte_identical_across_backends(self, capsys):
        assert main(self.ARGV + ["--backend", "reference"]) == 0
        reference_out = capsys.readouterr().out
        assert main(self.ARGV + ["--backend", "packed"]) == 0
        packed_out = capsys.readouterr().out
        assert packed_out == reference_out
        assert "footprint:" in packed_out

    def test_backend_default_is_reference(self, capsys):
        assert main(self.ARGV) == 0
        default_out = capsys.readouterr().out
        assert main(self.ARGV + ["--backend", "reference"]) == 0
        assert capsys.readouterr().out == default_out


class TestPackedTelemetry:
    def traced(self, directory, **kwargs):
        session = telemetry.start(
            command="explore", mode="jsonl",
            sinks=[JsonlSink(str(directory))],
            attrs={"schema": SCHEMA_VERSION, "n": 3, "m": 1, "k": 2},
        )
        try:
            result = explore_safety(
                make_system(), 2, max_configs=800, batch_size=32, **kwargs
            )
        finally:
            session.close(exit_code=0, verdict="ok")
        return result

    def test_packed_streams_are_golden(self, tmp_path):
        first = self.traced(tmp_path / "first", backend="packed")
        telemetry.reset()
        second = self.traced(tmp_path / "second", backend="packed")
        assert verdict(first) == verdict(second)
        assert validate_stream(tmp_path / "first") == []
        assert normalized_stream(tmp_path / "first") == normalized_stream(
            tmp_path / "second"
        )

    @staticmethod
    def stream_counters(directory):
        """The run-summary counters dict from a raw JSONL stream."""
        import json
        import pathlib

        for path in sorted(pathlib.Path(directory).glob("*.jsonl")):
            for line in path.read_text().splitlines():
                event = json.loads(line)
                counters = event.get("attrs", {}).get("counters")
                if counters:
                    return counters
        return {}

    def test_packed_counters_are_present_and_deterministic(self, tmp_path):
        self.traced(tmp_path / "first", backend="packed")
        telemetry.reset()
        self.traced(tmp_path / "second", backend="packed")
        first = self.stream_counters(tmp_path / "first")
        second = self.stream_counters(tmp_path / "second")
        assert first["explore.packed.configs_encoded"] > 0
        assert first["explore.packed.bytes_encoded"] > 0
        assert first == second

    def test_reference_streams_carry_no_packed_counters(self, tmp_path):
        self.traced(tmp_path / "reference")
        counters = self.stream_counters(tmp_path / "reference")
        assert counters
        assert not any(name.startswith("explore.packed") for name in counters)

    def test_telemetry_is_observer_neutral_under_packed(self, tmp_path):
        plain = explore_safety(
            make_system(), 2, max_configs=800, batch_size=32,
            backend="packed",
        )
        traced = self.traced(tmp_path / "traced", backend="packed")
        assert verdict(plain) == verdict(traced)
