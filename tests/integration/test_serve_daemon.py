"""Integration: the serve daemon against real process death and real load.

The two acceptance properties of the serving tentpole, asserted end to
end against actual subprocess daemons:

* **kill-and-resume** — ``SIGKILL`` the daemon (whole process group,
  nothing flushes) mid-job; a restart on the same data dir replays the
  journaled job and stores a verdict whose fingerprint is bit-identical
  to an uninterrupted execution's;
* **explicit backpressure, zero loss** — sustained submission past the
  queue bound yields busy responses carrying ``retry_after``, and every
  job that was *accepted* eventually has a stored verdict — accepted
  work is never dropped, refused work is never silently buffered.
"""

import os
import signal
import subprocess
import sys
import time

from repro.serve import client
from repro.serve.protocol import VerifyJob, verdict_fingerprint
from repro.serve.server import resolve_endpoint
from repro.serve.store import VerdictStore
from repro.serve.supervisor import execute_job


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return env


def start_daemon(data_dir, *extra):
    """Launch `repro serve` in its own process group; return the Popen."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--data-dir", str(data_dir), *extra],
        env=subprocess_env(), start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def wait_for_endpoint(data_dir, *, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            host, port = resolve_endpoint(data_dir)
        except Exception:
            time.sleep(0.05)
            continue
        try:
            client.status(host, port, timeout=2.0)
            return host, port
        except Exception:
            time.sleep(0.05)
    raise AssertionError(f"no live daemon under {data_dir}")


def killpg_hard(proc):
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass


class TestKillAndResume:
    def test_sigkill_mid_job_replay_is_bit_identical(self, tmp_path):
        data_dir = tmp_path / "serve"
        # Slow enough that the kill lands mid-execution, fast enough
        # that the replay finishes promptly.
        job = VerifyJob(mode="explore", max_configs=20_000)

        proc = start_daemon(data_dir)
        try:
            host, port = wait_for_endpoint(data_dir)
            accepted = client.verify(host, port, job.descriptor(),
                                     wait=False, timeout=10.0)
            assert accepted["ok"] is True and accepted["key"] == job.key
            # The accept response means the admit record is fsynced; give
            # the dispatcher a moment to be genuinely mid-job, then shoot
            # the whole group — daemon and pool worker, no finally blocks.
            time.sleep(1.0)
        finally:
            killpg_hard(proc)
        assert proc.wait(timeout=60) == -signal.SIGKILL
        # The dead daemon never finished: no verdict on disk.
        assert VerdictStore(data_dir / "store").get(job.key) is None

        resumed = start_daemon(data_dir, "--max-jobs", "1")
        try:
            assert resumed.wait(timeout=300) == 0
        finally:
            killpg_hard(resumed)

        entry = VerdictStore(data_dir / "store").get(job.key)
        assert entry is not None, "replayed job left no verdict"
        control = execute_job(job.descriptor())
        assert control["outcome"] in ("ok", "refuted")
        assert entry["fingerprint"] == verdict_fingerprint(control)
        assert entry["result"] == control


class TestBackpressureZeroLoss:
    def test_saturation_is_explicit_and_accepted_jobs_all_finish(
        self, tmp_path
    ):
        data_dir = tmp_path / "serve"
        jobs = [
            VerifyJob(mode="explore", max_configs=8_000, seed=i + 1)
            for i in range(6)
        ]
        proc = start_daemon(
            data_dir, "--queue-capacity", "2", "--retry-after", "0.2"
        )
        try:
            host, port = wait_for_endpoint(data_dir)
            accepted, busy_seen = {}, 0
            deadline = time.monotonic() + 240
            outstanding = list(jobs)
            while outstanding and time.monotonic() < deadline:
                job = outstanding[0]
                answer = client.verify(host, port, job.descriptor(),
                                       wait=False, timeout=10.0)
                if answer.get("ok"):
                    # accepted now, or already memoized from a prior loop
                    accepted[job.key] = answer
                    outstanding.pop(0)
                else:
                    assert answer["busy"] is True, answer
                    assert answer["retry_after"] == 0.2
                    assert answer["depth"] >= answer["capacity"] == 2
                    busy_seen += 1
                    time.sleep(answer["retry_after"])
            assert not outstanding, "submission never drained"
            assert busy_seen > 0, (
                "queue never saturated; make the jobs slower or the "
                "capacity smaller"
            )
            assert len(accepted) == len(jobs)

            # Zero accepted-job loss: every accepted key reaches a stored
            # verdict (the daemon is still running — poll the result op).
            deadline = time.monotonic() + 240
            unresolved = {job.key for job in jobs}
            while unresolved and time.monotonic() < deadline:
                for key in sorted(unresolved):
                    answer = client.result(host, port, key, timeout=10.0)
                    if answer.get("ok"):
                        assert answer["verdict"]["outcome"] in (
                            "ok", "refuted"
                        )
                        unresolved.discard(key)
                if unresolved:
                    time.sleep(0.2)
            assert not unresolved, f"accepted jobs lost: {unresolved}"

            polled = client.status(host, port, timeout=10.0)["status"]
            assert polled["queue"]["rejected"] == busy_seen
            assert polled["queue"]["accepted"] >= len(jobs) - 1
            assert polled["cache"]["entries"] == len(jobs)

            goodbye = client.shutdown(host, port, timeout=10.0)
            assert goodbye["ok"] is True
            assert proc.wait(timeout=60) == 0
        finally:
            killpg_hard(proc)


class TestGracefulSignals:
    def test_sigterm_exits_143(self, tmp_path):
        data_dir = tmp_path / "serve"
        proc = start_daemon(data_dir)
        try:
            wait_for_endpoint(data_dir)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 143
        finally:
            killpg_hard(proc)

    def test_restart_after_graceful_shutdown_serves_the_cache(self, tmp_path):
        """Verdicts survive daemon generations: a job verified by one
        daemon is a cache hit on the next."""
        data_dir = tmp_path / "serve"
        job = VerifyJob(mode="run", max_steps=500)
        proc = start_daemon(data_dir)
        try:
            host, port = wait_for_endpoint(data_dir)
            cold = client.verify(host, port, job.descriptor(), timeout=120.0)
            assert cold["ok"] is True and cold["cached"] is False
            client.shutdown(host, port, timeout=10.0)
            assert proc.wait(timeout=60) == 0
        finally:
            killpg_hard(proc)

        second = start_daemon(data_dir)
        try:
            host, port = wait_for_endpoint(data_dir)
            hit = client.verify(host, port, job.descriptor(), timeout=10.0)
            assert hit["ok"] is True and hit["cached"] is True
            assert hit["fingerprint"] == cold["fingerprint"]
            client.shutdown(host, port, timeout=10.0)
            assert second.wait(timeout=60) == 0
        finally:
            killpg_hard(second)
