"""Integration: the lower-bound constructions against the upper-bound
algorithms, cross-validated with the independent explorer.

The three pillars of the reproduction must agree with each other:

* the covering construction (Theorem 2) certifies violations exactly where
  the formula says algorithms cannot exist;
* the explorer independently finds violations at the same points;
* at nominal provisioning, neither can produce a certified violation.
"""

import pytest

from repro import OneShotSetAgreement, RepeatedSetAgreement, System
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.workloads import distinct_inputs
from repro.explore import explore_safety
from repro.lowerbounds import covering_construction
from repro.lowerbounds.bounds import repeated_lower_bound
from repro.lowerbounds.cloning import lemma9_glue
from repro.runtime.runner import replay


@pytest.mark.parametrize("n,m,k", [(3, 1, 1), (4, 1, 2), (4, 2, 2)])
def test_covering_agrees_with_formula(n, m, k):
    bound = repeated_lower_bound(n, m, k)
    system = System(
        RepeatedSetAgreement(n=n, m=m, k=k, components=bound - 1),
        workloads=distinct_inputs(n, instances=12),
    )
    result = covering_construction(system, m=m, k=k)
    assert result.success
    assert len(result.distinct_outputs) == k + 1


def test_covering_and_explorer_agree_on_smallest_case():
    """Both independent methods find the same fact: Figure 4 at 2 registers
    with (3,1,1) is unsafe."""
    system = System(
        RepeatedSetAgreement(n=3, m=1, k=1, components=2),
        workloads=distinct_inputs(3, instances=4),
    )
    covering = covering_construction(
        System(
            RepeatedSetAgreement(n=3, m=1, k=1, components=2),
            workloads=distinct_inputs(3, instances=12),
        ),
        m=1, k=1,
    )
    exploration = explore_safety(system, k=1, max_configs=150_000)
    assert covering.success
    assert exploration.safety_violations


def test_glue_and_explorer_agree_on_anonymous_case():
    def factory(n):
        return AnonymousOneShotSetAgreement(n=n, m=1, k=1, components=2)

    glue = lemma9_glue(factory, k=1, inputs=["a", "b"])
    assert glue.success

    system = System(factory(4), workloads=distinct_inputs(4))
    exploration = explore_safety(system, k=1, max_configs=250_000)
    assert exploration.safety_violations


def test_constructed_schedules_survive_cold_replay():
    """Schedules exported by the constructions must reproduce the violation
    on a freshly built system — nothing may depend on in-memory state."""
    n, m, k = 4, 1, 2

    def build():
        return System(
            RepeatedSetAgreement(n=n, m=m, k=k, components=2),
            workloads=distinct_inputs(n, instances=12),
        )

    result = covering_construction(build(), m=m, k=k)
    fresh = replay(build(), result.schedule)
    assert len(set(fresh.instance_outputs(result.target_instance))) >= k + 1


def test_nominal_oneshot_immune_to_exploration():
    system = System(OneShotSetAgreement(n=2, m=1, k=1),
                    workloads=distinct_inputs(2))
    result = explore_safety(system, k=1)
    assert result.complete and result.ok
