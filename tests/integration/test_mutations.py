"""Mutation testing the pseudocode: every condition is load-bearing.

Each mutant below weakens exactly one condition of the paper's algorithms;
the exhaustive checker refutes every one of them with a concrete witness.
This is the strongest fidelity evidence the suite offers: not only do the
algorithms as written pass, the *specific side conditions in the paper's
pseudocode are each necessary* — remove one and a small instance already
breaks.

| mutant | weakened condition | consequence |
|---|---|---|
| IgnoreBotOneShot   | Fig 3 line 9's "∀j, s[j] ≠ ⊥"            | k-Agreement |
| ThresholdOneShot   | Fig 3 line 9's "≤ m" → "≤ m+1"           | k-Agreement |
| StaleRepeated      | Fig 4 line 17's "no t' < t entries"      | Validity (cross-instance value leak) |
| IgnoreBotAnonymous | Fig 5 line 23's "every entry a t-tuple"  | k-Agreement |
| LowEllAnonymous    | Fig 5's ℓ = n+m−k → ℓ−1                  | k-Agreement |

(One further mutation — dropping Figure 3 line 11's "own pair only at i"
adoption guard — is *not* refuted by bounded exploration at n ≤ 4: its
necessity comes from the ℓ-counting at larger n, beyond exhaustive reach.
It is deliberately not asserted here.)
"""

from dataclasses import replace

import pytest

from repro import OneShotSetAgreement, RepeatedSetAgreement, System
from repro._types import is_bot
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.agreement.oneshot import DECIDED as OS_DECIDED
from repro.agreement.oneshot import first_duplicate_index
from repro.agreement.repeated import DECIDED as REP_DECIDED
from repro.bench.workloads import distinct_inputs
from repro.explore import explore_safety
from repro.runtime.runner import replay
from repro.spec.properties import check_safety


class IgnoreBotOneShot(OneShotSetAgreement):
    """Fig 3 line 9 without the no-⊥ requirement."""

    name = "mutant-oneshot-ignore-bot"

    def _after_scan(self, ctx, state, scan):
        nonbot = [e for e in scan if not is_bot(e)]
        if nonbot and len(set(nonbot)) <= self.m:
            j1 = first_duplicate_index(scan)
            pick = scan[j1] if j1 is not None else nonbot[0]
            return replace(state, phase=OS_DECIDED, decision=pick[0])
        return super()._after_scan(ctx, state, scan)


class ThresholdOneShot(OneShotSetAgreement):
    """Fig 3 line 9 with m+1 in place of m."""

    name = "mutant-oneshot-threshold"

    def _after_scan(self, ctx, state, scan):
        distinct = set(scan)
        if len(distinct) <= self.m + 1 and not any(is_bot(e) for e in scan):
            j1 = first_duplicate_index(scan)
            pick = scan[j1] if j1 is not None else scan[0]
            return replace(state, phase=OS_DECIDED, decision=pick[0])
        return super()._after_scan(ctx, state, scan)


class StaleRepeated(RepeatedSetAgreement):
    """Fig 4 line 17 accepting entries of lower instances."""

    name = "mutant-repeated-stale"

    def _after_scan(self, ctx, state, scan):
        t = state.t
        for entry in scan:
            if not is_bot(entry) and entry[2] > t:
                his = entry[3]
                return replace(
                    state, history=his, phase=REP_DECIDED, decision=his[t - 1]
                )
        distinct = set(scan)
        if len(distinct) <= self.m and not any(is_bot(e) for e in scan):
            winner = scan[0][0]  # may come from a stale instance
            return replace(
                state,
                history=state.history + (winner,),
                phase=REP_DECIDED,
                decision=winner,
            )
        return super()._after_scan(ctx, state, scan)


class IgnoreBotAnonymous(AnonymousOneShotSetAgreement):
    """Fig 5 line 23 without the every-entry-a-t-tuple requirement."""

    name = "mutant-anonymous-ignore-bot"

    def _after_scan(self, state, scan):
        nonbot = [e for e in scan if not is_bot(e)]
        if nonbot and len(set(nonbot)) <= self.m:
            return replace(state, phase="decided", decision=nonbot[0])
        return super()._after_scan(state, scan)


class LowEllAnonymous(AnonymousOneShotSetAgreement):
    """Fig 5 with the adoption threshold lowered to ℓ−1."""

    name = "mutant-anonymous-low-ell"

    @property
    def ell(self):
        return self.n + self.m - self.k - 1


MUTANTS = [
    (IgnoreBotOneShot(n=2, m=1, k=1), 1, 1, "k-Agreement"),
    (ThresholdOneShot(n=2, m=1, k=1), 1, 1, "k-Agreement"),
    (StaleRepeated(n=2, m=1, k=1), 1, 2, "Validity"),
    (IgnoreBotAnonymous(n=3, m=1, k=1), 1, 1, "k-Agreement"),
    (LowEllAnonymous(n=3, m=1, k=2), 2, 1, "k-Agreement"),
]


@pytest.mark.parametrize(
    "mutant,k,instances,expected_property",
    MUTANTS,
    ids=[m[0].name for m in MUTANTS],
)
def test_mutant_is_refuted_with_witness(mutant, k, instances, expected_property):
    system = System(
        mutant, workloads=distinct_inputs(mutant.n, instances=instances)
    )
    result = explore_safety(system, k=k, max_configs=600_000)
    assert result.safety_violations, (
        f"{mutant.name}: weakening this condition should break a small "
        "instance — either the mutant is wrong or the checker regressed"
    )
    witness = result.safety_violations[0]
    assert witness.property_name == expected_property
    # The witness replays from scratch.
    execution = replay(system, witness.schedule)
    assert any(
        v.property_name == expected_property
        for v in check_safety(execution, k)
    )


def test_unmutated_algorithms_pass_the_same_checks():
    """Control: at the same parameters, the real algorithms are clean."""
    controls = [
        (OneShotSetAgreement(n=2, m=1, k=1), 1, 1),
        (RepeatedSetAgreement(n=2, m=1, k=1), 1, 2),
        (AnonymousOneShotSetAgreement(n=3, m=1, k=1), 1, 1),
        (AnonymousOneShotSetAgreement(n=3, m=1, k=2), 2, 1),
    ]
    for protocol, k, instances in controls:
        system = System(
            protocol, workloads=distinct_inputs(protocol.n, instances=instances)
        )
        result = explore_safety(system, k=k, max_configs=150_000)
        assert not result.safety_violations, protocol.name
