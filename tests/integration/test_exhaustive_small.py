"""Integration: exhaustive model checking of tiny instances.

These are the strongest correctness statements the suite makes: for n = 2
the full reachable configuration space of the one-shot algorithms is
finite and completely enumerated — safety holds in *every* execution, not
just sampled ones.  Under-provisioned variants must conversely exhibit
witnessed violations (cross-validating the lower-bound constructions).
"""

import pytest

from repro import OneShotSetAgreement, System
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.agreement.commit_adopt import CommitAdoptConsensus
from repro.bench.workloads import distinct_inputs
from repro.explore import explore_progress_closure, explore_safety


class TestNominalSafetyExhaustive:
    def test_oneshot_consensus_n2(self):
        system = System(OneShotSetAgreement(n=2, m=1, k=1),
                        workloads=distinct_inputs(2))
        result = explore_safety(system, k=1)
        assert result.complete and result.ok

    def test_oneshot_k1_n3_bounded(self):
        system = System(OneShotSetAgreement(n=3, m=1, k=1),
                        workloads=distinct_inputs(3))
        result = explore_safety(system, k=1, max_configs=120_000)
        assert result.ok  # no violation within the bounded space

    def test_anonymous_oneshot_n3_k2(self):
        system = System(AnonymousOneShotSetAgreement(n=3, m=1, k=2),
                        workloads=distinct_inputs(3))
        result = explore_safety(system, k=2, max_configs=150_000)
        assert result.ok

    def test_commit_adopt_n2_bounded(self):
        system = System(CommitAdoptConsensus(2), workloads=distinct_inputs(2))
        result = explore_safety(system, k=1, max_configs=120_000)
        assert result.ok


class TestUnderProvisionedViolations:
    @pytest.mark.parametrize("components", [1, 2])
    def test_oneshot_n2_below_nominal_unsafe(self, components):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1, components=components),
            workloads=distinct_inputs(2),
        )
        result = explore_safety(system, k=1, max_configs=100_000)
        assert result.safety_violations, (
            f"expected a violation at {components} components (nominal 3)"
        )

    def test_anonymous_oneshot_squeezed_unsafe(self):
        system = System(
            AnonymousOneShotSetAgreement(n=3, m=1, k=1, components=2),
            workloads=distinct_inputs(3),
        )
        result = explore_safety(system, k=1, max_configs=300_000)
        assert result.safety_violations


class TestProgressClosure:
    def test_oneshot_consensus_n2_closure(self):
        system = System(OneShotSetAgreement(n=2, m=1, k=1),
                        workloads=distinct_inputs(2))
        result = explore_progress_closure(
            system, m=1, max_configs=1_000, solo_budget=5_000
        )
        assert result.ok

    def test_oneshot_m2_closure_n3(self):
        system = System(OneShotSetAgreement(n=3, m=2, k=2),
                        workloads=distinct_inputs(3))
        result = explore_progress_closure(
            system, m=2, max_configs=300, solo_budget=20_000
        )
        assert result.ok
