"""Integration: m-obstruction-freedom across algorithms and survivor sets.

For each algorithm and parameter point, every survivor set of size ≤ m,
crossed with seeded hostile preludes, must finish its workload within a
budget — and, as the *negative* control, survivor sets of size m+1 must be
able to stall the 1-obstruction-free baseline (the guarantee genuinely
stops at m).

The crash matrix sharpens the same sweep: instead of pausing after a
prelude, the non-survivors *crash mid-run* (up to n − m of them, possibly
between a collect and its pending write), and the ≤ m survivors must
still decide within budget — m-obstruction-freedom draws no distinction
between a paused process and a crashed one.
"""

import pytest

from repro import (
    AnonymousRepeatedSetAgreement,
    OneShotSetAgreement,
    RepeatedSetAgreement,
    System,
)
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.bench.workloads import distinct_inputs
from repro.spec.progress import crash_progress_matrix, progress_matrix

POINTS = [(4, 1, 2), (4, 2, 2), (5, 2, 3)]


@pytest.mark.parametrize("n,m,k", POINTS)
def test_oneshot_progress(n, m, k):
    report = progress_matrix(
        lambda: System(OneShotSetAgreement(n=n, m=m, k=k),
                       workloads=distinct_inputs(n)),
        n=n, m=m, seeds=(1, 2), prelude_steps=60, budget=60_000,
    )
    assert report.ok, report.summary()


@pytest.mark.parametrize("n,m,k", POINTS)
def test_repeated_progress(n, m, k):
    report = progress_matrix(
        lambda: System(RepeatedSetAgreement(n=n, m=m, k=k),
                       workloads=distinct_inputs(n, instances=2)),
        n=n, m=m, seeds=(1, 2), prelude_steps=60, budget=80_000,
    )
    assert report.ok, report.summary()


@pytest.mark.parametrize("n,m,k", POINTS)
def test_anonymous_repeated_progress(n, m, k):
    report = progress_matrix(
        lambda: System(AnonymousRepeatedSetAgreement(n=n, m=m, k=k),
                       workloads=distinct_inputs(n, instances=2)),
        n=n, m=m, seeds=(1, 2), prelude_steps=60, budget=80_000,
    )
    assert report.ok, report.summary()


@pytest.mark.parametrize("n,m,k", POINTS)
def test_anonymous_oneshot_progress(n, m, k):
    report = progress_matrix(
        lambda: System(AnonymousOneShotSetAgreement(n=n, m=m, k=k),
                       workloads=distinct_inputs(n)),
        n=n, m=m, seeds=(1, 2), prelude_steps=60, budget=60_000,
    )
    assert report.ok, report.summary()


@pytest.mark.parametrize("n,m,k", POINTS)
def test_oneshot_crash_progress(n, m, k):
    report = crash_progress_matrix(
        lambda: System(OneShotSetAgreement(n=n, m=m, k=k),
                       workloads=distinct_inputs(n)),
        n=n, m=m, seeds=(1, 2), budget=60_000,
    )
    assert report.ok, report.summary() + "".join(
        f"\n  {f}" for f in report.failures
    )


@pytest.mark.parametrize("n,m,k", POINTS)
def test_repeated_crash_progress(n, m, k):
    report = crash_progress_matrix(
        lambda: System(RepeatedSetAgreement(n=n, m=m, k=k),
                       workloads=distinct_inputs(n, instances=2)),
        n=n, m=m, seeds=(1, 2), budget=80_000,
    )
    assert report.ok, report.summary() + "".join(
        f"\n  {f}" for f in report.failures
    )


@pytest.mark.parametrize("n,m,k", POINTS)
def test_anonymous_repeated_crash_progress(n, m, k):
    report = crash_progress_matrix(
        lambda: System(AnonymousRepeatedSetAgreement(n=n, m=m, k=k),
                       workloads=distinct_inputs(n, instances=2)),
        n=n, m=m, seeds=(1, 2), budget=80_000,
    )
    assert report.ok, report.summary() + "".join(
        f"\n  {f}" for f in report.failures
    )


@pytest.mark.parametrize("n,m,k", POINTS)
def test_anonymous_oneshot_crash_progress(n, m, k):
    report = crash_progress_matrix(
        lambda: System(AnonymousOneShotSetAgreement(n=n, m=m, k=k),
                       workloads=distinct_inputs(n)),
        n=n, m=m, seeds=(1, 2), budget=60_000,
    )
    assert report.ok, report.summary() + "".join(
        f"\n  {f}" for f in report.failures
    )


def test_guarantee_stops_at_m():
    """Negative control: some (m+1)-survivor adversary stalls Figure 4 at
    m = 1 — otherwise the m in m-obstruction-freedom would be vacuous."""
    from repro.errors import StepLimitExceeded
    from repro.sched import RandomScheduler
    from repro.spec.progress import check_bounded_progress

    stalled = False
    for seed in range(10):
        system = System(
            RepeatedSetAgreement(n=3, m=1, k=1, components=2),
            workloads=distinct_inputs(3, instances=2),
        )
        try:
            check_bounded_progress(
                system, survivors=[0, 1], prelude_steps=30,
                prelude=RandomScheduler(seed=seed), budget=5_000,
            )
        except StepLimitExceeded:
            stalled = True
            break
    assert stalled
