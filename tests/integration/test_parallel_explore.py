"""The parallel exploration engine certifies exactly what the sequential
path certifies — same closure, same counterexamples, same counts — and
worker-side failures cross the pool as structured errors, never hangs."""

import dataclasses

import pytest

from repro import OneShotSetAgreement, System
from repro._types import Params
from repro.agreement.anonymous import AnonymousOneShotSetAgreement
from repro.errors import ExplorationEngineError
from repro.explore import explore_progress_closure, explore_safety
from repro.explore.cache import entry_path, load_entry
from repro.memory.layout import register_layout
from repro.runtime.automaton import ProtocolAutomaton
from repro.runtime.runner import replay
from repro.spec.properties import check_k_agreement


def result_record(result):
    """An ExplorationResult as a comparable value."""
    return dataclasses.asdict(result)


class TestWorkerParity:
    def test_safe_instance_identical_outcome(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        sequential = explore_safety(system, k=1)
        parallel = explore_safety(system, k=1, workers=4)
        assert sequential.complete and sequential.ok
        assert result_record(parallel) == result_record(sequential)

    def test_violating_instance_identical_witness(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1, components=2),
            workloads=[["a"], ["b"]],
        )
        sequential = explore_safety(system, k=1)
        parallel = explore_safety(system, k=1, workers=4)
        assert result_record(parallel) == result_record(sequential)
        witness = parallel.safety_violations[0]
        execution = replay(system, witness.schedule)
        assert check_k_agreement(execution, k=1)

    def test_batch_size_does_not_change_outcome(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1, components=2),
            workloads=[["a"], ["b"]],
        )
        small = explore_safety(system, k=1, workers=2, batch_size=3)
        large = explore_safety(system, k=1, workers=2, batch_size=512)
        assert result_record(small) == result_record(large)

    def test_canonicalized_parallel_parity(self):
        system = System(
            AnonymousOneShotSetAgreement(n=3, m=1, k=1),
            workloads=[["v"], ["v"], ["v"]],
        )
        sequential = explore_safety(system, k=1, canonicalize=True)
        parallel = explore_safety(system, k=1, canonicalize=True, workers=4)
        assert result_record(parallel) == result_record(sequential)
        assert sequential.complete and sequential.ok

    def test_progress_closure_parity(self):
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        sequential = explore_progress_closure(system, m=1)
        parallel = explore_progress_closure(system, m=1, workers=4)
        assert sequential.complete and sequential.ok
        assert result_record(parallel) == result_record(sequential)


class ExplodingAutomaton(ProtocolAutomaton):
    """Raises mid-expansion: exercises worker failure propagation."""

    name = "exploding"

    def default_layout(self):
        """One register, never touched."""
        return register_layout("R", 1)

    def begin(self, ctx, persistent, value, invocation):
        """One thread, poised to explode."""
        return ("armed",)

    def pending(self, ctx, thread, state):
        """Boom."""
        raise RuntimeError("exploding automaton detonated")

    def apply(self, ctx, thread, state, response):
        """Unreachable."""
        return state


class TestFailurePropagation:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_oracle_exception_is_structured(self, workers):
        system = System(ExplodingAutomaton(Params()), workloads=[["a"], ["b"]])
        with pytest.raises(ExplorationEngineError) as excinfo:
            explore_safety(system, k=1, workers=workers)
        failure = excinfo.value.failure
        assert failure.kind == "RuntimeError"
        assert "detonated" in failure.detail
        assert "detonated" in failure.traceback
        assert failure.config_fingerprint

    @pytest.mark.parametrize("workers", [1, 2])
    def test_step_limit_is_a_progress_counterexample(self, workers):
        """StepLimitExceeded inside the progress oracle is a verdict, not a
        crash: it crosses the pool as a ProgressCounterexample."""
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        result = explore_progress_closure(
            system, m=1, solo_budget=2, workers=workers
        )
        assert not result.complete
        assert result.progress_violations
        assert "exceeded 2" in result.progress_violations[0].detail


class TestResume:
    def test_truncated_run_resumes_to_completion(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        truncated = explore_safety(
            system, k=1, max_configs=200, cache_dir=cache_dir
        )
        assert not truncated.complete
        assert truncated.configs_explored == 200
        resumed = explore_safety(
            system, k=1, max_configs=5_000, cache_dir=cache_dir
        )
        fresh = explore_safety(system, k=1, max_configs=5_000)
        assert resumed.complete
        assert result_record(resumed) == result_record(fresh)

    def test_finished_entry_served_without_reexploring(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        first = explore_safety(system, k=1, cache_dir=cache_dir)
        entries = list((tmp_path / "cache").iterdir())
        assert len(entries) == 1
        key = entries[0].stem
        entry = load_entry(cache_dir, key)
        assert entry.finished
        again = explore_safety(system, k=1, cache_dir=cache_dir)
        assert result_record(again) == result_record(first)

    def test_different_parameters_use_different_keys(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        base = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        other = System(
            OneShotSetAgreement(n=2, m=1, k=1, components=2),
            workloads=[["a"], ["b"]],
        )
        explore_safety(base, k=1, cache_dir=cache_dir)
        explore_safety(other, k=1, cache_dir=cache_dir)
        assert len(list((tmp_path / "cache").iterdir())) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        system = System(
            OneShotSetAgreement(n=2, m=1, k=1), workloads=[["a"], ["b"]]
        )
        first = explore_safety(system, k=1, cache_dir=cache_dir)
        entry_file = next((tmp_path / "cache").iterdir())
        entry_file.write_bytes(b"not a pickle")
        assert load_entry(cache_dir, entry_file.stem) is None
        again = explore_safety(system, k=1, cache_dir=cache_dir)
        assert result_record(again) == result_record(first)


class TestCliIntegration:
    def test_workers_flag_matches_sequential_output(self, capsys):
        from repro.cli import main

        assert main(["explore", "--n", "2", "--m", "1", "--k", "1"]) == 0
        sequential_out = capsys.readouterr().out
        assert main(["explore", "--n", "2", "--m", "1", "--k", "1",
                     "--workers", "4"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == sequential_out

    def test_resume_flag_populates_cache_dir(self, capsys, tmp_path):
        from repro.cli import main

        cache_dir = str(tmp_path / "cli-cache")
        args = ["explore", "--n", "2", "--m", "1", "--k", "1",
                "--resume", "--cache-dir", cache_dir]
        assert main(args) == 0
        first = capsys.readouterr().out
        entries = sorted(p.name for p in (tmp_path / "cli-cache").iterdir())
        # one sealed cache entry plus the run's durable journal directory
        assert len(entries) == 2
        assert any(name.endswith(".pkl") for name in entries)
        assert any(name.endswith(".journal") for name in entries)
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_engine_failure_exits_two(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.explore.frontier import EngineFailure

        def detonate(*args, **kwargs):
            raise ExplorationEngineError(EngineFailure(
                kind="RuntimeError", detail="detonated",
                config_fingerprint="0" * 32, traceback="Traceback: detonated\n",
            ))

        monkeypatch.setattr(cli, "explore_safety", detonate)
        code = cli.main(["explore", "--n", "2", "--m", "1", "--k", "1"])
        assert code == 2
        out = capsys.readouterr().out
        assert "ENGINE FAILURE" in out and "detonated" in out

    def test_canonicalize_flag_reports_orbit_count(self, capsys):
        from repro.cli import main

        code = main(["explore", "--protocol", "anonymous-oneshot",
                     "--n", "3", "--m", "1", "--k", "1",
                     "--cluster-inputs", "1", "--canonicalize"])
        assert code == 0
        out = capsys.readouterr().out
        assert "orbit representatives" in out
